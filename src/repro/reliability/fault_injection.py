"""Fault injection for bespoke printed classifiers.

Printed fabrication is low-precision and defect-prone, so a realistic
evaluation of a hard-wired classifier asks not only "how small is it?" but
"how much accuracy does it lose when the foil is imperfect?". This module
injects the two dominant defect mechanisms of bespoke circuits into the
*effective* (hard-wired) weights and measures the accuracy impact:

* **connection faults** — an entire multiplier / routing segment is open or
  shorted, modelled as a weight forced to zero (open) or to its extreme
  representable value (short),
* **level faults** — a hard-wired coefficient is misprinted by one or more
  quantization levels (the printed analogue of a stuck-at on a low-order
  bit).

The study in ``benchmarks/bench_reliability.py`` uses this to compare the
fault tolerance of baseline vs minimized designs — an extension beyond the
paper, motivated by its printed-electronics setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..hardware.fixed_point import derive_format
from ..nn.network import MLP

#: Supported fault models.
FAULT_MODELS = ("open", "short", "level_shift")


@dataclass(frozen=True)
class FaultInjectionConfig:
    """Configuration of one fault-injection campaign.

    Attributes:
        fault_rate: fraction of (non-zero) connections hit by a fault.
        fault_model: ``"open"`` (weight -> 0), ``"short"`` (weight -> max
            representable magnitude, random sign) or ``"level_shift"``
            (weight moved by ±``level_shift_levels`` quantization steps).
        weight_bits: bit-width defining the level grid for ``short`` and
            ``level_shift`` faults.
        level_shift_levels: magnitude of a level-shift fault in LSBs.
        n_trials: number of independent fault realisations to average over.
        seed: RNG seed of the campaign.
        include_bias: also make the hard-wired bias (threshold) operands
            eligible fault sites. Honored by the integer-datapath Monte-Carlo
            kernels in :mod:`repro.reliability.monte_carlo`; the float-model
            :func:`inject_faults` path perturbs weights only.
    """

    fault_rate: float = 0.05
    fault_model: str = "open"
    weight_bits: int = 8
    level_shift_levels: int = 1
    n_trials: int = 10
    seed: int = 0
    include_bias: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError(f"fault_rate must be in [0, 1], got {self.fault_rate}")
        if self.fault_model not in FAULT_MODELS:
            raise ValueError(
                f"fault_model must be one of {FAULT_MODELS}, got '{self.fault_model}'"
            )
        if self.weight_bits < 2:
            raise ValueError(f"weight_bits must be >= 2, got {self.weight_bits}")
        if self.level_shift_levels < 1:
            raise ValueError("level_shift_levels must be >= 1")
        if self.n_trials < 1:
            raise ValueError("n_trials must be >= 1")


@dataclass
class FaultInjectionResult:
    """Outcome of a fault-injection campaign."""

    config: FaultInjectionConfig
    fault_free_accuracy: float
    mean_accuracy: float
    worst_accuracy: float
    accuracy_per_trial: List[float] = field(default_factory=list)
    faults_per_trial: List[int] = field(default_factory=list)

    @property
    def mean_accuracy_drop(self) -> float:
        """Average absolute accuracy lost to the injected faults."""
        return self.fault_free_accuracy - self.mean_accuracy

    @property
    def accuracy_std(self) -> float:
        """Population standard deviation of the per-trial accuracies."""
        if not self.accuracy_per_trial:
            return 0.0
        return float(np.std(np.asarray(self.accuracy_per_trial, dtype=np.float64)))

    def as_dict(self) -> Dict[str, object]:
        return {
            "fault_model": self.config.fault_model,
            "fault_rate": self.config.fault_rate,
            "fault_free_accuracy": self.fault_free_accuracy,
            "mean_accuracy": self.mean_accuracy,
            "worst_accuracy": self.worst_accuracy,
            "mean_accuracy_drop": self.mean_accuracy_drop,
            "accuracy_std": self.accuracy_std,
            "n_trials": self.config.n_trials,
        }


def inject_faults(
    model: MLP, config: FaultInjectionConfig, rng: np.random.Generator
) -> int:
    """Inject one fault realisation into ``model`` (in place).

    Only connections that are non-zero in the effective weights are eligible
    (a pruned connection has no hardware to fail). Returns the number of
    faults injected.
    """
    n_faults = 0
    for layer in model.dense_layers:
        effective = layer.effective_weights()
        eligible = np.argwhere(effective != 0.0)
        if eligible.size == 0:
            continue
        n_hit = int(round(config.fault_rate * len(eligible)))
        if n_hit == 0:
            continue
        hit_rows = rng.choice(len(eligible), size=n_hit, replace=False)
        fmt = derive_format(effective, config.weight_bits)
        weights = layer.weights.copy()
        for row_index in hit_rows:
            i, j = eligible[row_index]
            if config.fault_model == "open":
                weights[i, j] = 0.0
            elif config.fault_model == "short":
                sign = 1.0 if rng.random() < 0.5 else -1.0
                weights[i, j] = sign * fmt.max_level * fmt.scale
            else:  # level_shift
                direction = 1.0 if rng.random() < 0.5 else -1.0
                weights[i, j] = weights[i, j] + direction * config.level_shift_levels * fmt.scale
            n_faults += 1
        layer.weights = weights
    return n_faults


def run_fault_injection(
    model: MLP,
    features: np.ndarray,
    labels: np.ndarray,
    config: Optional[FaultInjectionConfig] = None,
) -> FaultInjectionResult:
    """Run a full campaign: ``n_trials`` independent fault realisations.

    The input model is never modified; every trial works on a fresh clone.
    """
    config = config if config is not None else FaultInjectionConfig()
    rng = np.random.default_rng(config.seed)
    fault_free = float(model.evaluate_accuracy(features, labels))

    accuracies: List[float] = []
    fault_counts: List[int] = []
    for _ in range(config.n_trials):
        candidate = model.clone()
        fault_counts.append(inject_faults(candidate, config, rng))
        accuracies.append(float(candidate.evaluate_accuracy(features, labels)))

    return FaultInjectionResult(
        config=config,
        fault_free_accuracy=fault_free,
        mean_accuracy=float(np.mean(accuracies)),
        worst_accuracy=float(np.min(accuracies)),
        accuracy_per_trial=accuracies,
        faults_per_trial=fault_counts,
    )


def fault_rate_sweep(
    model: MLP,
    features: np.ndarray,
    labels: np.ndarray,
    fault_rates: Sequence[float] = (0.01, 0.02, 0.05, 0.1),
    fault_model: str = "open",
    n_trials: int = 10,
    weight_bits: int = 8,
    seed: int = 0,
) -> List[FaultInjectionResult]:
    """Accuracy degradation as a function of the defect rate."""
    results = []
    for rate in fault_rates:
        config = FaultInjectionConfig(
            fault_rate=float(rate),
            fault_model=fault_model,
            weight_bits=weight_bits,
            n_trials=n_trials,
            seed=seed,
        )
        results.append(run_fault_injection(model, features, labels, config))
    return results


def compare_fault_tolerance(
    designs: Dict[str, MLP],
    features: np.ndarray,
    labels: np.ndarray,
    config: Optional[FaultInjectionConfig] = None,
) -> Dict[str, FaultInjectionResult]:
    """Run the same campaign on several designs (e.g. baseline vs minimized)."""
    return {
        name: run_fault_injection(model, features, labels, config)
        for name, model in designs.items()
    }
