"""Vectorized Monte-Carlo fault injection on the bespoke integer datapath.

:mod:`repro.reliability.fault_injection` perturbs the *float* software model
one trial at a time — fine for a post-hoc study, far too slow as a search
objective. This module is the engine-grade counterpart: it injects the same
defect mechanisms (open, short, level-shift) directly into the hard-wired
integer coefficients of a :class:`~repro.bespoke.simulator.FixedPointSimulator`
and evaluates **all T trials (and, in the population form, all G genomes) in
one batched pass**.

Determinism and bit-identity contract
-------------------------------------

* Every trial owns a SHA-256-derived seed (:func:`fault_trial_seed` over the
  campaign seed and the trial index; the per-genome campaign seed is itself
  the genome's derived evaluation seed, see
  :func:`repro.search.evaluator.genome_seed`). The seed is expanded into the
  trial's randomness with SHAKE-256 — a fixed byte stream, so fault patterns
  depend only on ``(base seed, genome, trial)``: never on worker processes,
  batch shapes, evaluation order, or numpy's bit-generator internals.
* :func:`monte_carlo_fault_injection` (vectorized) is **bit-identical** to
  :func:`monte_carlo_fault_injection_reference` (the retained per-trial
  loop): both consume the same per-trial fault patterns, and the batched
  forward pass is exact. The fast path runs the integer matrix products
  through float64 BLAS, which is exact while every intermediate integer
  stays below 2**53; :func:`float_path_is_exact` checks a static worst-case
  bound per layer and the kernel falls back to exact int64 arithmetic when
  the bound is exceeded. The test suite asserts equality across fault
  models, bit-widths and degenerate rates (0.0 and 1.0).
* :func:`monte_carlo_population` stacks G same-architecture simulators into
  one ``(G * T)``-deep batch; slice ``g`` is exactly the single-simulator
  result for ``simulators[g]`` — which is what makes the robustness
  objective identical between serial, parallel and stacked evaluation.

Fault semantics (integer domain)
--------------------------------

Eligible sites are the non-zero hard-wired weight coefficients (a pruned
connection has no hardware to fail) and, with ``include_bias=True``, the
non-zero bias operands. Per layer, ``round(fault_rate * n_sites)`` sites are
hit per trial, without replacement (a uniform random subset):

* ``open``  — coefficient forced to 0 (broken segment),
* ``short`` — coefficient forced to +/- the layer's largest representable
  level (random sign; for bias sites, +/- the layer's largest bias
  magnitude),
* ``level_shift`` — coefficient moved +/- ``level_shift_levels`` steps and
  clipped to the representable range (misprinted low-order bits).

``FaultInjectionConfig.weight_bits`` is ignored here: the level grid comes
from the simulator's own per-layer weight formats, so the injected faults
match the deployed circuit exactly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..bespoke.simulator import FixedPointSimulator, validate_population
from ..core.backend import ArrayBackend, get_backend, resolve_backend
from .fault_injection import FaultInjectionConfig, FaultInjectionResult

#: Seeds are reduced modulo 2**32 so they read like ``numpy`` seeds everywhere.
_SEED_SPACE = 2**32

#: The scorer folds class indices into the scores (see ``_batch_accuracies``),
#: so exactness needs ``multiplier * bound + multiplier - 1`` below the float
#: type's contiguous integer range — 2**53 for float64, 2**24 for float32;
#: checking against half the range keeps a 2x safety margin.
_EXACT_FLOAT64_RANGE = 1 << 52
_EXACT_FLOAT32_RANGE = 1 << 23

#: A "random sign is negative" test on raw 64-bit draws (u < 0.5 equivalent).
_HALF_U64 = np.uint64(1 << 63)


def fault_trial_seed(base_seed: int, trial: int) -> int:
    """Deterministic seed of one Monte-Carlo trial.

    SHA-256 of ``(base_seed, trial)`` — stable across processes and Python
    runs (unlike ``hash()``), exactly like the per-genome evaluation seeds
    of :func:`repro.search.evaluator.genome_seed`. The ``base_seed`` is the
    campaign seed of the :class:`~repro.reliability.FaultInjectionConfig`;
    in the search engine it is the genome's derived evaluation seed, giving
    every (genome, trial) pair its own independent fault pattern.
    """
    digest = hashlib.sha256(
        f"fault|{int(base_seed)}|{int(trial)}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_SPACE


def _trial_draws(trial_seed: int, n_draws: int) -> bytes:
    """One trial's randomness: ``8 * n_draws`` bytes expanded from its seed.

    SHAKE-256 in one squeeze: a fixed, platform-independent byte stream per
    seed, orders of magnitude cheaper than constructing a numpy Generator
    per trial (the hot-path cost at engine scale: T trials x G genomes per
    generation). Draw ``k`` of a trial is always the same 8 bytes
    (interpreted big-endian), so the reference loop and the vectorized
    kernel cannot consume randomness differently.
    """
    return hashlib.shake_256(int(trial_seed).to_bytes(8, "big")).digest(8 * n_draws)


def _draw_matrix(
    config: FaultInjectionConfig,
    trials: Sequence[int],
    n_draws: int,
    ops: Optional[ArrayBackend] = None,
) -> np.ndarray:
    """The ``(len(trials), n_draws)`` uint64 draw matrix of the given trials.

    Row ``i`` depends only on ``fault_trial_seed(config.seed, trials[i])``,
    so any batching of trials — all at once in the vectorized kernel, one
    at a time in the reference loop — reads identical randomness. Draw
    interpretation goes through :meth:`ArrayBackend.draws_from_bytes`,
    whose shared numpy implementation every backend inherits: fault
    patterns are part of the determinism contract and may not vary by
    backend.
    """
    raw = b"".join(
        _trial_draws(fault_trial_seed(config.seed, trial), n_draws)
        for trial in trials
    )
    ops = ops if ops is not None else get_backend("numpy")
    return ops.draws_from_bytes(raw, len(trials), n_draws)


@dataclass(frozen=True)
class _FaultSite:
    """Precomputed per-layer fault-site table (identical for every trial).

    Attributes:
        eligible: flat indices of the eligible coefficients in the layer's
            flattened tensor (weights, or bias when ``is_bias``).
        n_hit: faults injected per trial (``round(rate * n_eligible)``).
        extreme: magnitude a ``short`` fault forces the coefficient to.
        is_bias: whether the site table covers the bias vector.
    """

    eligible: np.ndarray
    n_hit: int
    extreme: int
    is_bias: bool


def _fault_sites(
    simulator: FixedPointSimulator, config: FaultInjectionConfig
) -> List[_FaultSite]:
    """Site tables for every layer (weights first, then bias when enabled).

    The eligible sets depend only on the unperturbed coefficients, so they
    are computed once per campaign, not once per trial — both the reference
    loop and the vectorized kernel sample from the same tables.
    """
    sites: List[_FaultSite] = []
    for layer in simulator.layers:
        eligible = np.flatnonzero(layer.weights.reshape(-1))
        sites.append(
            _FaultSite(
                eligible=eligible,
                n_hit=int(round(config.fault_rate * eligible.size)),
                extreme=int(layer.weight_format.max_level),
                is_bias=False,
            )
        )
        if config.include_bias:
            bias_eligible = np.flatnonzero(layer.bias)
            extreme = int(np.abs(layer.bias).max()) if layer.bias.size else 0
            sites.append(
                _FaultSite(
                    eligible=bias_eligible,
                    n_hit=int(round(config.fault_rate * bias_eligible.size)),
                    extreme=extreme,
                    is_bias=True,
                )
            )
    return sites


def _draws_per_trial(sites: Sequence[_FaultSite]) -> int:
    """Random draws one trial consumes (selection keys + sign draws)."""
    return sum(site.eligible.size + site.n_hit for site in sites)


def _sample_patterns(
    draws: np.ndarray,
    sites: Sequence[_FaultSite],
    flats: Sequence[np.ndarray],
    config: FaultInjectionConfig,
    ops: Optional[ArrayBackend] = None,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Fault patterns of a batch of trials: per site ``(indices, values)``.

    ``draws`` is a slice of the trial draw matrix; both kernels call this
    one routine (the vectorized path with all T rows at once, the reference
    loop with one row at a time), so their randomness can never diverge.
    Site selection is a uniform ``n_hit``-subset per trial: every eligible
    site gets a 64-bit key from the trial's stream and the ``n_hit``
    smallest keys are hit (:meth:`ArrayBackend.smallest_k` works per row,
    so batched and single-row sampling agree; keys are 64-bit draws, so
    equal-key ties — where backends may differ — are vanishingly rare, and
    the picked indices are sorted before use either way). Returned
    ``indices``/``values`` are ``(n_trials, n_hit)`` arrays aligned with
    ``sites``; ``flats`` are the unperturbed flattened coefficient tensors.
    """
    ops = ops if ops is not None else get_backend("numpy")
    n_trials = draws.shape[0]
    cursor = 0
    pattern: List[Tuple[np.ndarray, np.ndarray]] = []
    for site, flat in zip(sites, flats):
        keys = draws[:, cursor : cursor + site.eligible.size]
        signs = draws[
            :, cursor + site.eligible.size : cursor + site.eligible.size + site.n_hit
        ]
        cursor += site.eligible.size + site.n_hit
        if site.n_hit == 0:
            empty = np.empty((n_trials, 0), dtype=np.int64)
            pattern.append((empty, empty))
            continue
        if site.n_hit >= site.eligible.size:
            indices = np.broadcast_to(site.eligible, (n_trials, site.eligible.size))
        else:
            picks = ops.smallest_k(keys, site.n_hit)
            indices = site.eligible[np.sort(picks, axis=-1)]
        if config.fault_model == "open":
            values = np.zeros((n_trials, site.n_hit), dtype=np.int64)
        elif config.fault_model == "short":
            values = np.where(signs < _HALF_U64, site.extreme, -site.extreme)
        else:  # level_shift
            directions = np.where(signs < _HALF_U64, 1, -1)
            shifted = flat[indices] + directions * config.level_shift_levels
            values = np.clip(shifted, -site.extreme, site.extreme)
        pattern.append((indices, values.astype(np.int64)))
    return pattern


def _layer_flats(
    simulator: FixedPointSimulator, config: FaultInjectionConfig
) -> List[np.ndarray]:
    """Unperturbed flattened coefficient tensors aligned with the site tables."""
    flats: List[np.ndarray] = []
    for layer in simulator.layers:
        flats.append(layer.weights.reshape(-1))
        if config.include_bias:
            flats.append(layer.bias.reshape(-1))
    return flats


def accumulator_bounds(simulator: FixedPointSimulator) -> List[int]:
    """Static worst-case accumulator magnitude per layer under any faults.

    Activations are non-negative (unsigned inputs, ReLU hidden layers), so
    the accumulator magnitude of layer ``l`` is at most
    ``n_inputs * max_activation * max_level + max |bias|``; the layer's
    outputs (after the optional ReLU, or the raw scores) are bounded by the
    same value. Faults can only move coefficients within
    ``[-max_level, max_level]``, so the bound holds for every perturbed
    circuit as well.
    """
    bounds: List[int] = []
    max_activation = (1 << simulator.input_bits) - 1
    for layer in simulator.layers:
        max_bias = int(np.abs(layer.bias).max()) if layer.bias.size else 0
        bound = (
            layer.n_inputs * max_activation * int(layer.weight_format.max_level)
            + max_bias
        )
        bounds.append(bound)
        max_activation = bound
    return bounds


def _fold_multiplier(n_classes: int) -> int:
    """The power-of-two scale of the tie-folding scorer.

    ``score * multiplier + (n_classes - 1 - index)`` is a strict total order
    matching argmax-first semantics only while every tie rank stays below
    the multiplier, so the multiplier is the smallest power of two >= the
    class count (min 8).
    """
    return 1 << max(3, (int(n_classes) - 1).bit_length())


def float_path_is_exact(simulator: FixedPointSimulator) -> bool:
    """True when the float BLAS kernel is provably exact for this circuit.

    Every intermediate partial sum is bounded by the layer's worst-case
    accumulator magnitude, and the tie-aware scorer shifts scores by the
    class-count fold multiplier; float64 represents all integers below
    2**53 exactly, so keeping the folded bound under half that range makes
    the BLAS path bit-identical to int64 arithmetic in any summation
    order, with a 2x safety margin.
    """
    return _forward_dtype([simulator]) != np.int64


def _forward_dtype(simulators: Sequence[FixedPointSimulator]) -> np.dtype:
    """The cheapest dtype that keeps the batched forward pass exact.

    Tiny printed classifiers (a few bits, a handful of neurons) fit the
    float32 contiguous-integer range even after tie folding — sgemm runs
    roughly twice as fast as dgemm and every elementwise pass moves half
    the memory. Larger accumulators use float64; circuits beyond the
    float64 bound fall back to exact (but slower) int64 products.
    """
    worst = max(max(accumulator_bounds(simulator)) for simulator in simulators)
    multiplier = _fold_multiplier(simulators[0].layers[-1].n_neurons)
    folded_worst = worst * multiplier + multiplier - 1
    if folded_worst < _EXACT_FLOAT32_RANGE:
        return np.dtype(np.float32)
    if folded_worst < _EXACT_FLOAT64_RANGE:
        return np.dtype(np.float64)
    return np.dtype(np.int64)


def _batch_accuracies(scores: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-batch top-1 accuracy with numpy's first-occurrence argmax tie rule.

    Instead of ``np.argmax`` (a slow small-axis reduction at these shapes),
    each class column is folded into ``score * multiplier + (n_classes - 1 -
    index)`` — with the power-of-two :func:`_fold_multiplier` above every
    tie rank, a strict total order whose maximum is attained exactly by the
    first-occurring maximal score — and reduced with
    :func:`_folded_accuracies`. A sample is correct iff its label's folded
    score equals the folded maximum. Exact for integer-valued scores below
    the :func:`float_path_is_exact` bound; equality with the reference
    loop's literal ``np.argmax`` is pinned by the test suite.

    The batched forward pass normally folds the transform into the last
    matmul for free (see :func:`_stacked_accuracies`); this standalone form
    covers already-materialized score tensors (and ReLU-terminated
    circuits, where the fold cannot be fused through the clamp).
    """
    n_classes = scores.shape[-1]
    tie_rank = n_classes - 1  # class 0 wins all ties, class C-1 none
    # Native-dtype arithmetic: float on the BLAS paths, int64 on the exact
    # fallback (where folding in float could lose bits).
    multiplier = _fold_multiplier(n_classes)
    folded = scores * multiplier + np.arange(tie_rank, -1, -1, dtype=scores.dtype)
    return _folded_accuracies(folded, labels)


def _folded_accuracies(folded: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Accuracy over ``(batch, samples, classes)`` tie-folded score tensors.

    ``folded`` holds a strict total order per sample (no two classes share a
    value), so a sample is correct exactly when its label's entry equals the
    per-sample maximum — computed with a chain of fused ``np.maximum``
    passes plus one flat gather, which beats ``np.argmax`` several-fold at
    the kernel's wide-batch shapes.
    """
    n_classes = folded.shape[-1]
    best = folded[..., 0].copy()
    for index in range(1, n_classes):
        np.maximum(best, folded[..., index], out=best)
    flat = folded.reshape(-1, n_classes)
    label_indices = np.broadcast_to(labels, folded.shape[:-1]).reshape(-1)
    at_label = flat[np.arange(flat.shape[0]), label_indices].reshape(folded.shape[:-1])
    return (at_label == best).mean(axis=-1)


def _result(
    config: FaultInjectionConfig,
    fault_free: float,
    accuracies: np.ndarray,
    fault_counts: List[int],
) -> FaultInjectionResult:
    """Assemble a :class:`FaultInjectionResult` from per-trial accuracies."""
    return FaultInjectionResult(
        config=config,
        fault_free_accuracy=float(fault_free),
        mean_accuracy=float(np.mean(accuracies)),
        worst_accuracy=float(np.min(accuracies)),
        accuracy_per_trial=[float(a) for a in accuracies],
        faults_per_trial=fault_counts,
    )


def monte_carlo_fault_injection_reference(
    simulator: FixedPointSimulator,
    features: np.ndarray,
    labels: np.ndarray,
    config: Optional[FaultInjectionConfig] = None,
) -> FaultInjectionResult:
    """The retained per-trial loop — the golden model of the vectorized kernel.

    One trial at a time: sample the trial's fault pattern, scatter it into a
    copy of the hard-wired integer coefficients, run the exact int64
    datapath, score with a literal ``np.argmax``. Kept (and exercised by
    the equality tests) so the batched kernel can never silently drift.
    """
    config = config if config is not None else FaultInjectionConfig()
    labels = np.asarray(labels).reshape(-1).astype(int)
    activations = simulator.quantize_inputs(features)
    sites = _fault_sites(simulator, config)
    flats = _layer_flats(simulator, config)
    n_draws = _draws_per_trial(sites)
    n_faults = sum(site.n_hit for site in sites)
    fault_free = float(
        np.mean(np.argmax(simulator.simulate_batch(features), axis=1) == labels)
    )

    accuracies = np.empty(config.n_trials, dtype=np.float64)
    for trial in range(config.n_trials):
        draws = _draw_matrix(config, [trial], n_draws)
        pattern = _sample_patterns(draws, sites, flats, config)
        out = activations
        site_index = 0
        for layer in simulator.layers:
            weights = layer.weights.copy()
            indices, values = pattern[site_index]
            weights.reshape(-1)[indices[0]] = values[0]
            site_index += 1
            bias = layer.bias
            if config.include_bias:
                indices, values = pattern[site_index]
                if indices.size:
                    bias = bias.copy()
                    bias[indices[0]] = values[0]
                site_index += 1
            out = out @ weights + bias
            if layer.relu:
                out = np.maximum(out, 0)
        predictions = np.argmax(out, axis=1)
        accuracies[trial] = np.mean(predictions == labels)
    return _result(config, fault_free, accuracies, [n_faults] * config.n_trials)


def _perturbed_stacks(
    simulator: FixedPointSimulator,
    config: FaultInjectionConfig,
    sites: Sequence[_FaultSite],
    flats: Sequence[np.ndarray],
    dtype: np.dtype,
    ops: Optional[ArrayBackend] = None,
) -> Tuple[List[np.ndarray], List[np.ndarray], List[int]]:
    """All T trials' perturbed coefficients as per-layer ``(T, ...)`` stacks.

    Built directly in the forward dtype (float64 on the exact BLAS path) so
    the kernel never materializes a second full-size integer copy — the
    scattered fault values are integers either way, so the cast is exact —
    and scattered with one :meth:`ArrayBackend.put_along_axis` per site
    instead of a per-trial Python loop (indices are unique per row, so the
    scatter is order-independent on every backend).
    """
    ops = ops if ops is not None else get_backend("numpy")
    n_trials = config.n_trials
    weight_stacks = [
        np.broadcast_to(layer.weights, (n_trials,) + layer.weights.shape).astype(dtype)
        for layer in simulator.layers
    ]
    bias_stacks = [
        np.broadcast_to(layer.bias, (n_trials,) + layer.bias.shape).astype(dtype)
        for layer in simulator.layers
    ]
    draws = _draw_matrix(config, range(n_trials), _draws_per_trial(sites), ops)
    pattern = _sample_patterns(draws, sites, flats, config, ops)
    n_faults = sum(site.n_hit for site in sites)
    site_index = 0
    for layer_index in range(len(simulator.layers)):
        indices, values = pattern[site_index]
        if indices.size:
            ops.put_along_axis(
                weight_stacks[layer_index].reshape(n_trials, -1), indices, values
            )
        site_index += 1
        if config.include_bias:
            indices, values = pattern[site_index]
            if indices.size:
                ops.put_along_axis(bias_stacks[layer_index], indices, values)
            site_index += 1
    return weight_stacks, bias_stacks, [n_faults] * n_trials


def _stacked_accuracies(
    weight_stacks: Sequence[np.ndarray],
    bias_stacks: Sequence[np.ndarray],
    relu_flags: Sequence[bool],
    activations: np.ndarray,
    labels: np.ndarray,
    ops: Optional[ArrayBackend] = None,
) -> np.ndarray:
    """Accuracy of every stacked circuit in one batched forward pass.

    ``weight_stacks[l]`` is ``(B, n_in, n_out)`` — one slice per (trial, or
    genome x trial) — and ``activations`` is the shared quantized input
    batch. The stacks' dtype (chosen by :func:`_forward_dtype`) decides the
    arithmetic: float32/float64 BLAS where provably exact, int64 products
    otherwise.

    When no ReLU follows the last layer (every bespoke classifier: the
    output layer feeds the argmax comparator raw) and the arithmetic is a
    float tier, the tie-folding transform of :func:`_batch_accuracies` is
    fused into the final matrix product — the last weight stack is
    pre-scaled by the fold multiplier and the tie ranks join its bias — so
    scoring costs one maximum chain and a gather, with no extra full-size
    passes. The int64 fallback tier scores with a literal ``np.argmax``
    instead: it handles circuits whose accumulators may approach the int64
    range, where folding could overflow.
    """
    ops = ops if ops is not None else get_backend("numpy")
    last = len(weight_stacks) - 1
    dtype = weight_stacks[0].dtype
    fuse_fold = not relu_flags[last] and dtype != np.int64
    if dtype == np.int64:
        batch = weight_stacks[0].shape[0]
        out: np.ndarray = np.broadcast_to(activations, (batch,) + activations.shape)
    else:
        out = activations.astype(dtype)
    for index, (weights, bias, relu) in enumerate(
        zip(weight_stacks, bias_stacks, relu_flags)
    ):
        if fuse_fold and index == last:
            n_classes = weights.shape[-1]
            multiplier = _fold_multiplier(n_classes)
            weights = weights * multiplier
            bias = bias * multiplier + np.arange(n_classes - 1, -1, -1, dtype=dtype)
        out = ops.matmul(out, weights)
        out += bias[:, None, :]
        if relu:
            np.maximum(out, 0, out=out)
    if fuse_fold:
        return _folded_accuracies(out, labels)
    if dtype == np.int64:
        predictions = ops.argmax(out)
        return (predictions == labels).mean(axis=-1)
    return _batch_accuracies(out, labels)


def monte_carlo_fault_injection(
    simulator: FixedPointSimulator,
    features: np.ndarray,
    labels: np.ndarray,
    config: Optional[FaultInjectionConfig] = None,
    backend=None,
) -> FaultInjectionResult:
    """Vectorized Monte-Carlo campaign: all ``n_trials`` in one batched pass.

    On the (default) numpy backend this is bit-identical to
    :func:`monte_carlo_fault_injection_reference` (the test suite asserts
    exact equality): the fault patterns come from the same per-trial
    SHA-256/SHAKE-256 streams, and the batched forward pass is exact
    integer arithmetic (float64 BLAS under the bound checked by
    :func:`float_path_is_exact`, int64 otherwise). ``backend`` selects the
    array backend for the heavy stages (``None`` = resolve via
    :func:`repro.core.backend.resolve_backend`); integer arithmetic is
    exact on every backend, see ``docs/backends.md``.
    """
    config = config if config is not None else FaultInjectionConfig()
    ops = resolve_backend(backend)
    labels = np.asarray(labels).reshape(-1).astype(int)
    activations = simulator.quantize_inputs(features)
    sites = _fault_sites(simulator, config)
    flats = _layer_flats(simulator, config)
    relu_flags = [layer.relu for layer in simulator.layers]
    dtype = _forward_dtype([simulator])

    fault_free = float(
        np.mean(np.argmax(simulator.simulate_batch(features), axis=1) == labels)
    )
    weight_stacks, bias_stacks, fault_counts = _perturbed_stacks(
        simulator, config, sites, flats, dtype, ops
    )
    accuracies = _stacked_accuracies(
        weight_stacks, bias_stacks, relu_flags, activations, labels, ops
    )
    return _result(config, fault_free, accuracies, fault_counts)


def monte_carlo_population(
    simulators: Sequence[FixedPointSimulator],
    features: np.ndarray,
    labels: np.ndarray,
    configs: Sequence[FaultInjectionConfig],
    backend=None,
) -> List[FaultInjectionResult]:
    """G simulators x T trials in one batched pass (the search engine's path).

    ``configs[g]`` carries genome ``g``'s campaign seed (its derived
    evaluation seed), so entry ``g`` of the returned list is exactly
    ``monte_carlo_fault_injection(simulators[g], features, labels,
    configs[g])`` — batching across the population is numerically
    invisible, which keeps serial, parallel and stacked evaluation
    byte-identical. All simulators must share input bit-width, layer shapes
    and ReLU flags (guaranteed for the same-topology populations the
    stacked evaluator builds); trial counts must match across configs.
    ``backend`` selects the array backend for the heavy stages (``None`` =
    resolve via :func:`repro.core.backend.resolve_backend`).
    """
    validate_population(simulators)
    ops = resolve_backend(backend)
    if len(configs) != len(simulators):
        raise ValueError(
            f"Got {len(configs)} fault configs for {len(simulators)} simulators"
        )
    n_trials = {config.n_trials for config in configs}
    if len(n_trials) != 1:
        raise ValueError(f"Population configs disagree on n_trials: {sorted(n_trials)}")
    first = simulators[0]

    labels = np.asarray(labels).reshape(-1).astype(int)
    activations = first.quantize_inputs(features)
    relu_flags = [layer.relu for layer in first.layers]
    dtype = _forward_dtype(simulators)

    # Fault-free accuracies of the unperturbed population, batched the same way.
    base_weights = [
        np.stack([simulator.layers[i].weights for simulator in simulators]).astype(dtype)
        for i in range(len(first.layers))
    ]
    base_bias = [
        np.stack([simulator.layers[i].bias for simulator in simulators]).astype(dtype)
        for i in range(len(first.layers))
    ]
    fault_free = _stacked_accuracies(
        base_weights, base_bias, relu_flags, activations, labels, ops
    )

    # One (G * T)-deep stack; genome g owns slices [g * T, (g + 1) * T).
    all_weights: List[List[np.ndarray]] = []
    all_bias: List[List[np.ndarray]] = []
    all_fault_counts: List[List[int]] = []
    for simulator, config in zip(simulators, configs):
        sites = _fault_sites(simulator, config)
        flats = _layer_flats(simulator, config)
        weight_stacks, bias_stacks, fault_counts = _perturbed_stacks(
            simulator, config, sites, flats, dtype, ops
        )
        all_weights.append(weight_stacks)
        all_bias.append(bias_stacks)
        all_fault_counts.append(fault_counts)
    merged_weights = [
        np.concatenate([stacks[i] for stacks in all_weights])
        for i in range(len(first.layers))
    ]
    merged_bias = [
        np.concatenate([stacks[i] for stacks in all_bias])
        for i in range(len(first.layers))
    ]
    accuracies = _stacked_accuracies(
        merged_weights, merged_bias, relu_flags, activations, labels, ops
    )

    results: List[FaultInjectionResult] = []
    trials = configs[0].n_trials
    for index, config in enumerate(configs):
        per_trial = accuracies[index * trials : (index + 1) * trials]
        results.append(
            _result(config, float(fault_free[index]), per_trial, all_fault_counts[index])
        )
    return results
