"""Reliability analysis: defect/fault injection for hard-wired printed classifiers."""

from .fault_injection import (
    FAULT_MODELS,
    FaultInjectionConfig,
    FaultInjectionResult,
    compare_fault_tolerance,
    fault_rate_sweep,
    inject_faults,
    run_fault_injection,
)

__all__ = [
    "FAULT_MODELS",
    "FaultInjectionConfig",
    "FaultInjectionResult",
    "compare_fault_tolerance",
    "fault_rate_sweep",
    "inject_faults",
    "run_fault_injection",
]
