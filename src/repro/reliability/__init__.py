"""Reliability analysis: defect/fault injection for hard-wired printed classifiers."""

from .fault_injection import (
    FAULT_MODELS,
    FaultInjectionConfig,
    FaultInjectionResult,
    compare_fault_tolerance,
    fault_rate_sweep,
    inject_faults,
    run_fault_injection,
)
from .monte_carlo import (
    accumulator_bounds,
    fault_trial_seed,
    float_path_is_exact,
    monte_carlo_fault_injection,
    monte_carlo_fault_injection_reference,
    monte_carlo_population,
)

__all__ = [
    "FAULT_MODELS",
    "FaultInjectionConfig",
    "FaultInjectionResult",
    "accumulator_bounds",
    "compare_fault_tolerance",
    "fault_rate_sweep",
    "fault_trial_seed",
    "float_path_is_exact",
    "inject_faults",
    "monte_carlo_fault_injection",
    "monte_carlo_fault_injection_reference",
    "monte_carlo_population",
    "run_fault_injection",
]
