"""Campaign execution: job dispatch, bounded concurrency, resume.

:class:`CampaignRunner` drives a :class:`~repro.campaign.spec.CampaignSpec`
to completion inside one campaign directory. The execution model:

* **Jobs are the unit of scheduling.** Each job runs one search (GA /
  random / grid) through the shared evaluation engine and writes its
  artifacts atomically; ``result.json`` is the completion marker.
* **Resume is the default.** Every run first reads the journal and skips
  completed jobs; a job killed mid-run re-executes from its spec but
  fast-forwards through the persistent evaluation cache, so the resumed
  campaign's fronts are byte-identical to an uninterrupted run.
* **Concurrency is bounded.** ``max_workers > 1`` fans whole jobs out over
  a ``ProcessPoolExecutor`` (each job may additionally parallelize its own
  evaluations via ``pipeline.n_workers``); ``shard="i/n"`` splits the job
  list round-robin across cooperating runner processes or machines.
* **Failures are contained.** A job that raises is journaled as failed and
  the campaign moves on; failed jobs are re-run by the next
  ``repro campaign resume``.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..core.pareto import best_area_gain_at_loss, pareto_front
from ..core.pipeline import MinimizationPipeline
from ..search.evaluator import EvaluationCache
from ..search.exhaustive import grid_search, random_search
from ..search.ga import GAConfig, HardwareAwareGA
from ..search.settings import resolve_evaluation_settings
from .cache import PersistentEvaluationCache, evaluation_context_key
from .fabric.retry import RetryPolicy
from .journal import CampaignJournal, mark_campaign_completed, persist_spec
from .spec import CampaignSpec, JobSpec, parse_shard, select_shard

#: Signature of a cache factory:
#: (cache_dir, context_key, max_entries) -> EvaluationCache.
CacheFactory = Callable[[Path, str, Optional[int]], EvaluationCache]


@dataclass
class JobOutcome:
    """What happened to one job during a :meth:`CampaignRunner.run` call."""

    job_id: str
    status: str  # "completed" | "failed"
    wall_s: float = 0.0
    n_evaluations: int = 0
    front_size: int = 0
    error: Optional[str] = None
    attempts: int = 1


@dataclass
class CampaignRunSummary:
    """Aggregate outcome of one :meth:`CampaignRunner.run` call."""

    directory: Path
    total_jobs: int
    completed_before: int
    outcomes: List[JobOutcome] = field(default_factory=list)
    remaining: int = 0

    @property
    def completed(self) -> int:
        """Jobs completed by this run."""
        return sum(1 for outcome in self.outcomes if outcome.status == "completed")

    @property
    def failed(self) -> int:
        """Jobs that raised during this run."""
        return sum(1 for outcome in self.outcomes if outcome.status == "failed")

    @property
    def ok(self) -> bool:
        """True when nothing failed and nothing remains pending."""
        return self.failed == 0 and self.remaining == 0


def execute_job(
    job: JobSpec,
    directory: Union[str, Path],
    use_cache: bool = True,
    cache_factory: Optional[CacheFactory] = None,
) -> JobOutcome:
    """Run one job end to end and write its artifacts into ``directory``.

    Pure apart from the campaign directory: everything the job computes is a
    function of its :class:`~repro.campaign.spec.JobSpec`, so re-executing a
    killed job (with or without warm cache shards) reproduces the same
    ``front.json`` bytes. Used directly by pool workers.
    """
    journal = CampaignJournal(directory)
    start = time.perf_counter()
    config = job.pipeline_config()
    prepared = MinimizationPipeline(config).prepare()
    params = job.search_params()

    ga_config: Optional[GAConfig] = None
    if job.algorithm == "ga":
        ga_config = GAConfig(**params, seed=job.seed)
        # Every knob (fault settings, backend) resolves exactly as
        # HardwareAwareGA would resolve it (GA params first, pipeline
        # overrides as the fallback), so the cache context key and the
        # search agree on what was evaluated.
        settings = resolve_evaluation_settings(config, ga_config=ga_config)
        cache_bound = ga_config.cache_size
    else:
        settings = resolve_evaluation_settings(config)
        cache_bound = config.cache_size
    if cache_bound is None:
        cache_bound = config.cache_size

    cache: Optional[EvaluationCache] = None
    cache_stats: Dict[str, object] = {"enabled": bool(use_cache)}
    if use_cache:
        context_key = evaluation_context_key(config, settings, job.seed)
        factory = cache_factory if cache_factory is not None else _default_cache_factory
        # The spec's memory bound applies to the in-memory view of the
        # persistent cache (disk records are never evicted).
        cache = factory(journal.cache_dir(), context_key, cache_bound)
        cache_stats["context_key"] = context_key
        cache_stats["preloaded"] = getattr(cache, "n_loaded", 0)

    generations: List[Dict[str, float]] = []
    try:
        if job.algorithm == "ga":
            ga = HardwareAwareGA(prepared, config=ga_config, settings=settings, cache=cache)
            result = ga.run()
            front = result.front
            n_evaluations = result.n_evaluations
            generations = result.generations
        elif job.algorithm == "random":
            points = random_search(
                prepared,
                n_evaluations=int(params.get("n_evaluations", 32)),
                settings=settings,
                seed=job.seed,
                n_workers=config.n_workers,
                cache=cache,
            )
            front = pareto_front(points, robust=settings.robustness_enabled)
            # Fresh evaluations only — points served from a shared campaign
            # cache (another job's work, or a pre-kill run's) don't count.
            n_evaluations = cache.misses if cache is not None else len(points)
        elif job.algorithm == "grid":
            points = grid_search(
                prepared,
                settings=settings,
                seed=job.seed,
                n_workers=config.n_workers,
                cache=cache,
                **params,
            )
            front = pareto_front(points, robust=settings.robustness_enabled)
            n_evaluations = cache.misses if cache is not None else len(points)
        else:  # pragma: no cover - SearchSpec.from_dict validates algorithms
            raise ValueError(f"Unknown algorithm '{job.algorithm}'")
    finally:
        if cache is not None:
            cache_stats["hits"] = cache.hits
            cache_stats["misses"] = cache.misses
            cache_stats["persisted"] = getattr(cache, "n_persisted", None)
            close = getattr(cache, "close", None)
            if callable(close):
                close()

    baseline = prepared.baseline_point
    best = best_area_gain_at_loss(front, baseline, config.max_accuracy_loss)
    front_document = {
        "job_id": job.job_id,
        "dataset": job.dataset,
        "algorithm": job.algorithm,
        "search_name": job.search_name,
        "seed": job.seed,
        "baseline": baseline.as_dict(),
        "front": [point.as_dict() for point in front],
        "best_gain_within_loss_budget": None if best is None else float(best.area_gain),
        "max_accuracy_loss": float(config.max_accuracy_loss),
    }
    wall_s = time.perf_counter() - start
    result_document = {
        "job": job.as_dict(),
        "status": "completed",
        "wall_s": round(wall_s, 6),
        "n_evaluations": n_evaluations,
        "front_size": len(front),
        "cache": cache_stats,
        "generations": generations,
    }
    journal.write_job_artifacts(job.job_id, front_document, result_document)
    return JobOutcome(
        job_id=job.job_id,
        status="completed",
        wall_s=wall_s,
        n_evaluations=n_evaluations,
        front_size=len(front),
    )


def _default_cache_factory(
    cache_dir: Path, context_key: str, max_entries: Optional[int]
) -> EvaluationCache:
    """The production cache backend: a persistent JSONL shard per context."""
    return PersistentEvaluationCache(cache_dir, context_key, max_entries=max_entries)


def _run_job_task(
    job_data: Dict[str, object],
    directory: str,
    use_cache: bool,
    retry_data: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Pool-worker entry: execute one job, never raise (failures are data).

    Transient failures are retried in the worker process per the (plain
    data, picklable) retry policy; the retry history travels back in the
    payload so the parent journals it in the manifest.
    """
    job = JobSpec.from_dict(job_data)
    retry = RetryPolicy.from_dict(retry_data) if retry_data is not None else RetryPolicy()
    retries: List[Dict[str, object]] = []
    attempt = 0
    while True:
        attempt += 1
        try:
            outcome = execute_job(job, directory, use_cache=use_cache)
        except Exception as error:  # noqa: BLE001 - worker must report, not crash the pool
            if retry.should_retry(error, attempt):
                delay = retry.delay(job.job_id, attempt)
                retries.append(
                    {
                        "attempt": attempt,
                        "delay": round(delay, 6),
                        "error": f"{type(error).__name__}: {error}",
                    }
                )
                if delay > 0:
                    time.sleep(delay)
                continue
            return {
                "job_id": job.job_id,
                "status": "failed",
                "error": f"{type(error).__name__}: {error}",
                "attempts": attempt,
                "retries": retries,
            }
        return {
            "job_id": outcome.job_id,
            "status": outcome.status,
            "wall_s": outcome.wall_s,
            "n_evaluations": outcome.n_evaluations,
            "front_size": outcome.front_size,
            "attempts": attempt,
            "retries": retries,
        }


class CampaignRunner:
    """Execute (or resume) a campaign inside one directory.

    Args:
        spec: the campaign to run. On a fresh directory the spec is copied
            to ``spec.json``; on an existing one the fingerprints must match
            (a changed spec invalidates journaled state).
        directory: campaign output directory (created on demand).
        max_workers: jobs run concurrently when > 1 (process pool). Each
            job's own evaluation fan-out (``pipeline.n_workers``) composes
            with this.
        use_cache: journal per-genome evaluations to the persistent on-disk
            cache (default on — this is what makes mid-job resume cheap).
        cache_factory: test hook replacing the persistent-cache constructor;
            forces serial execution because factories don't cross processes.
        shard: optional ``"i/n"`` selector — this runner only executes jobs
            whose grid index is congruent to ``i`` mod ``n``.
        retry: transient-failure policy (default :class:`RetryPolicy`):
            I/O- and timeout-shaped job failures retry with bounded
            exponential backoff; deterministic failures fail fast. Pass
            ``RetryPolicy(max_attempts=1)`` to disable retries.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        directory: Union[str, Path],
        max_workers: int = 1,
        use_cache: bool = True,
        cache_factory: Optional[CacheFactory] = None,
        shard: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.spec = spec
        self.directory = Path(directory)
        self.journal = CampaignJournal(self.directory)
        self.max_workers = int(max_workers)
        self.use_cache = bool(use_cache)
        self.cache_factory = cache_factory
        self.shard = parse_shard(shard)
        self.retry = retry if retry is not None else RetryPolicy()

    # -- lifecycle ---------------------------------------------------------------

    def _persist_spec(self) -> None:
        """Write ``spec.json`` on first run; verify the fingerprint afterwards."""
        persist_spec(self.journal, self.spec)

    def run(self, max_jobs: Optional[int] = None) -> CampaignRunSummary:
        """Run every pending job (resuming past work), up to ``max_jobs``.

        Completed jobs are detected from the journal and skipped — calling
        ``run`` on a finished campaign is a no-op. ``max_jobs`` bounds how
        many pending jobs this call executes (useful for incremental
        drains and for tests that interrupt a campaign deterministically).
        """
        self._persist_spec()
        jobs = select_shard(self.spec.expand(), self.shard)
        completed = self.journal.completed_job_ids()
        pending = [job for job in jobs if job.job_id not in completed]
        to_run = pending if max_jobs is None else pending[: max(0, int(max_jobs))]
        self.journal.append(
            "run_started",
            fingerprint=self.spec.fingerprint(),
            n_jobs=len(jobs),
            n_completed=len(jobs) - len(pending),
            n_scheduled=len(to_run),
            max_workers=self.max_workers,
            shard=None if self.shard is None else f"{self.shard[0]}/{self.shard[1]}",
        )
        summary = CampaignRunSummary(
            directory=self.directory,
            total_jobs=len(jobs),
            completed_before=len(jobs) - len(pending),
        )
        if self.max_workers > 1 and self.cache_factory is not None:
            warnings.warn(
                "cache_factory is not picklable across processes; "
                "running jobs serially.",
                RuntimeWarning,
                stacklevel=2,
            )
        if self.max_workers > 1 and len(to_run) > 1 and self.cache_factory is None:
            outcomes = self._run_pool(to_run)
        else:
            outcomes = [self._run_serial(job) for job in to_run]
        summary.outcomes = outcomes
        completed_now = self.journal.completed_job_ids()
        summary.remaining = sum(
            1 for job in jobs if job.job_id not in completed_now
        )
        # "campaign_completed" means the WHOLE grid is done, not just this
        # runner's shard — another shard's jobs may still be pending. The
        # once-only predicate is shared with the fabric coordinator so
        # every execution mode reports completion identically.
        mark_campaign_completed(self.journal, self.spec)
        return summary

    # -- execution strategies ----------------------------------------------------

    def _run_serial(self, job: JobSpec) -> JobOutcome:
        """Run one job in-process, journaling start/retries/completion/failure.

        Transient failures (I/O, timeouts, broken pools) retry with the
        runner's backoff policy; deterministic failures are journaled and
        surfaced after the first attempt.
        """
        self.journal.append("job_started", job_id=job.job_id)
        attempt = 0
        while True:
            attempt += 1
            try:
                outcome = execute_job(
                    job,
                    self.directory,
                    use_cache=self.use_cache,
                    cache_factory=self.cache_factory,
                )
            except Exception as error:
                message = f"{type(error).__name__}: {error}"
                if self.retry.should_retry(error, attempt):
                    delay = self.retry.delay(job.job_id, attempt)
                    self.journal.append(
                        "job_retrying",
                        job_id=job.job_id,
                        attempt=attempt,
                        delay=round(delay, 6),
                        error=message,
                    )
                    if delay > 0:
                        time.sleep(delay)
                    continue
                self.journal.append(
                    "job_failed", job_id=job.job_id, error=message, attempts=attempt
                )
                return JobOutcome(
                    job_id=job.job_id, status="failed", error=message, attempts=attempt
                )
            outcome.attempts = attempt
            self.journal.append(
                "job_completed",
                job_id=job.job_id,
                wall_s=round(outcome.wall_s, 6),
                n_evaluations=outcome.n_evaluations,
                front_size=outcome.front_size,
                attempts=attempt,
            )
            return outcome

    def _run_pool(self, jobs: List[JobSpec]) -> List[JobOutcome]:
        """Fan whole jobs out over a process pool, journaling in submit order.

        If the pool cannot be created or dies (no fork support, resource
        limits), the remaining jobs fall back to the serial path — a
        campaign never fails because of the pool.
        """
        outcomes: List[JobOutcome] = []
        try:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                futures = []
                for job in jobs:
                    self.journal.append("job_started", job_id=job.job_id)
                    futures.append(
                        pool.submit(
                            _run_job_task,
                            job.as_dict(),
                            str(self.directory),
                            self.use_cache,
                            self.retry.as_dict(),
                        )
                    )
                for future in futures:
                    outcomes.append(self._journal_pool_outcome(future.result()))
        except (OSError, BrokenExecutor) as error:
            warnings.warn(
                f"Job pool unavailable ({error!r}); running remaining jobs serially.",
                RuntimeWarning,
                stacklevel=2,
            )
            completed = self.journal.completed_job_ids()
            reported = {outcome.job_id for outcome in outcomes}
            for job in jobs:
                if job.job_id in reported or job.job_id in completed:
                    continue
                outcomes.append(self._run_serial(job))
        return outcomes

    def _journal_pool_outcome(self, payload: Dict[str, object]) -> JobOutcome:
        """Translate a worker's outcome dict into journal events + JobOutcome.

        The worker's retry history (if any) is journaled first so the
        manifest reads in causal order: retries, then the terminal event.
        """
        job_id = str(payload["job_id"])
        attempts = int(payload.get("attempts", 1))
        for retried in payload.get("retries", []):  # type: ignore[union-attr]
            self.journal.append(
                "job_retrying",
                job_id=job_id,
                attempt=int(retried.get("attempt", 1)),
                delay=float(retried.get("delay", 0.0)),
                error=str(retried.get("error", "")),
            )
        if payload["status"] == "completed":
            self.journal.append(
                "job_completed",
                job_id=job_id,
                wall_s=round(float(payload.get("wall_s", 0.0)), 6),
                n_evaluations=int(payload.get("n_evaluations", 0)),
                front_size=int(payload.get("front_size", 0)),
                attempts=attempts,
            )
            return JobOutcome(
                job_id=job_id,
                status="completed",
                wall_s=float(payload.get("wall_s", 0.0)),
                n_evaluations=int(payload.get("n_evaluations", 0)),
                front_size=int(payload.get("front_size", 0)),
                attempts=attempts,
            )
        error = str(payload.get("error", "unknown error"))
        self.journal.append("job_failed", job_id=job_id, error=error, attempts=attempts)
        return JobOutcome(job_id=job_id, status="failed", error=error, attempts=attempts)
