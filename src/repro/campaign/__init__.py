"""Campaign orchestration: resumable multi-dataset search campaigns.

This package turns the fast single-search kernel (:mod:`repro.search`) into
a multi-scenario service. A declarative spec (:class:`CampaignSpec`, YAML/
JSON/dict) expands a grid of {dataset × search algorithm × seed} into jobs;
:class:`CampaignRunner` executes them through the shared evaluation engine
with bounded concurrency and journals everything to a campaign directory —
JSONL manifest, per-genome evaluation records (the persistent
:class:`PersistentEvaluationCache`), and per-job Pareto fronts — so a
killed campaign resumes exactly where it stopped. Resumed runs are
bit-identical to uninterrupted ones: job results are pure functions of
their specs, and the SHA-256 per-genome seeding of
:func:`repro.search.evaluator.genome_seed` makes every cached evaluation
exactly what a fresh one would produce.

Typical use (also exposed as ``repro campaign run|resume|status|report``)::

    from repro.campaign import CampaignRunner, CampaignSpec

    spec = CampaignSpec.from_dict({
        "name": "demo",
        "datasets": ["whitewine", "seeds"],
        "pipeline": {"fast": True},
        "searches": [{"algorithm": "ga", "population_size": 8,
                      "n_generations": 3}],
    })
    summary = CampaignRunner(spec, "campaign_out").run()

See ``docs/campaigns.md`` for the spec format, resume semantics and the
cache/journal layout on disk, and ``docs/fabric.md`` for the multi-worker
fault-tolerant fabric (:mod:`repro.campaign.fabric`) layered on top — a
lease/heartbeat/requeue coordinator (``repro campaign coordinate``) plus
elastic workers (``repro campaign work``) over the same campaign
directory, with the byte-identical-results guarantee intact.
"""

from .cache import (
    CACHE_SCHEMA_VERSION,
    JournalRecord,
    PersistentEvaluationCache,
    SimulatedCrash,
    evaluation_context_key,
    load_journal_records,
)
from .columnar import ColumnarFront, load_front_npz, write_front_npz
from .fabric import (
    ChaosPolicy,
    FabricCoordinator,
    FabricRunSummary,
    FabricStatus,
    FabricWorker,
    FaultSpec,
    LeaseDirectory,
    LeaseLost,
    RetryPolicy,
    WorkerRunSummary,
)
from .journal import (
    CampaignJournal,
    campaign_status,
    format_status,
    mark_campaign_completed,
    persist_spec,
    read_json,
    write_json_atomic,
)
from .report import build_report, collect_fronts, format_report, write_report
from .runner import CampaignRunner, CampaignRunSummary, JobOutcome, execute_job
from .spec import (
    ALGORITHMS,
    CampaignSpec,
    JobSpec,
    SearchSpec,
    load_spec,
    parse_shard,
    select_shard,
)

__all__ = [
    "ALGORITHMS",
    "CACHE_SCHEMA_VERSION",
    "CampaignJournal",
    "CampaignRunSummary",
    "CampaignRunner",
    "CampaignSpec",
    "ChaosPolicy",
    "ColumnarFront",
    "FabricCoordinator",
    "FabricRunSummary",
    "FabricStatus",
    "FabricWorker",
    "FaultSpec",
    "JobOutcome",
    "JobSpec",
    "JournalRecord",
    "LeaseDirectory",
    "LeaseLost",
    "PersistentEvaluationCache",
    "RetryPolicy",
    "SearchSpec",
    "SimulatedCrash",
    "WorkerRunSummary",
    "build_report",
    "campaign_status",
    "collect_fronts",
    "evaluation_context_key",
    "execute_job",
    "format_report",
    "format_status",
    "load_front_npz",
    "load_journal_records",
    "load_spec",
    "mark_campaign_completed",
    "parse_shard",
    "persist_spec",
    "read_json",
    "select_shard",
    "write_front_npz",
    "write_json_atomic",
    "write_report",
]
