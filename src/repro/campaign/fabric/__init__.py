"""Fault-tolerant multi-worker campaign fabric.

A filesystem-backed work queue that coordinates elastic workers over one
shared campaign directory — no server, no sockets, no new dependencies;
only atomic POSIX file operations (``O_CREAT|O_EXCL`` creates, temp file +
``os.replace``, append-only journals). The pieces:

* :mod:`.leases` — time-bounded job claims with heartbeat renewal and
  steal-on-expiry,
* :mod:`.worker` — elastic workers that lease, execute, journal and retry,
* :mod:`.coordinator` — publishes the job grid, merges worker journals
  into the canonical manifest, requeues expired leases, quarantines poison
  jobs, and degrades to serial in-process execution when no workers show,
* :mod:`.retry` — transient/deterministic failure classification and
  bounded exponential backoff with deterministic jitter,
* :mod:`.chaos` — the fault-injection harness (worker kills, heartbeat
  stalls, torn journal tails, forged leases, clock skew) behind the golden
  tests that prove fabric campaigns are byte-identical to serial ones,
* :mod:`.layout` — the on-disk shape of ``<campaign>/fabric/``.

See ``docs/fabric.md`` for the lifecycle, lease protocol and failure
matrix.
"""

from .chaos import (
    ChaosEvaluationCache,
    ChaosKill,
    ChaosPolicy,
    FaultSpec,
    ManualClock,
    SkewedClock,
    corrupt_record,
    forge_lease,
    truncate_tail,
)
from .coordinator import FabricCoordinator, FabricRunSummary, FabricStatus
from .layout import FabricLayout, read_worker_events
from .leases import Lease, LeaseDirectory, LeaseLost
from .retry import RetryPolicy, is_transient
from .worker import FabricWorker, WorkerRunSummary

__all__ = [
    "ChaosEvaluationCache",
    "ChaosKill",
    "ChaosPolicy",
    "FabricCoordinator",
    "FabricLayout",
    "FabricRunSummary",
    "FabricStatus",
    "FabricWorker",
    "FaultSpec",
    "Lease",
    "LeaseDirectory",
    "LeaseLost",
    "ManualClock",
    "RetryPolicy",
    "SkewedClock",
    "WorkerRunSummary",
    "corrupt_record",
    "forge_lease",
    "is_transient",
    "read_worker_events",
    "truncate_tail",
]
