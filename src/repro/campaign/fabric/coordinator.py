"""The fabric coordinator: publish, merge, reap, requeue, quarantine.

The coordinator is the campaign's single writer of canonical state. It

* expands the :class:`~repro.campaign.spec.CampaignSpec` grid and
  **publishes** one queue entry per pending job,
* **merges** every worker's append-only journal into the canonical
  ``manifest.jsonl`` (per-worker merge cursors in ``cursors.json``; worker
  timestamps and identities are preserved, so the manifest reads like one
  interleaved history),
* **reaps** state: completed/failed jobs leave the queue, expired leases
  are cleared and their jobs **requeued** with a bumped requeue count,
* **quarantines** poison jobs that exhaust the requeue cap (a job that
  keeps killing its workers must not wedge the campaign), and
* **degrades to serial execution** when no worker heartbeats within
  ``worker_timeout`` — an inline, unregistered worker drains the queue in
  the coordinator's own process, so ``repro campaign coordinate`` with no
  workers behaves exactly like ``repro campaign run``.

Crash-safety of the merge: the coordinator appends merged events *before*
advancing ``cursors.json``, so a coordinator killed between the two can
only re-merge events (duplicates in the manifest), never lose them — and
every consumer of the manifest (status, ``failed_job_ids``) already
tolerates duplicate events. Completion is detected from artifact markers
(``result.json``), never from journal events, so a torn worker journal
tail costs log detail only.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Union

from ..journal import (
    CampaignJournal,
    mark_campaign_completed,
    persist_spec,
    write_json_atomic,
)
from ..spec import CampaignSpec
from .layout import FabricLayout, read_json_tolerant, read_worker_events
from .leases import LeaseDirectory
from .retry import RetryPolicy
from .worker import FabricWorker

#: Worker id used by the coordinator's serial-fallback inline worker.
INLINE_WORKER_ID = "coordinator-inline"


@dataclass
class FabricStatus:
    """One coordinator observation of the fabric (returned by ``step``)."""

    total: int
    completed: int
    failed: int
    quarantined: int
    pending: int
    live_workers: List[str] = field(default_factory=list)
    live_leases: int = 0

    @property
    def all_done(self) -> bool:
        """No job is pending: everything completed, failed or quarantined."""
        return self.pending == 0

    @property
    def complete(self) -> bool:
        """The entire grid completed successfully."""
        return self.completed == self.total


@dataclass
class FabricRunSummary:
    """Aggregate outcome of one :meth:`FabricCoordinator.run` call."""

    directory: Path
    status: FabricStatus
    requeues: int = 0
    serial_fallback: bool = False
    inline_completed: int = 0

    @property
    def ok(self) -> bool:
        """True when the whole grid completed."""
        return self.status.complete


class FabricCoordinator:
    """Drive one campaign over the fabric work queue.

    Args:
        spec: the campaign to run (fingerprint-checked against any existing
            ``spec.json`` exactly like the single-host runner).
        directory: campaign directory; fabric state goes under ``fabric/``.
        lease_ttl: lease lifetime handed to the lease directory — a lease
            older than this with no heartbeat is considered abandoned.
        worker_timeout: seconds to wait for any worker heartbeat before
            degrading to serial in-process execution (``0`` degrades
            immediately; used by tests and the no-workers CLI path).
        max_requeues: requeue cap per job; exceeding it quarantines the
            job as poison instead of requeueing forever.
        use_cache: passed to the inline fallback worker.
        retry: transient-failure policy for the inline fallback worker.
        now_fn: clock for lease/heartbeat decisions (injectable).
        sleep_fn: poll-loop sleep (injectable).
        execute_fn: job executor for the inline fallback worker (tests).
    """

    def __init__(
        self,
        spec: CampaignSpec,
        directory: Union[str, Path],
        lease_ttl: float = 30.0,
        worker_timeout: float = 10.0,
        max_requeues: int = 2,
        use_cache: bool = True,
        retry: Optional[RetryPolicy] = None,
        now_fn: Callable[[], float] = time.time,
        sleep_fn: Callable[[float], None] = time.sleep,
        execute_fn: Optional[Callable[..., object]] = None,
    ) -> None:
        if max_requeues < 0:
            raise ValueError(f"max_requeues must be >= 0, got {max_requeues}")
        self.spec = spec
        self.directory = Path(directory)
        self.journal = CampaignJournal(self.directory)
        self.layout = FabricLayout(self.directory)
        self.leases = LeaseDirectory(self.layout.leases_dir, ttl=lease_ttl, now_fn=now_fn)
        self.lease_ttl = float(lease_ttl)
        self.worker_timeout = float(worker_timeout)
        self.max_requeues = int(max_requeues)
        self.use_cache = bool(use_cache)
        self.retry = retry
        self.now_fn = now_fn
        self.sleep_fn = sleep_fn
        self.execute_fn = execute_fn
        self.requeues_issued = 0

    # -- publishing --------------------------------------------------------------

    def publish(self) -> int:
        """Expand the grid and publish queue entries for every pending job.

        Idempotent: existing queue entries, completed jobs and quarantined
        jobs are skipped. A leftover deterministic-failure record is
        cleared — starting a coordinator is an explicit decision to retry
        failed jobs, exactly like ``repro campaign resume`` (quarantine is
        stickier: it survives restarts and must be cleared by hand).
        Returns the number of newly published jobs.
        """
        persist_spec(self.journal, self.spec)
        completed = self.journal.completed_job_ids()
        quarantined = set(self.layout.quarantined_job_ids())
        published = 0
        for job in self.spec.expand():
            if job.job_id in completed or job.job_id in quarantined:
                continue
            failed_entry = self.layout.failed_entry(job.job_id)
            if failed_entry.exists():
                failed_entry.unlink()
            entry_path = self.layout.queue_entry(job.job_id)
            if entry_path.exists():
                continue
            write_json_atomic(
                entry_path,
                {
                    "job": job.as_dict(),
                    "requeues": 0,
                    "published": round(self.now_fn(), 3),
                },
            )
            self.journal.append("job_published", job_id=job.job_id)
            published += 1
        return published

    # -- the merge ---------------------------------------------------------------

    def merge_worker_journals(self) -> int:
        """Fold new per-worker journal events into the canonical manifest.

        Reads each worker journal's decodable *prefix*, appends every event
        past that worker's merge cursor to ``manifest.jsonl`` (preserving
        the worker's ``unix_time`` and ``worker_id``), then advances the
        cursor. Append-before-advance means a crash here duplicates events
        rather than losing them. Returns the number of events merged.
        """
        cursors = read_json_tolerant(self.layout.cursors_path) or {}
        merged = 0
        if not self.layout.workers_dir.is_dir():
            return 0
        for journal_path in sorted(self.layout.workers_dir.glob("*.jsonl")):
            worker_id = journal_path.stem
            events = read_worker_events(journal_path)
            cursor = cursors.get(worker_id, 0)
            if not isinstance(cursor, int) or cursor < 0:
                cursor = 0
            for event in events[cursor:]:
                payload = {key: value for key, value in event.items() if key != "event"}
                self.journal.append(str(event["event"]), **payload)
                merged += 1
            if len(events) != cursor:
                cursors[worker_id] = len(events)
        if merged:
            write_json_atomic(self.layout.cursors_path, cursors)
        return merged

    # -- reaping and requeueing --------------------------------------------------

    def _requeue_or_quarantine(self, entry: dict, worker_id: str) -> None:
        """Handle one expired lease: bump the requeue count or quarantine."""
        job_id = str(entry["job"]["job_id"])
        requeues = int(entry.get("requeues", 0)) + 1
        self.journal.append(
            "lease_expired", job_id=job_id, worker_id=worker_id, requeues=requeues
        )
        self.requeues_issued += 1
        if requeues > self.max_requeues:
            write_json_atomic(
                self.layout.quarantine_entry(job_id),
                {
                    "job_id": job_id,
                    "requeues": requeues,
                    "last_worker": worker_id,
                    "quarantined": round(self.now_fn(), 3),
                },
            )
            self.journal.append(
                "job_quarantined", job_id=job_id, requeues=requeues, last_worker=worker_id
            )
            self.layout.queue_entry(job_id).unlink(missing_ok=True)
            return
        write_json_atomic(
            self.layout.queue_entry(job_id),
            {**entry, "requeues": requeues, "requeued": round(self.now_fn(), 3)},
        )
        self.journal.append("job_requeued", job_id=job_id, requeues=requeues)

    def step(self) -> FabricStatus:
        """One coordination pass: merge, reap, requeue, summarize.

        Safe to call at any frequency; every action is idempotent. Writes
        the terminal ``complete.json`` marker (and the once-only
        ``campaign_completed`` manifest event) when no job remains pending.
        """
        self.merge_worker_journals()
        now = self.now_fn()
        completed = self.journal.completed_job_ids()
        for entry in self.layout.queue_entries():
            job = entry.get("job")
            if not isinstance(job, dict) or "job_id" not in job:
                continue
            job_id = str(job["job_id"])
            if job_id in completed or self.layout.failed_entry(job_id).exists():
                self.leases.remove(job_id)
                self.layout.queue_entry(job_id).unlink(missing_ok=True)
                continue
            lease = self.leases.read(job_id)
            if lease is not None and lease.expires <= now:
                self.leases.remove(job_id)
                self._requeue_or_quarantine(entry, lease.worker_id)
        # Leases with no pending queue entry are leftovers (forged, or the
        # job completed/failed since): clear them so nothing looks in-flight.
        pending_ids = {
            str(entry["job"]["job_id"])
            for entry in self.layout.queue_entries()
            if isinstance(entry.get("job"), dict) and "job_id" in entry["job"]
        }
        for lease in self.leases.all_leases():
            if lease.job_id not in pending_ids:
                self.leases.remove(lease.job_id)
        status = self._status()
        if status.all_done and not self.layout.complete_path.exists():
            write_json_atomic(
                self.layout.complete_path,
                {
                    "total": status.total,
                    "completed": status.completed,
                    "failed": status.failed,
                    "quarantined": status.quarantined,
                },
            )
            self.journal.append(
                "fabric_drained",
                completed=status.completed,
                failed=status.failed,
                quarantined=status.quarantined,
            )
            mark_campaign_completed(self.journal, self.spec)
        return status

    def _status(self) -> FabricStatus:
        """Counts + liveness as of now (artifact markers are the truth)."""
        jobs = self.spec.expand()
        grid_ids = {job.job_id for job in jobs}
        completed = self.journal.completed_job_ids() & grid_ids
        quarantined = set(self.layout.quarantined_job_ids()) & grid_ids
        failed = (set(self.layout.failed_job_ids()) & grid_ids) - completed - quarantined
        pending = grid_ids - completed - failed - quarantined
        now = self.now_fn()
        window = self.worker_timeout if self.worker_timeout > 0 else self.lease_ttl
        live_workers = []
        for worker_id in self.layout.worker_ids():
            registration = read_json_tolerant(self.layout.worker_registration(worker_id))
            if registration is None:
                continue
            heartbeat = registration.get("heartbeat")
            if isinstance(heartbeat, (int, float)) and now - heartbeat < window:
                live_workers.append(worker_id)
        live, _expired = self.leases.partition()
        return FabricStatus(
            total=len(jobs),
            completed=len(completed),
            failed=len(failed),
            quarantined=len(quarantined),
            pending=len(pending),
            live_workers=live_workers,
            live_leases=len(live),
        )

    # -- the drive loop ----------------------------------------------------------

    def run(
        self,
        poll_interval: float = 0.2,
        max_wall_s: Optional[float] = None,
        serial_fallback: bool = True,
    ) -> FabricRunSummary:
        """Publish, then coordinate until the campaign is terminal.

        When ``serial_fallback`` is on and no worker has heartbeated (and
        no lease is live) for ``worker_timeout`` seconds, an inline,
        unregistered :class:`~.worker.FabricWorker` starts draining jobs in
        this process between coordination passes — elastic workers joining
        later still pick up whatever the inline worker has not claimed.

        Args:
            poll_interval: sleep between passes while waiting on workers.
            max_wall_s: optional hard wall-clock bound (summary reports
                whatever state was reached).
            serial_fallback: disable to make the coordinator purely
                supervisory (it will wait for workers forever).
        """
        self.publish()
        started = time.monotonic()
        inline: Optional[FabricWorker] = None
        inline_completed = 0
        used_fallback = False
        while True:
            status = self.step()
            if status.all_done:
                break
            if max_wall_s is not None and time.monotonic() - started >= max_wall_s:
                break
            waited = time.monotonic() - started
            idle_fabric = not status.live_workers and status.live_leases == 0
            if serial_fallback and idle_fabric and waited >= self.worker_timeout:
                if inline is None:
                    inline = FabricWorker(
                        self.directory,
                        worker_id=INLINE_WORKER_ID,
                        lease_ttl=self.lease_ttl,
                        use_cache=self.use_cache,
                        retry=self.retry,
                        now_fn=self.now_fn,
                        sleep_fn=self.sleep_fn,
                        execute_fn=self.execute_fn,
                        register=False,
                    )
                    used_fallback = True
                    self.journal.append("serial_fallback", worker_timeout=self.worker_timeout)
                step_status = inline.step()
                if step_status == "completed":
                    inline_completed += 1
                elif step_status in ("idle", "stalled"):
                    self.sleep_fn(poll_interval)
            else:
                self.sleep_fn(poll_interval)
        final = self.step()
        return FabricRunSummary(
            directory=self.directory,
            status=final,
            requeues=self.requeues_issued,
            serial_fallback=used_fallback,
            inline_completed=inline_completed,
        )
