"""Elastic fabric workers: lease, execute, heartbeat, journal, retry.

A :class:`FabricWorker` is one claimant on a campaign's fabric directory.
It owns no global state: workers can join a running campaign at any time,
die at any time (the coordinator reaps their expired leases), and any
number of them can share the directory — over local processes today and
an NFS mount tomorrow.

The execution model per :meth:`~FabricWorker.step`:

1. heartbeat the registration file (so the coordinator knows a worker
   exists — this is what keeps it from degrading to serial execution),
2. scan the queue in sorted order and try to lease the first claimable
   job (``O_EXCL`` create / steal-if-expired, see :mod:`.leases`),
3. execute it through the exact same :func:`~repro.campaign.runner.execute_job`
   the single-host runner uses — artifacts, cache shards and determinism
   guarantees are shared, which is why a fabric campaign's results are
   byte-identical to a serial run's,
4. heartbeat the lease after every fresh evaluation (via the cache hook),
5. retry transient failures with bounded exponential backoff, fail fast
   on deterministic ones (a ``failed/`` record tells the coordinator and
   the other workers to leave the job alone),
6. journal every transition to the worker's own append-only journal —
   the coordinator merges these into the canonical ``manifest.jsonl``
   (per-rank logs, one aggregated report).

Chaos-test hooks (:mod:`.chaos`) fire at the documented fault points; in
production configurations ``chaos`` is ``None`` and every hook is inert.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from ..journal import write_json_atomic
from ..spec import JobSpec
from .chaos import ChaosEvaluationCache, ChaosPolicy
from .layout import FabricLayout
from .leases import Lease, LeaseDirectory, LeaseLost
from .retry import RetryPolicy

#: Statuses :meth:`FabricWorker.step` can return.
STEP_STATUSES: Tuple[str, ...] = (
    "completed",  # leased a job and finished it
    "failed",     # leased a job; it failed deterministically (record written)
    "idle",       # nothing claimable right now
    "stalled",    # chaos: holding a lease without executing (hung worker)
    "abandoned",  # woke from a stall to find the lease stolen; job dropped
    "done",       # the coordinator marked the campaign terminal
)


@dataclass
class WorkerRunSummary:
    """Aggregate outcome of one :meth:`FabricWorker.run` call."""

    worker_id: str
    completed: int = 0
    failed: int = 0
    steps: int = 0


class FabricWorker:
    """One elastic worker process (or in-process step-driven worker).

    Args:
        directory: the campaign directory (the fabric lives under
            ``<directory>/fabric``).
        worker_id: stable identity; defaults to ``w<pid>``. Becomes the
            per-worker journal/registration name, so it must be unique
            among concurrently running workers.
        lease_ttl: lease lifetime in seconds. Must comfortably exceed the
            duration of one evaluation (heartbeats fire between
            evaluations, not during one).
        use_cache: share fresh evaluations through the campaign's
            persistent cache (default on; this is what dedupes work when
            leases race or jobs are requeued mid-flight).
        retry: transient-failure policy (default :class:`RetryPolicy`).
        chaos: optional :class:`~.chaos.ChaosPolicy` for fault injection.
        now_fn: clock for lease timestamps (chaos clock-skew injects here).
        sleep_fn: used for retry backoff and idle polling (injectable).
        execute_fn: job executor; defaults to
            :func:`~repro.campaign.runner.execute_job`. Tests substitute a
            stub to drive thousands of protocol interleavings cheaply.
        register: write the registration/heartbeat file (the coordinator's
            inline fallback worker turns this off so it does not count
            itself as an external worker).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        worker_id: Optional[str] = None,
        lease_ttl: float = 30.0,
        use_cache: bool = True,
        retry: Optional[RetryPolicy] = None,
        chaos: Optional[ChaosPolicy] = None,
        now_fn: Callable[[], float] = time.time,
        sleep_fn: Callable[[float], None] = time.sleep,
        execute_fn: Optional[Callable[..., object]] = None,
        register: bool = True,
    ) -> None:
        self.directory = Path(directory)
        self.worker_id = worker_id if worker_id is not None else f"w{os.getpid()}"
        self.layout = FabricLayout(self.directory)
        self.leases = LeaseDirectory(self.layout.leases_dir, ttl=lease_ttl, now_fn=now_fn)
        self.use_cache = bool(use_cache)
        self.retry = retry if retry is not None else RetryPolicy()
        self.chaos = chaos
        self.now_fn = now_fn
        self.sleep_fn = sleep_fn
        if execute_fn is None:
            # Deferred: runner imports fabric.retry at module scope, so a
            # top-level import here would close an import cycle.
            from ..runner import execute_job

            execute_fn = execute_job
        self.execute_fn = execute_fn
        self.register = bool(register)
        self._started = now_fn()
        self._lease: Optional[Lease] = None
        self._stalled: Optional[Tuple[Dict[str, object], Lease]] = None

    # -- journaling and registration ---------------------------------------------

    def journal(self, event: str, **payload: object) -> None:
        """Append one event to this worker's journal (chaos point ``worker_journal``)."""
        if self.chaos is not None:
            self.chaos.hit("worker_journal")
        self.layout.workers_dir.mkdir(parents=True, exist_ok=True)
        record = {
            "event": event,
            "worker_id": self.worker_id,
            "unix_time": round(self.now_fn(), 3),
            **payload,
        }
        with open(self.layout.worker_journal(self.worker_id), "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()

    def _register(self) -> None:
        """Write/refresh the registration heartbeat (chaos point ``heartbeat``)."""
        if not self.register:
            return
        if self.chaos is not None and self.chaos.hit("heartbeat") == "stall":
            return
        write_json_atomic(
            self.layout.worker_registration(self.worker_id),
            {
                "worker_id": self.worker_id,
                "started": round(self._started, 3),
                "heartbeat": round(self.now_fn(), 3),
                "pid": os.getpid(),
            },
        )

    def _maybe_renew_lease(self) -> None:
        """Heartbeat the held lease when past half its TTL (chaos: ``heartbeat``).

        Called between evaluations (after each fresh cache put). A lost
        lease is journaled but execution continues: results are pure
        functions of the job spec and every fresh evaluation lands in the
        shared cache, so finishing is harmless and usually useful.
        """
        lease = self._lease
        if lease is None:
            return
        if self.chaos is not None and self.chaos.hit("heartbeat") == "stall":
            return
        if self.now_fn() < lease.expires - self.leases.ttl / 2.0:
            return
        try:
            self._lease = self.leases.renew(lease)
        except LeaseLost:
            self.journal("lease_lost", job_id=lease.job_id)
            self._lease = None

    # -- claiming ----------------------------------------------------------------

    def _claimable(self, job_id: str) -> bool:
        """Whether a queue entry is still worth claiming."""
        if (self.directory / "jobs" / job_id / "result.json").is_file():
            return False
        if self.layout.failed_entry(job_id).exists():
            return False
        if self.layout.quarantine_entry(job_id).exists():
            return False
        return True

    def step(self) -> str:
        """Heartbeat, then claim and run at most one job. Returns a status.

        The unit of test-driven interleaving: coordinators and other
        workers can act between any two ``step`` calls, and a chaos kill
        inside a step leaves exactly the state a SIGKILL would.
        """
        self._register()
        if self._stalled is not None:
            return self._resume_after_stall()
        if self.layout.complete_path.exists():
            return "done"
        for entry in self.layout.queue_entries():
            job_data = entry.get("job")
            if not isinstance(job_data, dict) or "job_id" not in job_data:
                continue
            job_id = str(job_data["job_id"])
            if not self._claimable(job_id):
                continue
            lease = self.leases.acquire(job_id, self.worker_id)
            if lease is None:
                continue
            return self._start_leased(entry, lease)
        return "idle"

    def _start_leased(self, entry: Dict[str, object], lease: Lease) -> str:
        """Entry point after winning a lease (chaos point ``job_started``)."""
        self.journal("job_leased", job_id=lease.job_id, requeues=entry.get("requeues", 0))
        if self.chaos is not None and self.chaos.hit("job_started") == "stall":
            # A hung worker: keeps the lease, does nothing. The lease will
            # expire and be stolen/requeued unless the stall ends in time.
            self._stalled = (entry, lease)
            self.journal("job_stalled", job_id=lease.job_id)
            return "stalled"
        return self._run_job(entry, lease)

    def _resume_after_stall(self) -> str:
        """Wake from a stall: still ours? run it. Stolen? abandon it."""
        entry, lease = self._stalled  # type: ignore[misc]
        if self.chaos is not None and self.chaos.hit("job_started") == "stall":
            return "stalled"
        self._stalled = None
        try:
            lease = self.leases.renew(lease)
        except LeaseLost:
            # The fabric moved on while we hung; the job belongs to someone
            # else (or is already done). Drop it without executing.
            self.journal("lease_lost", job_id=lease.job_id)
            self.journal("job_abandoned", job_id=lease.job_id)
            return "abandoned"
        return self._run_job(entry, lease)

    # -- execution ---------------------------------------------------------------

    def _cache_factory(self, cache_dir: Path, context_key: str, max_entries):
        """Build the shared persistent cache wired with heartbeat + chaos hooks."""
        return ChaosEvaluationCache(
            cache_dir,
            context_key,
            max_entries=max_entries,
            chaos=self.chaos,
            on_fresh_put=self._maybe_renew_lease,
        )

    def _run_job(self, entry: Dict[str, object], lease: Lease) -> str:
        """Execute one leased job with bounded retry; journal the outcome."""
        job = JobSpec.from_dict(entry["job"])  # type: ignore[arg-type]
        self._lease = lease
        self.journal("job_started", job_id=job.job_id)
        attempt = 0
        try:
            while True:
                attempt += 1
                try:
                    outcome = self.execute_fn(
                        job,
                        self.directory,
                        use_cache=self.use_cache,
                        cache_factory=self._cache_factory if self.use_cache else None,
                    )
                except Exception as error:  # noqa: BLE001 - classified below
                    message = f"{type(error).__name__}: {error}"
                    if self.retry.should_retry(error, attempt):
                        delay = self.retry.delay(job.job_id, attempt)
                        self.journal(
                            "job_retrying",
                            job_id=job.job_id,
                            attempt=attempt,
                            delay=round(delay, 6),
                            error=message,
                        )
                        self._maybe_renew_lease()
                        if delay > 0:
                            self.sleep_fn(delay)
                        continue
                    write_json_atomic(
                        self.layout.failed_entry(job.job_id),
                        {
                            "job_id": job.job_id,
                            "worker_id": self.worker_id,
                            "error": message,
                            "attempts": attempt,
                            "transient": False,
                        },
                    )
                    self.journal(
                        "job_failed", job_id=job.job_id, error=message, attempts=attempt
                    )
                    self._release(lease)
                    return "failed"
                self.journal(
                    "job_completed",
                    job_id=job.job_id,
                    attempts=attempt,
                    wall_s=round(outcome.wall_s, 6),
                    n_evaluations=outcome.n_evaluations,
                    front_size=outcome.front_size,
                )
                self._release(lease)
                return "completed"
        finally:
            self._lease = None

    def _release(self, lease: Lease) -> None:
        """Release the lease, tolerating a concurrent steal (journaled)."""
        lease = self._lease if self._lease is not None else lease
        try:
            self.leases.release(lease)
        except LeaseLost:
            self.journal("lease_lost", job_id=lease.job_id)

    # -- long-running loop (CLI) -------------------------------------------------

    def run(
        self,
        poll_interval: float = 0.5,
        max_idle_s: Optional[float] = 300.0,
        max_jobs: Optional[int] = None,
    ) -> WorkerRunSummary:
        """Drain jobs until the campaign is terminal (or idle too long).

        Args:
            poll_interval: sleep between idle scans.
            max_idle_s: exit after this long with nothing claimable
                (``None`` waits forever — until the coordinator's terminal
                marker appears).
            max_jobs: stop after executing this many jobs (tests,
                incremental drains).
        """
        summary = WorkerRunSummary(worker_id=self.worker_id)
        idle_since: Optional[float] = None
        self.journal("worker_started", pid=os.getpid())
        while True:
            status = self.step()
            summary.steps += 1
            if status == "done":
                break
            if status == "completed":
                summary.completed += 1
                idle_since = None
            elif status == "failed":
                summary.failed += 1
                idle_since = None
            else:
                now = time.monotonic()
                idle_since = idle_since if idle_since is not None else now
                if max_idle_s is not None and now - idle_since >= max_idle_s:
                    break
                self.sleep_fn(poll_interval)
            if max_jobs is not None and summary.completed + summary.failed >= max_jobs:
                break
        self.journal(
            "worker_stopped", completed=summary.completed, failed=summary.failed
        )
        return summary
