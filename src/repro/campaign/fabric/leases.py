"""Time-bounded job leases over a shared directory of atomic files.

One lease file per job, under ``<campaign>/fabric/leases/``. The protocol
uses only primitives that are atomic on POSIX filesystems (and safe on
modern NFS), so it coordinates worker *processes* on one machine today and
NFS-mounted hosts tomorrow without a server:

* **Acquire** — create the lease file with ``O_CREAT | O_EXCL``: exactly
  one contender wins; everyone else sees the file exists.
* **Heartbeat / renew** — rewrite the lease via temp file + ``os.replace``
  with a pushed-out expiry. Renewal first re-reads the file and verifies
  the lease *token*: a worker whose lease was stolen (see below) gets
  :class:`LeaseLost` instead of silently extending someone else's lease.
* **Steal** — a lease whose ``expires`` timestamp has passed may be taken
  over by replacing the file. Two stealers can race; the ``os.replace``
  is atomic, so exactly one token survives, and each stealer re-reads the
  file afterwards to learn whether it won. The loser backs off.
* **Release** — verify the token, then unlink.

Timestamps come from an injectable ``now_fn`` so tests (and the chaos
harness's clock-skew fault) control time explicitly. Because job results
are pure functions of their specs and every fresh evaluation lands in the
shared persistent cache, a lease raced or stolen at the worst possible
moment can only cost duplicated (deduplicated) work — never a wrong or
diverging campaign result.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union


class LeaseLost(RuntimeError):
    """Raised when renewing/releasing a lease this worker no longer owns.

    The canonical cause: the lease expired (the worker stalled past the
    TTL, or its clock was skewed) and another worker stole it. The holder
    must stop trusting its claim on the job; finishing the in-flight
    computation is harmless (results are deterministic and cache-deduped)
    but no further lease operations may be issued.
    """


@dataclass(frozen=True)
class Lease:
    """One worker's time-bounded claim on one job.

    Attributes:
        job_id: the claimed job.
        worker_id: the claiming worker.
        token: unique per-acquisition secret; ownership checks compare it
            against the token in the lease file, which is what makes
            steal races detectable.
        acquired: unix time of acquisition.
        expires: unix time after which the lease may be stolen.
        renewals: heartbeat count so far.
    """

    job_id: str
    worker_id: str
    token: str
    acquired: float
    expires: float
    renewals: int = 0

    def as_dict(self) -> Dict[str, object]:
        """JSON form stored in the lease file."""
        return {
            "job_id": self.job_id,
            "worker_id": self.worker_id,
            "token": self.token,
            "acquired": self.acquired,
            "expires": self.expires,
            "renewals": self.renewals,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "Lease":
        """Inverse of :meth:`as_dict`."""
        return Lease(
            job_id=str(data["job_id"]),
            worker_id=str(data["worker_id"]),
            token=str(data["token"]),
            acquired=float(data["acquired"]),  # type: ignore[arg-type]
            expires=float(data["expires"]),  # type: ignore[arg-type]
            renewals=int(data.get("renewals", 0)),  # type: ignore[arg-type]
        )


class LeaseDirectory:
    """The lease files of one campaign's fabric, with acquire/renew/steal.

    Args:
        directory: the lease directory (created on demand).
        ttl: lease lifetime in seconds; heartbeats push ``expires`` out by
            this much from *now*.
        now_fn: clock used for every timestamp (injectable for tests and
            for the chaos harness's clock-skew fault).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        ttl: float = 30.0,
        now_fn: Callable[[], float] = time.time,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        self.directory = Path(directory)
        self.ttl = float(ttl)
        self.now_fn = now_fn
        self._acquired_count = 0

    # -- paths -------------------------------------------------------------------

    def path(self, job_id: str) -> Path:
        """Lease file for one job."""
        return self.directory / f"{job_id}.json"

    def _write(self, lease: Lease) -> None:
        """Atomically (re)write a lease file via temp + ``os.replace``.

        The temp name embeds the token so two racing stealers never write
        through the same temp file.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        target = self.path(lease.job_id)
        tmp = target.with_name(f"{target.name}.{lease.token}.tmp")
        tmp.write_text(json.dumps(lease.as_dict(), sort_keys=True) + "\n")
        os.replace(tmp, target)

    def read(self, job_id: str) -> Optional[Lease]:
        """The current lease on a job, or ``None`` (missing or torn file)."""
        try:
            data = json.loads(self.path(job_id).read_text())
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            # A torn lease write (kill mid-replace cannot happen, but a
            # corrupted filesystem can): treated as absent, i.e. stealable.
            return None
        try:
            return Lease.from_dict(data)
        except (KeyError, TypeError, ValueError):
            return None

    # -- protocol ----------------------------------------------------------------

    def _new_token(self, worker_id: str) -> str:
        """Unique-per-acquisition token (never reaches deterministic artifacts)."""
        self._acquired_count += 1
        return f"{worker_id}.{os.getpid()}.{self._acquired_count}.{self.now_fn():.6f}"

    def acquire(self, job_id: str, worker_id: str) -> Optional[Lease]:
        """Try to claim a job: fresh O_EXCL create, or steal if expired.

        Returns the lease on success, ``None`` when another live lease
        holds the job (or a steal race was lost).
        """
        now = self.now_fn()
        lease = Lease(
            job_id=job_id,
            worker_id=worker_id,
            token=self._new_token(worker_id),
            acquired=now,
            expires=now + self.ttl,
        )
        self.directory.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(self.path(job_id), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return self._steal_if_expired(lease)
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(lease.as_dict(), sort_keys=True) + "\n")
        return lease

    def _steal_if_expired(self, candidate: Lease) -> Optional[Lease]:
        """Take over an expired lease; ``None`` if it is live or we lost the race."""
        current = self.read(candidate.job_id)
        if current is not None and current.expires > self.now_fn():
            return None
        # Replace, then read back: of N racing stealers exactly one token
        # survives the last atomic replace... but "last writer wins" means
        # an earlier writer may read back its own token before the final
        # write lands. That window admits two workers both believing they
        # own the lease — which the token check on renew/release converts
        # into LeaseLost for the loser, and the shared evaluation cache
        # dedupes any work raced in the meantime.
        self._write(candidate)
        survivor = self.read(candidate.job_id)
        if survivor is not None and survivor.token == candidate.token:
            return candidate
        return None

    def verify(self, lease: Lease) -> bool:
        """Whether the lease file still carries this lease's token."""
        current = self.read(lease.job_id)
        return current is not None and current.token == lease.token

    def renew(self, lease: Lease) -> Lease:
        """Heartbeat: push the expiry out by one TTL from now.

        Raises :class:`LeaseLost` when the on-disk lease no longer carries
        this worker's token (expired and stolen, or released).
        """
        if not self.verify(lease):
            raise LeaseLost(
                f"lease on '{lease.job_id}' lost by {lease.worker_id} "
                "(expired and taken over, or released)"
            )
        now = self.now_fn()
        renewed = Lease(
            job_id=lease.job_id,
            worker_id=lease.worker_id,
            token=lease.token,
            acquired=lease.acquired,
            expires=now + self.ttl,
            renewals=lease.renewals + 1,
        )
        self._write(renewed)
        return renewed

    def release(self, lease: Lease) -> None:
        """Drop the claim (unlink). Raises :class:`LeaseLost` if not ours."""
        if not self.verify(lease):
            raise LeaseLost(
                f"lease on '{lease.job_id}' cannot be released by "
                f"{lease.worker_id}: token mismatch"
            )
        try:
            self.path(lease.job_id).unlink()
        except FileNotFoundError:  # pragma: no cover - release/steal race
            pass

    def remove(self, job_id: str) -> None:
        """Administratively clear a job's lease file (coordinator reaping)."""
        try:
            self.path(job_id).unlink()
        except FileNotFoundError:
            pass

    # -- inspection --------------------------------------------------------------

    def all_leases(self) -> List[Lease]:
        """Every decodable lease, sorted by job id."""
        if not self.directory.is_dir():
            return []
        leases = []
        for entry in sorted(self.directory.glob("*.json")):
            lease = self.read(entry.stem)
            if lease is not None:
                leases.append(lease)
        return leases

    def partition(self) -> Tuple[List[Lease], List[Lease]]:
        """``(live, expired)`` leases as of ``now_fn()``."""
        now = self.now_fn()
        live, expired = [], []
        for lease in self.all_leases():
            (live if lease.expires > now else expired).append(lease)
        return live, expired
