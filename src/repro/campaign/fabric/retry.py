"""Failure classification and bounded exponential backoff with jitter.

The fabric (and the single-host :class:`~repro.campaign.runner.CampaignRunner`)
distinguish two failure classes:

* **Transient** failures — I/O hiccups, timeouts, broken process pools —
  are worth retrying: the same job re-executed a moment later usually
  succeeds, and because job results are pure functions of their specs a
  retry can never change the outcome, only rescue it.
* **Deterministic** failures — bad configurations, assertion errors,
  :class:`~repro.campaign.cache.SimulatedCrash` and anything else that
  would recur on every attempt — fail fast so a campaign surfaces them
  immediately instead of burning retry budget.

Backoff delays grow exponentially and carry *deterministic* jitter: the
jitter fraction is derived from ``sha256(key, attempt)``, so two workers
retrying different jobs decorrelate (no thundering herd on a shared
filesystem) while any single retry schedule is exactly reproducible in
tests and journals.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass

#: Exception types treated as transient (retryable). ``TimeoutError`` is an
#: ``OSError`` subclass since Python 3.10 but is listed for clarity;
#: ``ConnectionError`` covers the socket family for future remote stores.
TRANSIENT_EXCEPTION_TYPES = (OSError, TimeoutError, ConnectionError, BrokenExecutor)


def is_transient(error: BaseException) -> bool:
    """True when ``error`` is worth retrying (I/O, timeout or pool shaped).

    Anything deriving from the transient exception types qualifies, as does
    any exception whose *type name* mentions a timeout — third-party
    timeout errors rarely subclass :class:`TimeoutError` but are just as
    retryable.
    """
    if isinstance(error, TRANSIENT_EXCEPTION_TYPES):
        return True
    return "timeout" in type(error).__name__.lower()


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    Attributes:
        max_attempts: total attempts per job, first try included. ``1``
            disables retries entirely.
        base_delay: delay before the first retry, in seconds. Doubles per
            subsequent retry. ``0.0`` retries immediately (tests).
        max_delay: ceiling on any single delay.
        jitter: maximum extra fraction added to each delay (``0.25`` means
            up to +25%), drawn deterministically from ``(key, attempt)``.
    """

    max_attempts: int = 3
    base_delay: float = 0.5
    max_delay: float = 30.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        """Validate the attempt and delay bounds."""
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be >= 0")

    def should_retry(self, error: BaseException, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (1-based) may be followed by another."""
        return attempt < self.max_attempts and is_transient(error)

    def delay(self, key: str, attempt: int) -> float:
        """Backoff before the retry that follows attempt ``attempt`` (1-based).

        Exponential in the attempt number, capped at :attr:`max_delay`,
        plus a jitter fraction derived from ``sha256(key, attempt)`` — the
        same (key, attempt) always waits exactly as long.
        """
        raw = min(self.base_delay * (2.0 ** (attempt - 1)), self.max_delay)
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return min(raw * (1.0 + self.jitter * fraction), self.max_delay)

    def as_dict(self) -> dict:
        """Plain-data form (picklable across pool workers, journal-friendly)."""
        return {
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "max_delay": self.max_delay,
            "jitter": self.jitter,
        }

    @staticmethod
    def from_dict(data: dict) -> "RetryPolicy":
        """Inverse of :meth:`as_dict`."""
        return RetryPolicy(
            max_attempts=int(data.get("max_attempts", 3)),
            base_delay=float(data.get("base_delay", 0.5)),
            max_delay=float(data.get("max_delay", 30.0)),
            jitter=float(data.get("jitter", 0.25)),
        )
