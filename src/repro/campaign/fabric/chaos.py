"""Injectable fault points for the fabric: the chaos harness.

PR 4 proved single-host crash-safety with one deterministic trick — a
cache that raises after N journaled evaluations (``fail_after_puts``).
This module generalizes that trick into a small vocabulary of *fault
points* that the worker and coordinator consult at well-defined moments,
so a test can script precisely *where* in the protocol a worker dies,
stalls or lies about the time:

=================  ==========================================================
fault point        fires...
=================  ==========================================================
``evaluation_put`` after each fresh evaluation is journaled to the shared
                   persistent cache (mid-job: the generalization of
                   ``fail_after_puts``)
``job_started``    when a worker is about to execute a leased job
``heartbeat``      when a worker would renew its lease / registration
``worker_journal`` before a worker appends to its per-worker journal
=================  ==========================================================

Actions: ``kill`` raises :class:`ChaosKill` (a ``BaseException``, so it
sails through the worker's normal failure handling exactly like SIGKILL
sails through ``except Exception``); ``stall`` tells the caller to skip
the operation (a hung worker whose lease silently expires). Clock skew is
modelled separately by :class:`SkewedClock`, and filesystem-level faults
(torn journal tails, forged stale leases) by the helper functions below —
they need no cooperation from the victim.

Everything here is deterministic: fault triggers count hits, never sample
randomness, so every chaos test replays exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from ..cache import PersistentEvaluationCache
from .leases import Lease, LeaseDirectory

#: Fault points a :class:`ChaosPolicy` can target.
FAULT_POINTS: Tuple[str, ...] = (
    "evaluation_put",
    "job_started",
    "heartbeat",
    "worker_journal",
)

#: Actions a fault can take when triggered.
FAULT_ACTIONS: Tuple[str, ...] = ("kill", "stall")


class ChaosKill(BaseException):
    """Simulated abrupt worker death (SIGKILL stand-in for in-process tests).

    Deliberately a ``BaseException``: the worker's retry/failure handling
    catches ``Exception``, so a chaos kill — like a real SIGKILL — skips
    every cleanup path (no lease release, no failure journaling) and
    leaves the fabric to recover via lease expiry.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: *at this point, after N hits, do this*.

    Attributes:
        point: one of :data:`FAULT_POINTS`.
        action: one of :data:`FAULT_ACTIONS`.
        after: hits of ``point`` to let pass before triggering (0 = the
            first hit triggers).
        count: how many consecutive hits trigger once reached (``stall``
            faults usually span several heartbeats; ``kill`` fires once).
    """

    point: str
    action: str = "kill"
    after: int = 0
    count: int = 1

    def __post_init__(self) -> None:
        """Validate the point/action vocabulary and trigger window."""
        if self.point not in FAULT_POINTS:
            raise ValueError(f"Unknown fault point '{self.point}'. Valid: {FAULT_POINTS}")
        if self.action not in FAULT_ACTIONS:
            raise ValueError(f"Unknown fault action '{self.action}'. Valid: {FAULT_ACTIONS}")
        if self.after < 0 or self.count < 1:
            raise ValueError("after must be >= 0 and count >= 1")


@dataclass
class ChaosPolicy:
    """A deterministic script of faults consulted by one worker.

    Attributes:
        faults: the scripted faults (evaluated in order; the first fault
            whose trigger window covers the current hit count acts).
    """

    faults: Tuple[FaultSpec, ...] = ()
    _hits: Dict[str, int] = field(default_factory=dict, repr=False)

    def hit(self, point: str) -> Optional[str]:
        """Record one hit of ``point``; raise or return the triggered action.

        Returns ``None`` (no fault), ``"stall"`` (caller must skip the
        operation), or raises :class:`ChaosKill` for ``kill`` faults.
        """
        seen = self._hits.get(point, 0)
        self._hits[point] = seen + 1
        for fault in self.faults:
            if fault.point != point:
                continue
            if fault.after <= seen < fault.after + fault.count:
                if fault.action == "kill":
                    raise ChaosKill(f"chaos kill at {point} (hit {seen + 1})")
                return fault.action
        return None

    def hits(self, point: str) -> int:
        """How many times ``point`` has been consulted so far."""
        return self._hits.get(point, 0)


class ChaosEvaluationCache(PersistentEvaluationCache):
    """The shared persistent cache with the ``evaluation_put`` fault point.

    Exactly a :class:`~repro.campaign.cache.PersistentEvaluationCache`,
    plus two worker hooks fired after every *fresh* (newly journaled)
    evaluation: the worker's lease heartbeat, and the chaos policy's
    ``evaluation_put`` point — the mid-evaluation kill window.
    """

    def __init__(self, *args, chaos=None, on_fresh_put=None, **kwargs) -> None:
        """Wrap the persistent cache; see base class for the storage args.

        Args:
            chaos: optional :class:`ChaosPolicy` consulted per fresh put.
            on_fresh_put: optional zero-argument callable invoked per fresh
                put *before* the chaos point (the worker's heartbeat —
                it must run even on the put that chaos then kills, like a
                real worker that heartbeats and then dies).
        """
        self._chaos = chaos
        self._on_fresh_put = on_fresh_put
        super().__init__(*args, **kwargs)

    def put(self, genome, point) -> None:
        """Insert + journal, then fire the heartbeat hook and chaos point."""
        persisted_before = self.n_persisted
        super().put(genome, point)
        if self.n_persisted == persisted_before:
            return  # duplicate: nothing new journaled, no fault window
        if self._on_fresh_put is not None:
            self._on_fresh_put()
        if self._chaos is not None:
            self._chaos.hit("evaluation_put")


class SkewedClock:
    """A clock running a fixed offset from a base clock (clock-skew fault).

    A worker holding a negatively skewed clock writes leases that are
    already expired in everyone else's frame: the coordinator requeues its
    in-flight job immediately, modelling the classic distributed-systems
    failure where one host's NTP drifts.
    """

    def __init__(self, offset: float, base: Callable[[], float] = time.time) -> None:
        """``offset`` seconds are added to every reading of ``base``."""
        self.offset = float(offset)
        self.base = base

    def __call__(self) -> float:
        """The skewed time."""
        return self.base() + self.offset


class ManualClock:
    """A test clock advanced explicitly — time moves only when told to."""

    def __init__(self, start: float = 1_000_000.0) -> None:
        """Start the clock at ``start`` (an arbitrary epoch)."""
        self.now = float(start)

    def __call__(self) -> float:
        """The current manual time."""
        return self.now

    def advance(self, seconds: float) -> float:
        """Move time forward and return the new reading."""
        self.now += float(seconds)
        return self.now


# -- filesystem-level faults (no victim cooperation needed) ------------------------


def truncate_tail(path: Union[str, Path], n_bytes: int) -> None:
    """Chop the last ``n_bytes`` off a file — a torn final write.

    This is what a worker killed mid-append (or a lost NFS write-back)
    leaves behind: the journal's final record is an undecodable fragment.
    Readers must skip it without losing the records before it.
    """
    path = Path(path)
    size = path.stat().st_size
    with open(path, "r+b") as handle:
        handle.truncate(max(0, size - int(n_bytes)))


def corrupt_record(path: Union[str, Path], line_index: int) -> None:
    """Overwrite the middle of one record in place — a torn *mid-file* write.

    Unlike a truncated tail, the file keeps its length and later records
    stay intact; only the targeted line becomes garbage. Models a partial
    sector write on power loss. Readers must skip exactly that record.
    """
    path = Path(path)
    lines = path.read_bytes().split(b"\n")
    target = lines[line_index]
    if len(target) >= 4:
        middle = len(target) // 2
        lines[line_index] = target[: middle - 1] + b"\x00#" + target[middle + 1 :]
    else:  # pragma: no cover - degenerate tiny record
        lines[line_index] = b"\x00"
    path.write_bytes(b"\n".join(lines))


def forge_lease(
    lease_directory: LeaseDirectory,
    job_id: str,
    worker_id: str = "ghost",
    expires_in: float = -1.0,
) -> Lease:
    """Plant a lease file for a worker that does not exist.

    ``expires_in`` is relative to the directory's clock: negative plants a
    *stale* lease (a dead worker's leftover the coordinator must reap),
    positive plants a *live* duplicate claim (a zombie still holding the
    job). Returns the forged lease.
    """
    now = lease_directory.now_fn()
    lease = Lease(
        job_id=job_id,
        worker_id=worker_id,
        token=f"{worker_id}.forged",
        acquired=now - lease_directory.ttl,
        expires=now + float(expires_in),
    )
    lease_directory._write(lease)
    return lease
