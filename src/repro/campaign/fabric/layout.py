"""On-disk layout of a campaign's fabric state.

Everything the fabric coordinates through lives under one subdirectory of
the campaign::

    <campaign>/fabric/
      queue/<job_id>.json        # published, claimable work (atomic writes)
      leases/<job_id>.json       # live claims (see fabric.leases)
      workers/<worker_id>.json   # worker registration + heartbeat
      workers/<worker_id>.jsonl  # per-worker append-only event journal
      failed/<job_id>.json       # deterministic-failure records (fail fast)
      quarantine/<job_id>.json   # poison jobs that exhausted the requeue cap
      cursors.json               # coordinator's per-worker merge positions
      complete.json              # terminal marker: workers drain and exit

Job *artifacts* stay where the single-host runner puts them
(``jobs/<job_id>/front.json`` + ``result.json``) and the shared evaluation
cache stays in ``cache/`` — the fabric adds coordination state only, so a
fabric campaign directory is a superset of a single-host one and every
existing tool (``status``, ``report``, ``resume``) keeps working on it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

FABRIC_DIR = "fabric"
QUEUE_DIR = "queue"
LEASES_DIR = "leases"
WORKERS_DIR = "workers"
FAILED_DIR = "failed"
QUARANTINE_DIR = "quarantine"
CURSORS_NAME = "cursors.json"
COMPLETE_NAME = "complete.json"


def read_json_tolerant(path: Union[str, Path]) -> Optional[Dict[str, object]]:
    """One JSON object from ``path``, or ``None`` (missing/torn/not a dict).

    Fabric state files are written atomically, so a torn file signals
    external corruption, not a crash window — returning ``None`` makes
    every reader treat it as absent rather than dying on it.
    """
    try:
        data = json.loads(Path(path).read_text())
    except (FileNotFoundError, json.JSONDecodeError, OSError):
        return None
    return data if isinstance(data, dict) else None


class FabricLayout:
    """Path arithmetic for one campaign's fabric directory."""

    def __init__(self, campaign_directory: Union[str, Path]) -> None:
        """Anchor the layout at ``<campaign_directory>/fabric``."""
        self.campaign_directory = Path(campaign_directory)
        self.root = self.campaign_directory / FABRIC_DIR

    # -- directories -------------------------------------------------------------

    @property
    def queue_dir(self) -> Path:
        """Published, claimable jobs."""
        return self.root / QUEUE_DIR

    @property
    def leases_dir(self) -> Path:
        """Live lease files (managed by :class:`~.leases.LeaseDirectory`)."""
        return self.root / LEASES_DIR

    @property
    def workers_dir(self) -> Path:
        """Worker registrations and per-worker journals."""
        return self.root / WORKERS_DIR

    @property
    def failed_dir(self) -> Path:
        """Deterministic-failure records."""
        return self.root / FAILED_DIR

    @property
    def quarantine_dir(self) -> Path:
        """Poison jobs that exhausted the requeue cap."""
        return self.root / QUARANTINE_DIR

    # -- files -------------------------------------------------------------------

    @property
    def cursors_path(self) -> Path:
        """The coordinator's per-worker journal merge positions."""
        return self.root / CURSORS_NAME

    @property
    def complete_path(self) -> Path:
        """Terminal marker telling workers to drain and exit."""
        return self.root / COMPLETE_NAME

    def queue_entry(self, job_id: str) -> Path:
        """Queue file of one job."""
        return self.queue_dir / f"{job_id}.json"

    def failed_entry(self, job_id: str) -> Path:
        """Failure record of one job."""
        return self.failed_dir / f"{job_id}.json"

    def quarantine_entry(self, job_id: str) -> Path:
        """Quarantine record of one job."""
        return self.quarantine_dir / f"{job_id}.json"

    def worker_registration(self, worker_id: str) -> Path:
        """Registration/heartbeat file of one worker."""
        return self.workers_dir / f"{worker_id}.json"

    def worker_journal(self, worker_id: str) -> Path:
        """Append-only event journal of one worker."""
        return self.workers_dir / f"{worker_id}.jsonl"

    # -- scans -------------------------------------------------------------------

    def queue_entries(self) -> List[Dict[str, object]]:
        """Every decodable queue entry, sorted by job id (deterministic claim order)."""
        if not self.queue_dir.is_dir():
            return []
        entries = []
        for path in sorted(self.queue_dir.glob("*.json")):
            entry = read_json_tolerant(path)
            if entry is not None:
                entries.append(entry)
        return entries

    def failed_job_ids(self) -> List[str]:
        """Jobs with a deterministic-failure record, sorted."""
        if not self.failed_dir.is_dir():
            return []
        return sorted(path.stem for path in self.failed_dir.glob("*.json"))

    def quarantined_job_ids(self) -> List[str]:
        """Jobs in quarantine, sorted."""
        if not self.quarantine_dir.is_dir():
            return []
        return sorted(path.stem for path in self.quarantine_dir.glob("*.json"))

    def worker_ids(self) -> List[str]:
        """Every registered worker id, sorted."""
        if not self.workers_dir.is_dir():
            return []
        return sorted(path.stem for path in self.workers_dir.glob("*.json"))


def read_worker_events(path: Union[str, Path]) -> List[Dict[str, object]]:
    """The decodable *prefix* of a per-worker journal.

    Stops at the first undecodable line instead of skipping it: a partial
    trailing line may be an append still in flight, and stopping keeps the
    event count prefix-stable so the coordinator's merge cursor (an index
    into this list) never drifts when the line completes on the next read.
    A torn tail from a dead worker is simply never merged — job completion
    is detected from artifact markers, not journal events, so nothing is
    lost but log detail.
    """
    path = Path(path)
    if not path.exists():
        return []
    events: List[Dict[str, object]] = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            break
        if not isinstance(record, dict) or "event" not in record:
            break
        events.append(record)
    return events
