"""Persistent on-disk backend for the genome evaluation cache.

:class:`PersistentEvaluationCache` extends the in-memory
:class:`~repro.search.evaluator.EvaluationCache` with an append-only JSONL
shard per *evaluation context*: every freshly evaluated design point is
journaled to disk the moment it enters the cache, and a new cache built for
the same context preloads all of them. Two properties follow:

* **Mid-job resume.** A search killed halfway re-runs from its spec, but
  every genome already evaluated before the kill is served from disk — the
  search fast-forwards through the dead run's work and, because cached
  points carry exactly the accuracy/area the evaluation produced (JSON
  round-trips floats exactly), continues bit-identically.
* **Cross-job sharing.** Jobs with the same evaluation context (same
  dataset, pipeline configuration, evaluation settings and base seed —
  e.g. a random-search and a grid-search job over one dataset) share a
  shard, so overlapping genomes are evaluated once per campaign, not once
  per job. Contexts are keyed by :func:`evaluation_context_key`, which
  hashes everything a design point depends on, so a shard can never leak
  stale results into a changed configuration.

The shard format is one JSON object per line (``{"genome": ..., "point":
..., "v": 1}``). Loading tolerates a truncated final line — exactly what a
``SIGKILL`` mid-append leaves behind — by skipping undecodable lines.
:func:`load_journal_records` exposes the same tolerant reader as a public
API (the surrogate trainer consumes it); records written before the
schema-version field existed load as version 0.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import IO, List, Optional, Union

from ..core.config import PipelineConfig
from ..core.results import DesignPoint
from ..search.evaluator import EvaluationCache
from ..search.genome import Genome
from ..search.settings import EvaluationSettings

#: Version stamped on every journal record written by this build. Bump when
#: the record layout changes incompatibly; the reader accepts every version
#: up to and including this one (and unversioned legacy records as 0).
CACHE_SCHEMA_VERSION = 1


class SimulatedCrash(RuntimeError):
    """Raised by the ``fail_after_puts`` test hook to model process death.

    Tests use it to kill a search deterministically after N fresh
    evaluations have been journaled, then assert that resuming produces
    bit-identical results. Never raised in production configurations.
    """


def evaluation_context_key(
    config: PipelineConfig,
    settings: Optional[EvaluationSettings],
    seed: Optional[int],
) -> str:
    """Hash of everything a cached design point depends on.

    A design point is a pure function of ``(genome, prepared pipeline,
    evaluation settings, derived seed)``; the prepared pipeline is itself a
    pure function of the :class:`~repro.core.config.PipelineConfig`, and the
    derived seed of ``(base seed, genome)``. Hashing ``(config, settings,
    base seed)`` therefore identifies exactly the set of evaluations that
    may be shared. Returns a 16-hex-digit digest used as the shard filename.

    Surrogate-search knobs are excluded on purpose: they steer *which*
    genomes get evaluated, never what an evaluation returns, so
    surrogate-assisted and plain searches share one context — the surrogate
    trainer feeds on exactly the records the plain search produced (and
    context keys stay stable across builds that added the knobs).
    """
    settings = settings if settings is not None else EvaluationSettings()
    pipeline = asdict(config)
    for search_only_knob in (
        "surrogate",
        "surrogate_candidates",
        "surrogate_prefilter",
        "halving_budgets",
    ):
        pipeline.pop(search_only_knob, None)
    payload = {
        "pipeline": pipeline,
        "settings": asdict(settings),
        "seed": None if seed is None else int(seed),
    }
    canonical = json.dumps(payload, sort_keys=True, default=list)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class JournalRecord:
    """One decoded evaluation-journal record.

    Attributes:
        genome: the evaluated genome.
        point: the design point the evaluation produced.
        context_key: digest of the evaluation context the record belongs to
            (the shard filename stem).
        schema_version: the ``"v"`` field of the on-disk record; records
            written before the field existed report 0.
    """

    genome: Genome
    point: DesignPoint
    context_key: str
    schema_version: int


def _journal_generation_paths(directory: Path, context_key: str) -> List[Path]:
    """Every shard generation of one context in write order."""
    paths = []
    base = directory / f"{context_key}.jsonl"
    if base.exists():
        paths.append(base)
    paths.extend(sorted(directory.glob(f"{context_key}.g[0-9]*.jsonl")))
    return paths


def _journal_context_keys(directory: Path) -> List[str]:
    """Every evaluation-context key with at least one shard in ``directory``."""
    keys = set()
    for path in directory.glob("*.jsonl"):
        stem = path.name[: -len(".jsonl")]
        head, dot, generation = stem.rpartition(".")
        if dot and generation.startswith("g") and generation[1:].isdigit():
            stem = head
        keys.add(stem)
    return sorted(keys)


def _decode_journal_line(line: str, context_key: str) -> Optional[JournalRecord]:
    """Decode one journal line, or ``None`` if it is torn or unreadable."""
    line = line.strip()
    if not line:
        return None
    try:
        entry = json.loads(line)
        version = int(entry.get("v", 0))
        if version > CACHE_SCHEMA_VERSION:
            return None  # written by a newer build; layout unknown
        genome = Genome(**entry["genome"])
        point = DesignPoint(**entry["point"])
    except (json.JSONDecodeError, AttributeError, KeyError, TypeError, ValueError):
        # A killed process can leave a truncated trailing line (or a torn
        # sector a garbage middle one); undecodable records are skipped.
        return None
    return JournalRecord(
        genome=genome, point=point, context_key=context_key, schema_version=version
    )


def load_journal_records(
    cache_dir: Union[str, Path],
    context_key: Optional[str] = None,
) -> List[JournalRecord]:
    """Read every decodable evaluation record journaled under ``cache_dir``.

    The public counterpart of the loader inside
    :class:`PersistentEvaluationCache` — the surrogate trainer
    (:func:`repro.surrogate.fit_from_cache`) uses it to turn a campaign's
    journal shards into a training set without constructing caches.

    Args:
        cache_dir: shard directory (``<campaign>/cache/``). A missing
            directory yields an empty list, not an error.
        context_key: restrict to one evaluation context (the digest from
            :func:`evaluation_context_key`); ``None`` reads every context
            found in the directory.

    Returns:
        Decoded records in journal order (base shard first, then rotated
        ``.gNNNN`` generations; contexts in sorted key order when reading
        all of them), deduplicated by genome key *within* each context —
        the first decodable occurrence wins, matching cache-load semantics.
        Torn tails, corrupt middles, and records from newer schema versions
        are skipped silently; unversioned legacy records load as version 0.
    """
    directory = Path(cache_dir)
    if not directory.is_dir():
        return []
    keys = [context_key] if context_key is not None else _journal_context_keys(directory)
    records: List[JournalRecord] = []
    for key in keys:
        seen: set = set()
        for path in _journal_generation_paths(directory, key):
            for line in path.read_text().splitlines():
                record = _decode_journal_line(line, key)
                if record is None or record.genome.key() in seen:
                    continue
                seen.add(record.genome.key())
                records.append(record)
    return records


class PersistentEvaluationCache(EvaluationCache):
    """An :class:`~repro.search.evaluator.EvaluationCache` journaled to disk.

    Args:
        directory: shard directory (created on demand); campaigns use
            ``<campaign>/cache/``.
        context_key: evaluation-context digest from
            :func:`evaluation_context_key`; names the shard file.
        max_entries: optional LRU bound on the *in-memory* view. Disk
            records are never evicted — an entry dropped from memory is
            reloaded by the next cache built for this context (and is not
            re-appended if re-evaluated meanwhile).
        fail_after_puts: test hook — raise :class:`SimulatedCrash` after
            this many fresh points have been journaled by this instance.
        fsync: fsync the shard after every journaled point. Durable against
            power loss (not just process death) at a per-put latency cost;
            off by default because evaluations dominate runtime anyway.
        rotate_max_bytes: optional shard-rotation threshold. When the
            active generation file reaches this size it is sealed and a new
            generation (``<context>.gNNNN.jsonl``) opened; loading reads
            every generation in order. Bounds the blast radius of tail
            corruption and keeps per-file sizes bounded on long campaigns.
        fsync_on_rotation: fsync a sealed generation before opening the
            next one (default on — rotation is rare, durability is cheap
            there), independent of the per-put ``fsync`` flag.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        context_key: str,
        max_entries: Optional[int] = None,
        fail_after_puts: Optional[int] = None,
        fsync: bool = False,
        rotate_max_bytes: Optional[int] = None,
        fsync_on_rotation: bool = True,
    ) -> None:
        super().__init__(max_entries=max_entries)
        if rotate_max_bytes is not None and rotate_max_bytes <= 0:
            raise ValueError(f"rotate_max_bytes must be > 0, got {rotate_max_bytes}")
        self.directory = Path(directory)
        self.context_key = str(context_key)
        self.path = self.directory / f"{self.context_key}.jsonl"
        self.n_loaded = 0
        self.n_persisted = 0
        self.n_rotations = 0
        self.fsync = bool(fsync)
        self.rotate_max_bytes = rotate_max_bytes
        self.fsync_on_rotation = bool(fsync_on_rotation)
        self._persisted_keys: set = set()
        self._handle: Optional[IO[str]] = None
        self._fail_after_puts = fail_after_puts
        self._load()

    # -- persistence -------------------------------------------------------------

    def _generation_paths(self) -> list:
        """Every shard generation in write order: base file, then rotations."""
        paths = []
        if self.path.exists():
            paths.append(self.path)
        paths.extend(sorted(self.directory.glob(f"{self.context_key}.g[0-9]*.jsonl")))
        return paths

    def _active_path(self) -> Path:
        """The generation currently being appended to (the newest one)."""
        generations = self._generation_paths()
        return generations[-1] if generations else self.path

    def _next_generation_path(self) -> Path:
        """The path the next rotation seals into."""
        return self.directory / f"{self.context_key}.g{self.n_rotations + 1:04d}.jsonl"

    def _load(self) -> None:
        """Preload every shard generation, skipping corrupt records.

        Corruption tolerance is per *record*, not just the trailing line: a
        torn mid-file write (partial sector on power loss) corrupts exactly
        one line, and every decodable record after it still loads.
        """
        generations = self._generation_paths()
        self.n_rotations = max(0, len(generations) - 1)
        for path in generations:
            for line in path.read_text().splitlines():
                record = _decode_journal_line(line, self.context_key)
                if record is None:
                    continue
                key = record.genome.key()
                if key not in self._persisted_keys:
                    self.n_loaded += 1
                self._persisted_keys.add(key)
                EvaluationCache.put(self, record.genome, record.point)

    def _ensure_handle(self) -> IO[str]:
        if self._handle is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            # O_APPEND single-line writes: safe under concurrent shard use by
            # cooperating runner processes (duplicate records are tolerated).
            self._handle = open(self._active_path(), "a", encoding="utf-8")
        return self._handle

    def _maybe_rotate(self) -> None:
        """Seal the active generation and open the next when over the bound."""
        if self.rotate_max_bytes is None or self._handle is None:
            return
        if self._handle.tell() < self.rotate_max_bytes:
            return
        if self.fsync_on_rotation:
            os.fsync(self._handle.fileno())
        self._handle.close()
        next_path = self._next_generation_path()
        self.n_rotations += 1
        self._handle = open(next_path, "a", encoding="utf-8")

    def put(self, genome: Genome, point: DesignPoint) -> None:
        """Insert a point and journal it to the shard if it is new on disk."""
        super().put(genome, point)
        key = genome.key()
        if key in self._persisted_keys:
            return
        record = {
            "genome": genome.as_dict(),
            "point": point.as_dict(),
            "v": CACHE_SCHEMA_VERSION,
        }
        handle = self._ensure_handle()
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())
        self._maybe_rotate()
        self._persisted_keys.add(key)
        self.n_persisted += 1
        if self._fail_after_puts is not None and self.n_persisted >= self._fail_after_puts:
            raise SimulatedCrash(
                f"fail_after_puts={self._fail_after_puts} reached for "
                f"context {self.context_key}"
            )

    def close(self) -> None:
        """Close the shard file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "PersistentEvaluationCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
