"""Aggregate reporting over a campaign directory.

Reads the deterministic ``front.json`` artifacts of every completed job and
combines them into per-dataset views: the union Pareto front across all
search algorithms and seeds that ran on a dataset, per-job headline gains,
and a campaign-wide summary table. ``repro campaign report`` prints the
summary and writes machine-readable artifacts under ``<campaign>/report/``:

* ``summary.json`` — the full report document,
* ``summary.md`` — markdown tables (per dataset and per job),
* ``front_<dataset>.json`` / ``front_<dataset>.csv`` — each dataset's
  combined Pareto front,
* ``front_<dataset>.npz`` — the same front in the persisted columnar
  format (:mod:`repro.campaign.columnar`), sha-tied to the JSON, which
  the serving layer cold-loads via ``mmap`` instead of re-deserializing.

Points are compared on raw (accuracy, area); normalized gains are reported
against the dataset's baseline when every contributing job shares one
(jobs with divergent pipeline configurations fall back to per-job gains).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from ..analysis.tables import render_csv, render_markdown_table, render_table
from ..core.pareto import best_area_gain_at_loss, pareto_front
from ..core.results import DesignPoint
from .columnar import write_front_npz
from .journal import CampaignJournal, read_json, write_json_atomic
from .spec import CampaignSpec

#: Keys a front document must carry to contribute to a report.
_FRONT_DOCUMENT_KEYS = (
    "job_id",
    "dataset",
    "algorithm",
    "search_name",
    "seed",
    "front",
    "baseline",
)


def _point_from_dict(data: Dict[str, object]) -> DesignPoint:
    """Rebuild a design point from its ``as_dict`` form (report stays None)."""
    return DesignPoint(**data)  # type: ignore[arg-type]


def collect_fronts(directory: Union[str, Path]) -> List[Dict[str, object]]:
    """Load every completed job's front document.

    Spec-grid jobs come first, in grid order. Completed jobs *outside* the
    grid — serving-miss enqueues and other elastically published work —
    follow in sorted job-id order, so a drained miss becomes part of the
    next report instead of sitting invisible in ``jobs/``. Extra-grid
    documents are validated structurally (a stray directory under
    ``jobs/`` must not break reporting) and skipped when malformed.
    """
    journal = CampaignJournal(directory)
    spec = CampaignSpec.from_dict(read_json(journal.spec_path))  # type: ignore[arg-type]
    completed = journal.completed_job_ids()
    fronts = []
    grid_ids = set()
    for job in spec.expand():
        grid_ids.add(job.job_id)
        if job.job_id in completed and journal.front_path(job.job_id).exists():
            fronts.append(journal.load_front(job.job_id))
    for job_id in sorted(completed - grid_ids):
        front_path = journal.front_path(job_id)
        if not front_path.exists():
            continue
        try:
            document = read_json(front_path)
        except (OSError, ValueError):
            continue
        if not isinstance(document, dict):
            continue
        if any(key not in document for key in _FRONT_DOCUMENT_KEYS):
            continue
        if not isinstance(document["front"], list):
            continue
        fronts.append(document)
    return fronts


def build_report(directory: Union[str, Path]) -> Dict[str, object]:
    """Build the campaign-wide report document from completed job fronts.

    For each dataset: the union Pareto front over every completed job's
    front (identical accuracy/area duplicates collapse), the best area gain
    within the loss budget, and one summary row per contributing job.
    """
    journal = CampaignJournal(directory)
    spec = CampaignSpec.from_dict(read_json(journal.spec_path))  # type: ignore[arg-type]
    fronts = collect_fronts(directory)
    datasets: Dict[str, Dict[str, object]] = {}
    for document in fronts:
        dataset = str(document["dataset"])
        entry = datasets.setdefault(
            dataset, {"jobs": [], "points": [], "baselines": []}
        )
        entry["jobs"].append(  # type: ignore[union-attr]
            {
                "job_id": document["job_id"],
                "algorithm": document["algorithm"],
                "search_name": document["search_name"],
                "seed": document["seed"],
                "front_size": len(document["front"]),  # type: ignore[arg-type]
                "best_gain_within_loss_budget": document.get(
                    "best_gain_within_loss_budget"
                ),
            }
        )
        entry["points"].extend(  # type: ignore[union-attr]
            _point_from_dict(point) for point in document["front"]  # type: ignore[union-attr]
        )
        entry["baselines"].append(document["baseline"])  # type: ignore[union-attr]

    report_datasets: Dict[str, Dict[str, object]] = {}
    for dataset, entry in datasets.items():
        points: List[DesignPoint] = entry["points"]  # type: ignore[assignment]
        # When every contributing job measured robustness, the union front
        # keeps the fault-tolerance trade-off designs those jobs were run to
        # find (third maximised axis); mixed campaigns fall back to the
        # classic accuracy/area comparison, which every point supports.
        robust = bool(points) and all(
            point.robust_accuracy is not None for point in points
        )
        combined = pareto_front(points, robust=robust)
        baselines: List[Dict[str, object]] = entry["baselines"]  # type: ignore[assignment]
        shared_baseline = baselines[0] if all(b == baselines[0] for b in baselines) else None
        combined_gain: Optional[float] = None
        if shared_baseline is not None and combined:
            best = best_area_gain_at_loss(combined, _point_from_dict(shared_baseline))
            combined_gain = None if best is None else float(best.area_gain)
        report_datasets[dataset] = {
            "jobs": entry["jobs"],
            "combined_front": [point.as_dict() for point in combined],
            "combined_front_size": len(combined),
            "baseline": shared_baseline,
            "combined_best_gain": combined_gain,
        }
    return {
        "name": spec.name,
        "fingerprint": spec.fingerprint(),
        "n_jobs_total": len(spec.expand()),
        "n_jobs_completed": len(fronts),
        "datasets": report_datasets,
    }


def _dataset_rows(report: Dict[str, object]) -> List[List[object]]:
    rows = []
    for dataset, entry in report["datasets"].items():  # type: ignore[union-attr]
        gain = entry["combined_best_gain"]
        rows.append(
            [
                dataset,
                len(entry["jobs"]),
                entry["combined_front_size"],
                "n/a" if gain is None else f"{gain:.2f}x",
            ]
        )
    return rows


def _job_rows(report: Dict[str, object]) -> List[List[object]]:
    rows = []
    for dataset, entry in report["datasets"].items():  # type: ignore[union-attr]
        for job in entry["jobs"]:
            gain = job["best_gain_within_loss_budget"]
            rows.append(
                [
                    job["job_id"],
                    dataset,
                    job["algorithm"],
                    job["seed"],
                    job["front_size"],
                    "n/a" if gain is None else f"{gain:.2f}x",
                ]
            )
    return rows


def format_report(report: Dict[str, object]) -> str:
    """Console rendering of a report document (per-dataset summary table)."""
    lines = [
        f"campaign  : {report['name']}",
        f"jobs      : {report['n_jobs_completed']}/{report['n_jobs_total']} completed",
        "",
        render_table(
            ["dataset", "jobs", "front size", "best gain@budget"],
            _dataset_rows(report),
        ),
        "",
        render_table(
            ["job", "dataset", "algorithm", "seed", "front", "gain@budget"],
            _job_rows(report),
        ),
    ]
    return "\n".join(lines)


def write_report(
    directory: Union[str, Path], report: Optional[Dict[str, object]] = None
) -> Dict[str, Path]:
    """Write the report artifacts under ``<campaign>/report/``.

    Builds the report document unless a prebuilt one is passed (callers that
    already ran :func:`build_report` — e.g. the CLI, which prints it first —
    avoid reading every job artifact twice). Returns
    ``{artifact name: path}`` for everything written.
    """
    journal = CampaignJournal(directory)
    if report is None:
        report = build_report(directory)
    report_dir = journal.report_dir()
    report_dir.mkdir(parents=True, exist_ok=True)
    paths: Dict[str, Path] = {}

    summary_path = report_dir / "summary.json"
    write_json_atomic(summary_path, report)
    paths["summary.json"] = summary_path

    markdown = [
        f"# Campaign report: {report['name']}",
        "",
        f"{report['n_jobs_completed']}/{report['n_jobs_total']} jobs completed.",
        "",
        "## Per-dataset combined fronts",
        "",
        render_markdown_table(
            ["dataset", "jobs", "front size", "best gain@budget"],
            _dataset_rows(report),
        ),
        "",
        "## Per-job results",
        "",
        render_markdown_table(
            ["job", "dataset", "algorithm", "seed", "front", "gain@budget"],
            _job_rows(report),
        ),
        "",
    ]
    md_path = report_dir / "summary.md"
    md_path.write_text("\n".join(markdown))
    paths["summary.md"] = md_path

    for dataset, entry in report["datasets"].items():  # type: ignore[union-attr]
        front_json = report_dir / f"front_{dataset}.json"
        write_json_atomic(
            front_json,
            {
                "dataset": dataset,
                "baseline": entry["baseline"],
                "front": entry["combined_front"],
                "combined_best_gain": entry["combined_best_gain"],
            },
        )
        paths[front_json.name] = front_json
        # The columnar sibling carries the same rows (sha-tied to the JSON
        # just written) so the serving layer can cold-load without decoding.
        front_npz = write_front_npz(front_json, fingerprint=str(report["fingerprint"]))
        paths[front_npz.name] = front_npz
        front_csv = report_dir / f"front_{dataset}.csv"
        # Robustness-aware campaigns carry two extra columns; fronts without
        # robustness data keep the historical byte-identical CSV layout.
        columns = ["technique", "accuracy", "area", "power", "delay"]
        if any("robust_accuracy" in p for p in entry["combined_front"]):
            columns += ["robust_accuracy", "accuracy_std"]
        front_csv.write_text(
            render_csv(
                columns,
                [
                    [p.get(column, "") for column in columns]
                    for p in entry["combined_front"]
                ],
            )
        )
        paths[front_csv.name] = front_csv
    return paths
