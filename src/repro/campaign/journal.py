"""Campaign state on disk: JSONL manifest, atomic job results, status.

A campaign directory looks like::

    <campaign>/
      spec.json            # the canonical spec this directory was built from
      manifest.jsonl       # append-only event log (started/completed/failed)
      cache/<context>.jsonl  # persistent per-genome evaluation records
      jobs/<job_id>/
        front.json         # deterministic artifact: baseline + Pareto front
        result.json        # stats (wall-clock, evaluation counts, history)
      report/              # written by `repro campaign report`

``front.json`` holds only deterministic content (the golden resume test
byte-compares it); volatile run statistics live in ``result.json``, which is
written *last* via an atomic rename and therefore doubles as the job's
completion marker — a kill at any instant leaves either a complete job or
one that will be re-run (and fast-forwarded by the evaluation cache) on
resume.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Set, Union

MANIFEST_NAME = "manifest.jsonl"
SPEC_NAME = "spec.json"
JOBS_DIR = "jobs"
CACHE_DIR = "cache"
REPORT_DIR = "report"
FRONT_NAME = "front.json"
RESULT_NAME = "result.json"


def write_json_atomic(path: Union[str, Path], document: object) -> Path:
    """Write JSON via a temp file + ``os.replace`` so readers never see halves.

    The rename is atomic on POSIX filesystems: a concurrent reader (or a
    kill between write and rename) observes either the old file or the new
    one, never a truncated mix. Returns the final path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.with_name(path.name + ".tmp")
    tmp_path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    os.replace(tmp_path, path)
    return path


def read_json(path: Union[str, Path]) -> object:
    """Load one JSON document (no tolerance — use for atomic-written files)."""
    return json.loads(Path(path).read_text())


class CampaignJournal:
    """The durable record of one campaign directory.

    Append-only events go to ``manifest.jsonl`` (one JSON object per line,
    flushed per event so a kill loses at most the in-flight line); job
    artifacts go to ``jobs/<job_id>/``. Everything here is readable while a
    campaign runs — ``repro campaign status`` is just a read of this state.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.manifest_path = self.directory / MANIFEST_NAME

    # -- manifest ----------------------------------------------------------------

    def append(self, event: str, **payload: object) -> None:
        """Append one event line to the manifest (creates the directory)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        record = {"event": event, "unix_time": round(time.time(), 3), **payload}
        with open(self.manifest_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()

    def events(self) -> List[Dict[str, object]]:
        """Every decodable manifest event, in append order.

        Tolerates a truncated trailing line (the signature of a kill during
        an append) by skipping undecodable records.
        """
        if not self.manifest_path.exists():
            return []
        events: List[Dict[str, object]] = []
        for line in self.manifest_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                events.append(record)
        return events

    # -- job artifacts -----------------------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        """Directory holding one job's artifacts."""
        return self.directory / JOBS_DIR / job_id

    def front_path(self, job_id: str) -> Path:
        """Path of a job's deterministic front artifact."""
        return self.job_dir(job_id) / FRONT_NAME

    def result_path(self, job_id: str) -> Path:
        """Path of a job's stats artifact (also the completion marker)."""
        return self.job_dir(job_id) / RESULT_NAME

    def write_job_artifacts(
        self,
        job_id: str,
        front_document: Dict[str, object],
        result_document: Dict[str, object],
    ) -> None:
        """Atomically write a job's front then its result (completion marker).

        Order matters: ``result.json`` lands last, so its existence implies
        the front artifact is complete too.
        """
        write_json_atomic(self.front_path(job_id), front_document)
        write_json_atomic(self.result_path(job_id), result_document)

    def load_front(self, job_id: str) -> Dict[str, object]:
        """A completed job's front document."""
        return read_json(self.front_path(job_id))  # type: ignore[return-value]

    def load_result(self, job_id: str) -> Dict[str, object]:
        """A completed job's result document."""
        return read_json(self.result_path(job_id))  # type: ignore[return-value]

    def completed_job_ids(self) -> Set[str]:
        """Jobs whose completion marker (``result.json``) exists."""
        jobs_root = self.directory / JOBS_DIR
        if not jobs_root.is_dir():
            return set()
        return {
            entry.name
            for entry in jobs_root.iterdir()
            if (entry / RESULT_NAME).is_file()
        }

    def failed_job_ids(self) -> Set[str]:
        """Jobs whose latest manifest event is a failure and have no result."""
        failed: Set[str] = set()
        for record in self.events():
            job_id = record.get("job_id")
            if not isinstance(job_id, str):
                continue
            if record["event"] == "job_failed":
                failed.add(job_id)
            elif record["event"] == "job_completed":
                failed.discard(job_id)
        return failed - self.completed_job_ids()

    # -- spec persistence --------------------------------------------------------

    @property
    def spec_path(self) -> Path:
        """Path of the campaign's canonical spec copy."""
        return self.directory / SPEC_NAME

    def cache_dir(self) -> Path:
        """Directory of the persistent evaluation-cache shards."""
        return self.directory / CACHE_DIR

    def report_dir(self) -> Path:
        """Directory aggregate reports are written to."""
        return self.directory / REPORT_DIR


def persist_spec(journal: CampaignJournal, spec) -> None:
    """Write ``spec.json`` on first use; verify the fingerprint afterwards.

    Shared by the single-host runner and the fabric coordinator so both
    paths enforce the same rule: a campaign directory is bound to exactly
    one spec, and resuming with a different one is an error, not silent
    corruption.
    """
    from .spec import CampaignSpec  # deferred: spec imports nothing from here

    if journal.spec_path.exists():
        existing = CampaignSpec.from_dict(read_json(journal.spec_path))  # type: ignore[arg-type]
        if existing.fingerprint() != spec.fingerprint():
            raise ValueError(
                f"Campaign directory {journal.directory} was created from a "
                "different spec (fingerprint mismatch). Use a fresh "
                "directory, or resume with the original spec."
            )
        return
    write_json_atomic(journal.spec_path, spec.as_dict())


def mark_campaign_completed(journal: CampaignJournal, spec) -> bool:
    """Append the once-only ``campaign_completed`` event if the grid is done.

    The single predicate shared by every execution path (serial runner,
    sharded runners, fabric coordinator): the event is appended exactly
    when *every* job in the spec's grid has its completion marker and the
    manifest does not already record completion. Returns whether the event
    was appended.
    """
    completed = journal.completed_job_ids()
    jobs = spec.expand()
    if not all(job.job_id in completed for job in jobs):
        return False
    if any(event.get("event") == "campaign_completed" for event in journal.events()):
        return False
    journal.append("campaign_completed", n_jobs=len(jobs))
    return True


def campaign_status(directory: Union[str, Path]) -> Dict[str, object]:
    """Summarize a campaign directory for ``repro campaign status``.

    Returns total/completed/failed/quarantined/pending counts, a top-level
    campaign ``state``, and per-job rows; raises ``FileNotFoundError`` when
    the directory holds no campaign spec. The same predicate serves every
    execution path — serial runs, sharded runs and the multi-worker fabric
    all report through artifact markers (plus the fabric's failure and
    quarantine records when present), so ``repro campaign status`` agrees
    with itself no matter which mode produced the directory.
    """
    from .fabric.layout import FabricLayout  # deferred: fabric imports this module
    from .spec import CampaignSpec  # deferred: spec imports nothing from here

    journal = CampaignJournal(directory)
    if not journal.spec_path.exists():
        raise FileNotFoundError(
            f"No campaign spec at {journal.spec_path} — is this a campaign directory?"
        )
    spec = CampaignSpec.from_dict(read_json(journal.spec_path))  # type: ignore[arg-type]
    jobs = spec.expand()
    completed = journal.completed_job_ids()
    layout = FabricLayout(directory)
    quarantined = set(layout.quarantined_job_ids())
    failed = (journal.failed_job_ids() | set(layout.failed_job_ids())) - completed
    rows = []
    for job in jobs:
        if job.job_id in completed:
            state = "completed"
        elif job.job_id in quarantined:
            state = "quarantined"
        elif job.job_id in failed:
            state = "failed"
        else:
            state = "pending"
        rows.append(
            {
                "job_id": job.job_id,
                "dataset": job.dataset,
                "algorithm": job.algorithm,
                "seed": job.seed,
                "state": state,
            }
        )
    grid_ids = {job.job_id for job in jobs}
    n_completed = len(completed & grid_ids)
    n_failed = sum(1 for row in rows if row["state"] == "failed")
    n_quarantined = sum(1 for row in rows if row["state"] == "quarantined")
    n_pending = sum(1 for row in rows if row["state"] == "pending")
    if n_completed == len(jobs):
        campaign_state = "completed"
    elif n_pending == 0:
        campaign_state = "failed"
    else:
        campaign_state = "in-progress"
    return {
        "name": spec.name,
        "fingerprint": spec.fingerprint(),
        "state": campaign_state,
        "total": len(jobs),
        "completed": n_completed,
        "failed": n_failed,
        "quarantined": n_quarantined,
        "pending": n_pending,
        "jobs": rows,
    }


def format_status(status: Dict[str, object]) -> str:
    """Human-readable status block printed by the CLI."""
    lines = [
        f"campaign   : {status['name']}",
        f"state      : {status.get('state', 'unknown')}",
        f"jobs       : {status['completed']}/{status['total']} completed, "
        f"{status['failed']} failed, {status['pending']} pending",
    ]
    if status.get("quarantined"):
        lines.append(f"quarantined: {status['quarantined']}")
    for row in status["jobs"]:  # type: ignore[union-attr]
        lines.append(f"  [{row['state']:>9}] {row['job_id']}")
    return "\n".join(lines)


def latest_event_time(directory: Union[str, Path]) -> Optional[float]:
    """Unix time of the newest manifest event, or ``None`` without a manifest."""
    events = CampaignJournal(directory).events()
    if not events:
        return None
    times = [e.get("unix_time") for e in events if isinstance(e.get("unix_time"), float)]
    return max(times) if times else None
