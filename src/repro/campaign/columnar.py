"""Persisted columnar front format: ``front_<dataset>.npz``.

The report writer's ``front_<dataset>.json`` is the canonical artifact —
human-readable, golden-pinned, and what the HTTP layer serves byte-for-
byte. But a cold query against it pays JSON decode, per-row
:class:`~repro.core.results.DesignPoint` construction, a Pareto merge and
a column build before the first constraint mask can run. This module
persists the end state of that work next to the JSON:

* one ``float64`` array per objective column (:data:`FRONT_COLUMNS`,
  NaN where a point lacks the optional robustness fields),
* ``row_index`` (``int64``) pinning row order to the JSON document's
  ``front`` order,
* ``technique`` and ``parameters_json`` unicode arrays so any single row
  can be materialized back into a ``DesignPoint`` without touching the
  JSON document,
* ``pareto_index`` — the precomputed
  :func:`~repro.core.pareto.pareto_front_indices` of the front (front
  order), so the serving layer's default non-dominated view is a slice,
* a ``version`` stamp, the campaign ``fingerprint`` the report was built
  under, and ``front_sha256`` — the SHA-256 of the sibling JSON bytes.

The sha ties the npz to the exact JSON it was derived from: a reader that
holds the JSON bytes validates the pair in O(1) and falls back to the
JSON path on any mismatch (stale npz after a partial rewrite, torn file,
foreign version). ``np.savez`` stores members uncompressed, so
:func:`load_front_npz` maps the file once and exposes every column as a
read-only zero-copy view over the mapping — no decode, no copy, no
per-row Python.
"""

from __future__ import annotations

import hashlib
import io
import json
import mmap
import os
import struct
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.pareto import pareto_front_indices
from ..core.results import DesignPoint

#: Format version stamped into every npz; readers refuse anything else.
COLUMNAR_VERSION = 1

#: The objective columns every front persists/materializes. Optional
#: columns (``robust_accuracy``, ``accuracy_std``) hold NaN where a point
#: lacks them.
FRONT_COLUMNS: Tuple[str, ...] = (
    "accuracy",
    "area",
    "power",
    "delay",
    "robust_accuracy",
    "accuracy_std",
)

_NPY_SUFFIX = ".npy"
_LOCAL_HEADER_SIZE = 30
_LOCAL_HEADER_MAGIC = b"PK\x03\x04"


def build_columns(points: Sequence[DesignPoint]) -> Dict[str, np.ndarray]:
    """Read-only columnar arrays over a sequence of design points.

    One ``float64`` array per :data:`FRONT_COLUMNS` entry, aligned with
    ``points`` order; optional fields are NaN where absent. Arrays are
    marked non-writeable so no downstream consumer can mutate a cached
    view in place.
    """
    n = len(points)
    columns: Dict[str, np.ndarray] = {}
    for name in FRONT_COLUMNS:
        values = np.empty(n, dtype=np.float64)
        for index, point in enumerate(points):
            value = getattr(point, name)
            values[index] = np.nan if value is None else float(value)
        values.flags.writeable = False
        columns[name] = values
    return columns


def front_npz_path(json_path: Union[str, Path]) -> Path:
    """The columnar sibling of a ``front_<dataset>.json`` path."""
    return Path(json_path).with_suffix(".npz")


def _string_array(values: Sequence[str]) -> np.ndarray:
    """A unicode array over ``values`` (typed even when empty)."""
    if not values:
        return np.array([], dtype="<U1")
    return np.array(list(values), dtype=np.str_)


def write_front_npz(
    json_path: Union[str, Path], fingerprint: Optional[str] = None
) -> Path:
    """Persist the columnar form of one front document next to its JSON.

    Reads ``front_<dataset>.json`` (the canonical artifact — it must
    already exist), derives every column, and writes
    ``front_<dataset>.npz`` atomically (temp file + ``os.replace``, the
    report writer's convention). ``fingerprint`` is the campaign/summary
    fingerprint the report was built under (stored verbatim; ``""`` when
    absent). Raises ``ValueError`` for a document that is not a front.

    Objective values are stored as ``float64`` — exact for the float
    values the report writer emits (round-tripping bit-for-bit), which is
    what the serving layer's byte-identity A/B tests pin.
    """
    json_path = Path(json_path)
    raw = json_path.read_bytes()
    document = json.loads(raw.decode("utf-8"))
    if not isinstance(document, dict) or not isinstance(document.get("front"), list):
        raise ValueError(f"{json_path} does not hold a front document")
    points = [DesignPoint(**entry) for entry in document["front"]]
    robust = bool(points) and all(p.robust_accuracy is not None for p in points)
    members: Dict[str, object] = {
        "version": np.int64(COLUMNAR_VERSION),
        "dataset": str(document.get("dataset", "")),
        "fingerprint": "" if fingerprint is None else str(fingerprint),
        "front_sha256": hashlib.sha256(raw).hexdigest(),
        "row_index": np.arange(len(points), dtype=np.int64),
        "robust": np.bool_(robust),
        "technique": _string_array([p.technique for p in points]),
        "parameters_json": _string_array(
            [json.dumps(p.parameters, sort_keys=True) for p in points]
        ),
        "pareto_index": np.asarray(
            pareto_front_indices(points, robust=robust), dtype=np.int64
        ),
    }
    members.update(build_columns(points))
    npz_path = front_npz_path(json_path)
    # np.savez appends ".npz" unless the name already ends with it, so the
    # temp name must keep the suffix for the rename to land precisely.
    tmp_path = npz_path.with_name(npz_path.stem + ".tmp.npz")
    np.savez(tmp_path, **members)
    os.replace(tmp_path, npz_path)
    return npz_path


@dataclass(frozen=True)
class ColumnarFront:
    """One loaded ``front_<dataset>.npz`` — zero-copy views over the mapping.

    Attributes:
        path: the npz file the arrays are mapped from.
        version: the format version stamp (always ``COLUMNAR_VERSION``).
        dataset: the dataset name recorded at write time.
        fingerprint: the campaign fingerprint recorded at write time.
        front_sha256: SHA-256 hex of the sibling JSON's bytes at write time.
        n_rows: number of front rows.
        robust: whether every row carries ``robust_accuracy``.
        columns: read-only ``float64`` arrays per :data:`FRONT_COLUMNS`.
        technique: unicode array of per-row technique names.
        parameters_json: unicode array of canonical per-row parameter JSON.
        pareto_index: ``int64`` indices of the non-dominated subset, in
            front order.
    """

    path: Path
    version: int
    dataset: str
    fingerprint: str
    front_sha256: str
    n_rows: int
    robust: bool
    columns: Mapping[str, np.ndarray]
    technique: np.ndarray
    parameters_json: np.ndarray
    pareto_index: np.ndarray

    def point(self, row: int) -> DesignPoint:
        """Materialize one front row back into a :class:`DesignPoint`."""
        robust_accuracy = float(self.columns["robust_accuracy"][row])
        accuracy_std = float(self.columns["accuracy_std"][row])
        return DesignPoint(
            technique=str(self.technique[row]),
            accuracy=float(self.columns["accuracy"][row]),
            area=float(self.columns["area"][row]),
            power=float(self.columns["power"][row]),
            delay=float(self.columns["delay"][row]),
            parameters=json.loads(str(self.parameters_json[row])),
            robust_accuracy=None if np.isnan(robust_accuracy) else robust_accuracy,
            accuracy_std=None if np.isnan(accuracy_std) else accuracy_std,
        )


def _mapped_members(path: Path) -> Dict[str, np.ndarray]:
    """Every npz member as a zero-copy array over one shared ``mmap``.

    ``np.savez`` members are uncompressed (``ZIP_STORED``), so each
    ``<name>.npy`` payload sits contiguously in the file: the zip central
    directory gives the local-header offset, the local header gives the
    payload offset, and the npy header gives dtype/shape — after which the
    array is one ``np.frombuffer`` over the mapping. Arrays keep the
    mapping alive through their ``base`` reference and are read-only
    because the mapping is. Raises on any structural violation (the
    caller treats that as corruption).
    """
    arrays: Dict[str, np.ndarray] = {}
    with open(path, "rb") as handle:
        buffer = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    with zipfile.ZipFile(path) as archive:
        for info in archive.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                raise ValueError(f"compressed member {info.filename!r}")
            if not info.filename.endswith(_NPY_SUFFIX):
                raise ValueError(f"foreign member {info.filename!r}")
            header = buffer[info.header_offset : info.header_offset + _LOCAL_HEADER_SIZE]
            if len(header) < _LOCAL_HEADER_SIZE or not header.startswith(_LOCAL_HEADER_MAGIC):
                raise ValueError(f"torn local header for {info.filename!r}")
            name_length, extra_length = struct.unpack("<HH", header[26:30])
            payload_offset = (
                info.header_offset + _LOCAL_HEADER_SIZE + name_length + extra_length
            )
            if payload_offset + info.file_size > len(buffer):
                raise ValueError(f"truncated payload for {info.filename!r}")
            npy_header = io.BytesIO(
                buffer[payload_offset : payload_offset + min(info.file_size, 4096)]
            )
            npy_version = np.lib.format.read_magic(npy_header)
            if npy_version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(npy_header)
            elif npy_version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(npy_header)
            else:
                raise ValueError(f"unsupported npy version {npy_version}")
            if dtype.hasobject or fortran:
                raise ValueError(f"unmappable member {info.filename!r}")
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            array = np.frombuffer(
                buffer, dtype=dtype, count=count, offset=payload_offset + npy_header.tell()
            ).reshape(shape)
            arrays[info.filename[: -len(_NPY_SUFFIX)]] = array
    return arrays


def load_front_npz(
    path: Union[str, Path],
    expected_sha256: Optional[str] = None,
    dataset: Optional[str] = None,
) -> Optional[ColumnarFront]:
    """Load one columnar front, mmap-backed; ``None`` on any mismatch.

    ``None`` — never an exception — for a missing, torn, truncated,
    foreign-version or stale file (``expected_sha256`` / ``dataset``
    disagreeing with the stamps), so callers can always fall back to the
    canonical JSON path. The returned arrays are zero-copy views over a
    shared read-only mapping.
    """
    path = Path(path)
    try:
        arrays = _mapped_members(path)
        version = int(arrays["version"][()])
        if version != COLUMNAR_VERSION:
            return None
        sha = str(arrays["front_sha256"][()])
        if expected_sha256 is not None and sha != expected_sha256:
            return None
        stamped_dataset = str(arrays["dataset"][()])
        if dataset is not None and stamped_dataset != dataset:
            return None
        row_index = arrays["row_index"]
        n_rows = int(row_index.shape[0])
        if not np.array_equal(row_index, np.arange(n_rows, dtype=np.int64)):
            return None
        columns: Dict[str, np.ndarray] = {}
        for name in FRONT_COLUMNS:
            column = arrays[name]
            if column.dtype != np.float64 or column.shape != (n_rows,):
                return None
            columns[name] = column
        technique = arrays["technique"]
        parameters_json = arrays["parameters_json"]
        if technique.shape != (n_rows,) or parameters_json.shape != (n_rows,):
            return None
        pareto_index = arrays["pareto_index"]
        if pareto_index.dtype != np.int64 or pareto_index.ndim != 1:
            return None
        if pareto_index.size and (
            pareto_index.min() < 0 or pareto_index.max() >= n_rows
        ):
            return None
        return ColumnarFront(
            path=path,
            version=version,
            dataset=stamped_dataset,
            fingerprint=str(arrays["fingerprint"][()]),
            front_sha256=sha,
            n_rows=n_rows,
            robust=bool(arrays["robust"][()]),
            columns=columns,
            technique=technique,
            parameters_json=parameters_json,
            pareto_index=pareto_index,
        )
    except Exception:  # noqa: BLE001 - any damage means "no columnar view"
        return None


__all__ = [
    "COLUMNAR_VERSION",
    "FRONT_COLUMNS",
    "ColumnarFront",
    "build_columns",
    "front_npz_path",
    "load_front_npz",
    "write_front_npz",
]
