"""Declarative campaign specifications and their expansion into jobs.

A campaign describes a *grid* of search runs — datasets × search
algorithms × seeds, sharing a pipeline configuration — as plain data
(a YAML/JSON file or a Python dict). :meth:`CampaignSpec.expand` turns
the grid into a deterministic, ordered list of :class:`JobSpec` entries;
everything downstream (the runner, the journal, resume, reporting) keys
off the stable ``job_id`` each job gets here.

Spec layout::

    name: paper-fronts
    datasets: [whitewine, seeds]      # names, or "all" for the paper's four
    seeds: [0, 1]                     # optional, default [0]
    pipeline:                         # optional PipelineConfig overrides
      fast: true                      # start from fast_config(...)
      train_epochs: 10
      n_workers: 2
    searches:
      - algorithm: ga                 # ga | random | grid
        name: ga-small                # optional label (defaults to algorithm)
        population_size: 8
        n_generations: 3
      - algorithm: random
        n_evaluations: 16

Job identity is ``{dataset}-{search name}-s{seed}``, and
:meth:`CampaignSpec.fingerprint` hashes the canonical spec so a resumed
campaign can refuse to run against an edited spec.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.config import PipelineConfig, fast_config
from ..datasets.registry import resolve_dataset_names

#: Search algorithms a campaign job may request.
ALGORITHMS: Tuple[str, ...] = ("ga", "random", "grid")

#: Per-algorithm search parameters accepted in a spec (beyond ``algorithm``/``name``).
_GA_PARAMS = frozenset(
    {
        "population_size",
        "n_generations",
        "mutation_rate",
        "crossover_rate",
        "finetune_epochs",
        "cache_size",
        "fault_rate",
        "n_fault_trials",
        "fault_model",
        "backend",
        "surrogate",
        "surrogate_candidates",
        "surrogate_prefilter",
        "halving_budgets",
        "bit_choices",
        "sparsity_choices",
        "cluster_choices",
    }
)
_RANDOM_PARAMS = frozenset({"n_evaluations"})
_GRID_PARAMS = frozenset({"bit_choices", "sparsity_choices", "cluster_choices"})
_SEARCH_PARAMS = {"ga": _GA_PARAMS, "random": _RANDOM_PARAMS, "grid": _GRID_PARAMS}

#: Search names become path components of ``jobs/<job_id>/`` — keep them safe.
_SEARCH_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: PipelineConfig overrides accepted in a spec (``dataset``/``seed`` come from the grid).
_PIPELINE_PARAMS = frozenset(
    {f.name for f in fields(PipelineConfig)} - {"dataset", "seed"} | {"fast"}
)


def _canonical_json(payload: object) -> str:
    """Stable JSON serialization used for fingerprints and job identity."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class SearchSpec:
    """One search-algorithm configuration of the campaign grid.

    Attributes:
        algorithm: one of :data:`ALGORITHMS`.
        name: label used in job ids (defaults to the algorithm name; must be
            unique within a campaign).
        params: algorithm parameters — :class:`~repro.search.ga.GAConfig`
            fields for ``ga``, ``n_evaluations`` for ``random``, the three
            gene alphabets for ``grid``.
    """

    algorithm: str
    name: str
    params: Tuple[Tuple[str, object], ...] = ()

    def param_dict(self) -> Dict[str, object]:
        """The search parameters as a plain dict."""
        return {key: value for key, value in self.params}

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "SearchSpec":
        """Validate and build one search entry from its spec mapping."""
        entry = dict(data)
        algorithm = str(entry.pop("algorithm", "")).strip().lower()
        if algorithm not in ALGORITHMS:
            raise ValueError(
                f"Unknown search algorithm '{algorithm}'. Valid: {ALGORITHMS}"
            )
        name = str(entry.pop("name", algorithm))
        if not _SEARCH_NAME_PATTERN.match(name):
            raise ValueError(
                f"Search name '{name}' is invalid: it becomes part of the "
                "job directory name, so only letters, digits, '.', '_' and "
                "'-' are allowed (and it must not start with a separator)"
            )
        allowed = _SEARCH_PARAMS[algorithm]
        unknown = set(entry) - allowed
        if unknown:
            raise ValueError(
                f"Unknown parameters {sorted(unknown)} for '{algorithm}' search "
                f"'{name}'. Valid: {sorted(allowed)}"
            )
        params = tuple(
            (key, _freeze(value)) for key, value in sorted(entry.items())
        )
        return SearchSpec(algorithm=algorithm, name=name, params=params)

    def as_dict(self) -> Dict[str, object]:
        """Plain-data form (inverse of :meth:`from_dict`)."""
        doc: Dict[str, object] = {"algorithm": self.algorithm, "name": self.name}
        doc.update({key: _thaw(value) for key, value in self.params})
        return doc


def _freeze(value: object) -> object:
    """Recursively convert lists to tuples so spec entries are hashable."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def _thaw(value: object) -> object:
    """Inverse of :func:`_freeze` for JSON-friendly output."""
    if isinstance(value, tuple):
        return [_thaw(item) for item in value]
    return value


@dataclass(frozen=True)
class JobSpec:
    """One fully-resolved unit of campaign work.

    A job is (dataset, search algorithm + params, seed, pipeline overrides);
    its evaluation is a pure function of these fields, which is what makes
    killed campaigns resumable bit-identically. ``job_id`` is stable across
    processes and spec reloads.
    """

    job_id: str
    dataset: str
    algorithm: str
    search_name: str
    seed: int
    pipeline: Tuple[Tuple[str, object], ...] = ()
    search: Tuple[Tuple[str, object], ...] = ()

    def pipeline_overrides(self) -> Dict[str, object]:
        """The pipeline overrides as a plain dict."""
        return {key: value for key, value in self.pipeline}

    def search_params(self) -> Dict[str, object]:
        """The search parameters as a plain dict."""
        return {key: value for key, value in self.search}

    def pipeline_config(self) -> PipelineConfig:
        """Materialize this job's :class:`~repro.core.config.PipelineConfig`.

        ``fast: true`` starts from :func:`~repro.core.config.fast_config`
        and applies the remaining overrides on top; otherwise the overrides
        go straight onto a default ``PipelineConfig``.
        """
        overrides = self.pipeline_overrides()
        fast = bool(overrides.pop("fast", False))
        if fast:
            config = fast_config(self.dataset, seed=self.seed)
            return replace(config, **overrides) if overrides else config
        return PipelineConfig(dataset=self.dataset, seed=self.seed, **overrides)

    def as_dict(self) -> Dict[str, object]:
        """Plain-data form used in journals and job results."""
        return {
            "job_id": self.job_id,
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "search_name": self.search_name,
            "seed": self.seed,
            "pipeline": {key: _thaw(value) for key, value in self.pipeline},
            "search": {key: _thaw(value) for key, value in self.search},
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "JobSpec":
        """Rebuild a job from :meth:`as_dict` output (used by pool workers)."""
        return JobSpec(
            job_id=str(data["job_id"]),
            dataset=str(data["dataset"]),
            algorithm=str(data["algorithm"]),
            search_name=str(data["search_name"]),
            seed=int(data["seed"]),  # type: ignore[arg-type]
            pipeline=tuple(
                (key, _freeze(value))
                for key, value in sorted(dict(data.get("pipeline", {})).items())
            ),
            search=tuple(
                (key, _freeze(value))
                for key, value in sorted(dict(data.get("search", {})).items())
            ),
        )


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative multi-dataset search campaign.

    Attributes:
        name: campaign label (used in reports).
        datasets: canonical dataset names (already resolved; ``"all"`` in
            the input expands to the paper's four).
        searches: the search-algorithm grid axis.
        seeds: the seed grid axis.
        pipeline: shared :class:`~repro.core.config.PipelineConfig`
            overrides (plus the ``fast`` pseudo-field).
    """

    name: str
    datasets: Tuple[str, ...]
    searches: Tuple[SearchSpec, ...]
    seeds: Tuple[int, ...] = (0,)
    pipeline: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not self.datasets:
            raise ValueError("Campaign needs at least one dataset")
        if not self.searches:
            raise ValueError("Campaign needs at least one search entry")
        if not self.seeds:
            raise ValueError("Campaign needs at least one seed")
        names = [search.name for search in self.searches]
        if len(set(names)) != len(names):
            raise ValueError(
                f"Search names must be unique within a campaign, got {names} "
                "(give duplicate algorithms distinct 'name' labels)"
            )

    # -- construction ------------------------------------------------------------

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "CampaignSpec":
        """Validate and build a campaign from its plain-data form."""
        entry = dict(data)
        name = str(entry.pop("name", "campaign"))
        datasets = resolve_dataset_names(entry.pop("datasets", None))  # type: ignore[arg-type]
        searches_data = entry.pop("searches", None)
        if not searches_data:
            raise ValueError("Campaign spec needs a non-empty 'searches' list")
        searches = tuple(SearchSpec.from_dict(item) for item in searches_data)  # type: ignore[union-attr]
        seeds_data = entry.pop("seeds", [0])
        if isinstance(seeds_data, (int, float)):
            seeds_data = [seeds_data]
        # De-duplicate (order-preserving) like datasets: duplicate seeds would
        # collide on job_id and run the same job twice.
        seeds = tuple(dict.fromkeys(int(seed) for seed in seeds_data))  # type: ignore[union-attr]
        pipeline_data = dict(entry.pop("pipeline", {}) or {})
        unknown = set(pipeline_data) - _PIPELINE_PARAMS
        if unknown:
            raise ValueError(
                f"Unknown pipeline overrides {sorted(unknown)}. "
                f"Valid: {sorted(_PIPELINE_PARAMS)}"
            )
        if entry:
            raise ValueError(
                f"Unknown campaign fields {sorted(entry)}. "
                "Valid: name, datasets, searches, seeds, pipeline"
            )
        pipeline = tuple(
            (key, _freeze(value)) for key, value in sorted(pipeline_data.items())
        )
        return CampaignSpec(
            name=name, datasets=datasets, searches=searches, seeds=seeds, pipeline=pipeline
        )

    def as_dict(self) -> Dict[str, object]:
        """Plain-data form (what ``spec.json`` in a campaign directory holds)."""
        return {
            "name": self.name,
            "datasets": list(self.datasets),
            "searches": [search.as_dict() for search in self.searches],
            "seeds": list(self.seeds),
            "pipeline": {key: _thaw(value) for key, value in self.pipeline},
        }

    # -- identity ----------------------------------------------------------------

    def fingerprint(self) -> str:
        """SHA-256 digest of the canonical spec (detects edited-spec resumes)."""
        return hashlib.sha256(_canonical_json(self.as_dict()).encode("utf-8")).hexdigest()

    # -- expansion ---------------------------------------------------------------

    def expand(self) -> List[JobSpec]:
        """The campaign's job list: datasets × searches × seeds, in grid order.

        Order is deterministic (the spec's own ordering), and ``job_id`` is a
        readable, stable key — the unit of resume and of shard assignment.
        """
        jobs: List[JobSpec] = []
        for dataset in self.datasets:
            for search in self.searches:
                for seed in self.seeds:
                    jobs.append(
                        JobSpec(
                            job_id=f"{dataset}-{search.name}-s{seed}",
                            dataset=dataset,
                            algorithm=search.algorithm,
                            search_name=search.name,
                            seed=seed,
                            pipeline=self.pipeline,
                            search=search.params,
                        )
                    )
        return jobs


def parse_shard(shard: Optional[str]) -> Optional[Tuple[int, int]]:
    """Parse an ``"i/n"`` shard selector into ``(index, count)``.

    Sharding splits a campaign's job list round-robin across ``n``
    cooperating runner processes (or machines): shard ``i`` runs jobs whose
    grid index is congruent to ``i`` modulo ``n``. Returns ``None`` for
    ``None`` input; raises ``ValueError`` on malformed selectors.
    """
    if shard is None:
        return None
    try:
        index_text, count_text = str(shard).split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError as error:
        raise ValueError(f"Shard must look like 'i/n', got '{shard}'") from error
    if count < 1 or not 0 <= index < count:
        raise ValueError(f"Shard index must satisfy 0 <= i < n, got '{shard}'")
    return index, count


def select_shard(jobs: Sequence[JobSpec], shard: Optional[Tuple[int, int]]) -> List[JobSpec]:
    """The subset of ``jobs`` owned by ``shard`` (all of them when ``None``)."""
    if shard is None:
        return list(jobs)
    index, count = shard
    return [job for position, job in enumerate(jobs) if position % count == index]


def load_spec(path: Union[str, Path]) -> CampaignSpec:
    """Load a campaign spec from a YAML or JSON file.

    ``.json`` files use the standard library; anything else is parsed as
    YAML when PyYAML is importable and as JSON otherwise (so a
    YAML-less environment still runs JSON campaigns — YAML is a superset
    of JSON, making ``.json`` content valid either way).
    """
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() == ".json":
        data = json.loads(text)
    else:
        try:
            import yaml  # noqa: PLC0415 - optional dependency, gated import
        except ImportError:
            try:
                data = json.loads(text)
            except json.JSONDecodeError:
                raise RuntimeError(
                    f"Cannot parse '{path}': PyYAML is not installed and the "
                    "file is not valid JSON. Install pyyaml or use a JSON spec."
                ) from None
        else:
            data = yaml.safe_load(text)
    if not isinstance(data, Mapping):
        raise ValueError(f"Campaign spec '{path}' must be a mapping at top level")
    return CampaignSpec.from_dict(data)
