"""Full bespoke MLP circuit construction.

Turns a trained (and possibly minimized) :class:`~repro.nn.network.MLP` into
a :class:`~repro.bespoke.netlist.Netlist`: per-layer constant multipliers and
adder trees, ReLU blocks for hidden layers, the final argmax comparator tree
and optional interface registers. The weights hard-wired into the circuit are
the layer's ``effective_weights()`` quantized to the configured bit-width, so
whatever the minimization packages did (masks, fake-quantizers, clustered
values) is exactly what the hardware sees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from ..hardware.arithmetic import argmax_unit, register_bank
from ..hardware.fixed_point import FixedPointFormat, derive_format
from ..hardware.technology import TechnologyLibrary, egt_library
from ..nn.layers import ActivationLayer, Dense
from ..nn.network import MLP
from .layer_circuit import LayerCircuitResult, LayerCircuitSpec, build_layer_circuit
from .netlist import CircuitComponent, Netlist


@dataclass(frozen=True)
class BespokeConfig:
    """Configuration of the bespoke mapping.

    Attributes:
        input_bits: unsigned bit-width of the circuit's primary inputs.
        weight_bits: weight bit-width; either a single int for all layers or
            a per-layer sequence.
        share_products: enable multiplier sharing for identical |coefficients|
            at the same input position (what synthesis resource sharing and
            the paper's weight clustering exploit).
        multiplier_method: ``"csd"`` (default) or ``"binary"`` decomposition.
        include_io_registers: add input/output register banks (the printed
            classifier interface of Mubarik et al.).
    """

    input_bits: int = 4
    weight_bits: Union[int, Sequence[int]] = 8
    share_products: bool = True
    multiplier_method: str = "csd"
    include_io_registers: bool = True

    def __post_init__(self) -> None:
        if self.input_bits <= 0:
            raise ValueError(f"input_bits must be positive, got {self.input_bits}")
        bits = self.weight_bits
        if isinstance(bits, int):
            if bits < 2:
                raise ValueError(f"weight_bits must be >= 2, got {bits}")
        else:
            if len(bits) == 0 or any(b < 2 for b in bits):
                raise ValueError("per-layer weight_bits must all be >= 2")
        if self.multiplier_method not in ("csd", "binary"):
            raise ValueError(
                f"multiplier_method must be 'csd' or 'binary', got {self.multiplier_method}"
            )

    def bits_for_layer(self, layer_index: int, n_layers: int) -> int:
        """Weight bit-width of a given Dense layer."""
        if isinstance(self.weight_bits, int):
            return self.weight_bits
        bits = list(self.weight_bits)
        if len(bits) != n_layers:
            raise ValueError(
                f"weight_bits has {len(bits)} entries but the MLP has {n_layers} Dense layers"
            )
        return int(bits[layer_index])


@dataclass
class BespokeCircuit:
    """The generated circuit: netlist plus per-layer bookkeeping."""

    name: str
    netlist: Netlist
    layer_results: List[LayerCircuitResult]
    weight_formats: List[FixedPointFormat]
    config: BespokeConfig
    technology: TechnologyLibrary
    metadata: dict = field(default_factory=dict)

    @property
    def n_multipliers(self) -> int:
        return sum(result.n_multipliers for result in self.layer_results)

    @property
    def n_shared_products(self) -> int:
        return sum(result.n_shared_products for result in self.layer_results)


def _dense_relu_flags(model: MLP) -> List[bool]:
    """Whether each Dense layer is followed by a ReLU-like activation."""
    flags: List[bool] = []
    layers = model.layers
    for index, layer in enumerate(layers):
        if not isinstance(layer, Dense):
            continue
        follows_relu = False
        for successor in layers[index + 1 :]:
            if isinstance(successor, Dense):
                break
            if isinstance(successor, ActivationLayer) and successor.activation.name in (
                "relu",
                "leaky_relu",
            ):
                follows_relu = True
                break
        flags.append(follows_relu)
    return flags


def derive_layer_spec(
    layer: Dense,
    weight_bits: int,
    input_bits: int,
    relu: bool,
    config: BespokeConfig,
) -> "tuple[LayerCircuitSpec, FixedPointFormat]":
    """Quantize one Dense layer's effective parameters into a circuit spec.

    Single source of truth for the float → hard-wired-integer mapping, shared
    by the full netlist construction (:func:`build_bespoke_circuit`) and the
    cost-only synthesis path (:func:`repro.bespoke.synthesis.synthesize_cost_only`).
    """
    effective = layer.effective_weights()
    fmt = derive_format(effective, weight_bits)
    int_weights = fmt.to_integers(effective)
    # The bias enters the adder tree as one hard-wired operand; it is
    # quantized on the product grid (weight scale x input LSB).
    bias = layer.effective_bias() if layer.use_bias else np.zeros(layer.n_outputs)
    input_lsb = 1.0 / ((1 << input_bits) - 1)
    bias_scale = fmt.scale * input_lsb
    int_bias = np.round(bias / bias_scale).astype(np.int64)
    spec = LayerCircuitSpec(
        weights=int_weights,
        biases=int_bias,
        input_bits=input_bits,
        weight_bits=weight_bits,
        relu=relu,
        share_products=config.share_products,
        multiplier_method=config.multiplier_method,
    )
    return spec, fmt


def build_bespoke_circuit(
    model: MLP,
    config: Optional[BespokeConfig] = None,
    tech: Optional[TechnologyLibrary] = None,
    name: str = "bespoke_mlp",
) -> BespokeCircuit:
    """Map an MLP to a bespoke printed circuit.

    Args:
        model: the (possibly minimized) network; its ``effective_weights()``
            are the coefficients that get hard-wired.
        config: bespoke mapping configuration (defaults: 4-bit inputs,
            8-bit weights, CSD multipliers, product sharing, I/O registers).
        tech: technology library (defaults to the EGT printed library).
        name: circuit instance name used in reports.
    """
    config = config if config is not None else BespokeConfig()
    tech = tech if tech is not None else egt_library()
    dense_layers = model.dense_layers
    if not dense_layers:
        raise ValueError("Cannot build a bespoke circuit for an MLP without Dense layers")
    relu_flags = _dense_relu_flags(model)

    netlist = Netlist()
    layer_results: List[LayerCircuitResult] = []
    weight_formats: List[FixedPointFormat] = []

    current_input_bits = config.input_bits
    if config.include_io_registers:
        netlist.add(
            CircuitComponent(
                name="io/input_registers",
                kind="register",
                cost=register_bank(dense_layers[0].n_inputs * config.input_bits, tech),
                layer_index=None,
                attributes={"width": dense_layers[0].n_inputs * config.input_bits},
            )
        )

    for layer_index, (layer, relu) in enumerate(zip(dense_layers, relu_flags)):
        weight_bits = config.bits_for_layer(layer_index, len(dense_layers))
        spec, fmt = derive_layer_spec(
            layer, weight_bits, current_input_bits, relu, config
        )
        result = build_layer_circuit(spec, tech, layer_index)
        netlist.extend(result.components)
        layer_results.append(result)
        weight_formats.append(fmt)
        current_input_bits = result.output_bits

    # Output stage: argmax over the last layer's scores.
    n_classes = dense_layers[-1].n_outputs
    index_bits = max(int(math.ceil(math.log2(n_classes))), 1)
    netlist.add(
        CircuitComponent(
            name="output/argmax",
            kind="argmax",
            cost=argmax_unit(n_classes, current_input_bits, index_bits, tech),
            layer_index=None,
            attributes={"n_classes": n_classes, "score_bits": current_input_bits},
        )
    )
    if config.include_io_registers:
        netlist.add(
            CircuitComponent(
                name="io/output_registers",
                kind="register",
                cost=register_bank(index_bits, tech),
                layer_index=None,
                attributes={"width": index_bits},
            )
        )

    metadata = {
        "input_bits": config.input_bits,
        "weight_bits": [config.bits_for_layer(i, len(dense_layers)) for i in range(len(dense_layers))],
        "share_products": config.share_products,
        "multiplier_method": config.multiplier_method,
        "topology": model.topology(),
        "sparsity": model.sparsity(),
    }
    return BespokeCircuit(
        name=name,
        netlist=netlist,
        layer_results=layer_results,
        weight_formats=weight_formats,
        config=config,
        technology=tech,
        metadata=metadata,
    )
