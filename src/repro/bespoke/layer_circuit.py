"""Bespoke circuit generation for a single Dense layer.

A bespoke Dense layer consists of, per neuron, the constant-coefficient
multipliers of its non-zero weights, an adder tree summing the products (plus
the hard-wired bias, if any), and the activation block. Because every weight
is a hard-wired constant:

* pruned (zero) weights produce no multiplier and no adder-tree operand,
* weights at the same *input position* (same row of the weight matrix) with
  the same magnitude can share one multiplier — the mechanism the paper's
  weight-clustering technique exploits (and that synthesis resource sharing
  applies automatically when low bit-widths make weights coincide).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..hardware.arithmetic import (
    adder_tree_from_widths,
    constant_multiplier,
    neuron_output_width,
    relu_unit,
)
from ..hardware.cost import HardwareCost
from ..hardware.csd import coefficient_bit_length
from ..hardware.technology import TechnologyLibrary
from .netlist import CircuitComponent


@dataclass(frozen=True)
class LayerCircuitSpec:
    """Inputs needed to generate one Dense layer's bespoke hardware.

    Attributes:
        weights: integer coefficient matrix of shape ``(n_inputs, n_neurons)``.
        biases: integer bias vector of shape ``(n_neurons,)``.
        input_bits: bit-width of the layer's input activations.
        weight_bits: bit-width of the hard-wired weights.
        relu: whether the layer is followed by a ReLU activation.
        share_products: share multipliers across neurons for identical
            |coefficient| at the same input position.
        multiplier_method: ``"csd"`` or ``"binary"`` shift-add decomposition.
    """

    weights: np.ndarray
    biases: np.ndarray
    input_bits: int
    weight_bits: int
    relu: bool = True
    share_products: bool = True
    multiplier_method: str = "csd"

    def __post_init__(self) -> None:
        weights = np.asarray(self.weights)
        biases = np.asarray(self.biases)
        if weights.ndim != 2:
            raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
        if biases.shape != (weights.shape[1],):
            raise ValueError(
                f"biases must have shape ({weights.shape[1]},), got {biases.shape}"
            )
        if not np.issubdtype(weights.dtype, np.integer):
            raise TypeError("Layer circuit weights must be integers (hard-wired levels)")
        if not np.issubdtype(biases.dtype, np.integer):
            raise TypeError("Layer circuit biases must be integers")
        if self.input_bits <= 0 or self.weight_bits <= 0:
            raise ValueError("input_bits and weight_bits must be positive")

    @property
    def n_inputs(self) -> int:
        return int(np.asarray(self.weights).shape[0])

    @property
    def n_neurons(self) -> int:
        return int(np.asarray(self.weights).shape[1])


@dataclass
class LayerCircuitResult:
    """Components generated for one layer plus bookkeeping for later layers."""

    components: List[CircuitComponent]
    output_bits: int
    n_multipliers: int
    n_shared_products: int


def _integer_bit_lengths(magnitudes: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length`` over an array of non-negative integers.

    ``frexp`` decomposes ``m = mantissa * 2**exponent`` with mantissa in
    ``[0.5, 1)``, so the exponent *is* the bit length for positive integers
    (and 0 for zero) — exact for every value below 2**53, far beyond any
    hard-wired coefficient.
    """
    return np.frexp(magnitudes.astype(np.float64))[1]


def _layer_mult_plan(
    spec: LayerCircuitSpec, weights: np.ndarray
) -> Tuple[List[Tuple[int, np.ndarray, np.ndarray]], int]:
    """Per-input multiplier instantiation plan: (input_index, magnitudes, fanouts).

    The magnitudes honor the sharing convention of the original per-weight
    loop: with ``share_products`` they are the sorted distinct non-zero
    |coefficients| of the row (``np.unique``), otherwise every non-zero
    |coefficient| in row order.
    """
    abs_w = np.abs(weights)
    plan: List[Tuple[int, np.ndarray, np.ndarray]] = []
    n_shared = 0
    for input_index in range(spec.n_inputs):
        row_nz = abs_w[input_index][abs_w[input_index] != 0]
        if row_nz.size == 0:
            continue
        if spec.share_products:
            magnitudes, fanouts = np.unique(row_nz, return_counts=True)
            n_shared += int(row_nz.size - magnitudes.size)
        else:
            magnitudes = row_nz
            fanouts = np.ones(row_nz.size, dtype=np.int64)
        plan.append((input_index, magnitudes, fanouts))
    return plan, n_shared


def _neuron_operand_widths(
    spec: LayerCircuitSpec, weights: np.ndarray, biases: np.ndarray
) -> List[List[int]]:
    """Adder-tree operand widths per neuron (vectorized over the weight matrix)."""
    nonzero = weights != 0
    widths_matrix = spec.input_bits + _integer_bit_lengths(np.abs(weights))
    per_neuron: List[List[int]] = []
    for neuron_index in range(spec.n_neurons):
        operand_widths = widths_matrix[:, neuron_index][nonzero[:, neuron_index]].tolist()
        if biases[neuron_index] != 0:
            bias_width = min(
                coefficient_bit_length(int(biases[neuron_index])),
                spec.input_bits + spec.weight_bits,
            )
            operand_widths.append(max(bias_width, 1))
        per_neuron.append(operand_widths)
    return per_neuron


def build_layer_circuit(
    spec: LayerCircuitSpec,
    tech: TechnologyLibrary,
    layer_index: int,
    name_prefix: Optional[str] = None,
) -> LayerCircuitResult:
    """Generate the bespoke hardware of one Dense layer.

    Returns the component list together with the layer's output bit-width,
    which becomes the next layer's ``input_bits``.
    """
    prefix = name_prefix if name_prefix is not None else f"layer{layer_index}"
    weights = np.asarray(spec.weights, dtype=np.int64)
    biases = np.asarray(spec.biases, dtype=np.int64)
    components: List[CircuitComponent] = []
    n_multipliers = 0

    # --- multipliers, organised per input position so products can be shared ---
    plan, n_shared = _layer_mult_plan(spec, weights)
    for input_index, magnitudes, fanouts in plan:
        for mult_index, (magnitude, fanout) in enumerate(zip(magnitudes, fanouts)):
            magnitude = int(magnitude)
            cost = constant_multiplier(
                magnitude, spec.input_bits, tech, method=spec.multiplier_method
            )
            components.append(
                CircuitComponent(
                    name=f"{prefix}/in{input_index}/mult{mult_index}",
                    kind="multiplier",
                    cost=cost,
                    layer_index=layer_index,
                    attributes={
                        "coefficient": magnitude,
                        "input_position": input_index,
                        "fanout": int(fanout),
                    },
                )
            )
            n_multipliers += 1

    # --- per-neuron adder trees and activations --------------------------------
    max_operands = 0
    for neuron_index, operand_widths in enumerate(
        _neuron_operand_widths(spec, weights, biases)
    ):
        n_operands = len(operand_widths)
        max_operands = max(max_operands, n_operands)
        tree_cost = adder_tree_from_widths(operand_widths, tech) if operand_widths else (
            adder_tree_from_widths([1], tech)
        )
        components.append(
            CircuitComponent(
                name=f"{prefix}/neuron{neuron_index}/sum",
                kind="adder_tree",
                cost=tree_cost,
                layer_index=layer_index,
                attributes={"n_operands": n_operands},
            )
        )
        if spec.relu:
            act_width = neuron_output_width(
                spec.input_bits, spec.weight_bits, max(n_operands, 1)
            )
            components.append(
                CircuitComponent(
                    name=f"{prefix}/neuron{neuron_index}/relu",
                    kind="activation",
                    cost=relu_unit(act_width, tech),
                    layer_index=layer_index,
                    attributes={"width": act_width},
                )
            )

    output_bits = neuron_output_width(
        spec.input_bits, spec.weight_bits, max(max_operands, 1)
    )
    return LayerCircuitResult(
        components=components,
        output_bits=output_bits,
        n_multipliers=n_multipliers,
        n_shared_products=n_shared,
    )


def accumulate_layer_costs(
    spec: LayerCircuitSpec,
    tech: TechnologyLibrary,
    emit: Callable[[str, HardwareCost], None],
) -> LayerCircuitResult:
    """Cost-only twin of :func:`build_layer_circuit`.

    Calls ``emit(kind, cost)`` once per hardware block, in exactly the order
    :func:`build_layer_circuit` instantiates components, but without
    materializing any :class:`CircuitComponent` (no instance names, no
    attribute dicts). The returned :class:`LayerCircuitResult` carries an
    empty component list and the same bookkeeping (output bits, multiplier
    and shared-product counts). Used by the search inner loop, where only
    the aggregate synthesis report matters.
    """
    weights = np.asarray(spec.weights, dtype=np.int64)
    biases = np.asarray(spec.biases, dtype=np.int64)

    plan, n_shared = _layer_mult_plan(spec, weights)
    n_multipliers = 0
    for _input_index, magnitudes, _fanouts in plan:
        for magnitude in magnitudes:
            emit(
                "multiplier",
                constant_multiplier(
                    int(magnitude), spec.input_bits, tech, method=spec.multiplier_method
                ),
            )
            n_multipliers += 1

    max_operands = 0
    for operand_widths in _neuron_operand_widths(spec, weights, biases):
        n_operands = len(operand_widths)
        max_operands = max(max_operands, n_operands)
        tree_cost = adder_tree_from_widths(operand_widths, tech) if operand_widths else (
            adder_tree_from_widths([1], tech)
        )
        emit("adder_tree", tree_cost)
        if spec.relu:
            act_width = neuron_output_width(
                spec.input_bits, spec.weight_bits, max(n_operands, 1)
            )
            emit("activation", relu_unit(act_width, tech))

    output_bits = neuron_output_width(
        spec.input_bits, spec.weight_bits, max(max_operands, 1)
    )
    return LayerCircuitResult(
        components=[],
        output_bits=output_bits,
        n_multipliers=n_multipliers,
        n_shared_products=n_shared,
    )


def distinct_products_per_input(weights: np.ndarray) -> List[int]:
    """Number of distinct non-zero |coefficients| per input position.

    This is the multiplier count each input position needs under product
    sharing; used by tests and by the clustering analysis utilities.
    """
    weights = np.asarray(weights)
    if weights.ndim != 2:
        raise ValueError("weights must be 2-D")
    counts = []
    for row in weights:
        counts.append(len(set(abs(int(v)) for v in row if v != 0)))
    return counts


def estimate_layer_latency_depth(n_operands: int) -> int:
    """Adder-tree depth (levels) for ``n_operands`` operands."""
    if n_operands <= 1:
        return 0
    return int(math.ceil(math.log2(n_operands)))
