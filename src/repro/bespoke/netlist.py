"""Netlist-like description of a bespoke printed MLP circuit.

The "netlist" here is an inventory of hardware blocks (constant multipliers,
adder trees, ReLU units, the argmax tree, interface registers), each carrying
its :class:`~repro.hardware.cost.HardwareCost`. It is the object the
synthesis report is computed from and is detailed enough for the ablation
studies (e.g. counting multipliers saved by product sharing) without
modelling individual wires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from ..hardware.cost import HardwareCost


@dataclass(frozen=True)
class CircuitComponent:
    """One hardware block instance in the bespoke circuit.

    Attributes:
        name: unique instance name, e.g. ``"layer0/neuron2/mult_in3"``.
        kind: block category, one of ``"multiplier"``, ``"adder_tree"``,
            ``"activation"``, ``"argmax"``, ``"register"``.
        cost: the block's area/power/delay/gate-count bundle.
        layer_index: index of the Dense layer the block belongs to
            (``None`` for global blocks such as the argmax tree).
        attributes: free-form details (coefficient value, operand count...).
    """

    name: str
    kind: str
    cost: HardwareCost
    layer_index: Optional[int] = None
    attributes: Dict[str, object] = field(default_factory=dict)

    VALID_KINDS = ("multiplier", "adder_tree", "activation", "argmax", "register")

    def __post_init__(self) -> None:
        if self.kind not in self.VALID_KINDS:
            raise ValueError(
                f"Unknown component kind '{self.kind}'. Valid kinds: {self.VALID_KINDS}"
            )


class Netlist:
    """An ordered collection of :class:`CircuitComponent` instances."""

    def __init__(self, components: Optional[Iterable[CircuitComponent]] = None) -> None:
        self._components: List[CircuitComponent] = list(components) if components else []
        self._names = {c.name for c in self._components}
        if len(self._names) != len(self._components):
            raise ValueError("Component names in a netlist must be unique")

    def add(self, component: CircuitComponent) -> None:
        """Append a component (names must stay unique; checked in O(1))."""
        if component.name in self._names:
            raise ValueError(f"Duplicate component name: {component.name}")
        self._components.append(component)
        self._names.add(component.name)

    def extend(self, components: Iterable[CircuitComponent]) -> None:
        for component in components:
            self.add(component)

    # -- queries ----------------------------------------------------------------

    def __iter__(self) -> Iterator[CircuitComponent]:
        return iter(self._components)

    def __len__(self) -> int:
        return len(self._components)

    @property
    def components(self) -> List[CircuitComponent]:
        return list(self._components)

    def by_kind(self, kind: str) -> List[CircuitComponent]:
        """All components of one kind."""
        return [c for c in self._components if c.kind == kind]

    def by_layer(self, layer_index: int) -> List[CircuitComponent]:
        """All components belonging to one Dense layer."""
        return [c for c in self._components if c.layer_index == layer_index]

    def total_cost(self) -> HardwareCost:
        """Sum of all component costs (parallel composition)."""
        total = HardwareCost.zero()
        for component in self._components:
            total = total + component.cost
        return total

    def cost_by_kind(self) -> Dict[str, HardwareCost]:
        """Total cost per component kind."""
        breakdown: Dict[str, HardwareCost] = {}
        for component in self._components:
            current = breakdown.get(component.kind, HardwareCost.zero())
            breakdown[component.kind] = current + component.cost
        return breakdown

    def cost_by_layer(self) -> Dict[Optional[int], HardwareCost]:
        """Total cost per Dense layer (``None`` key for global blocks)."""
        breakdown: Dict[Optional[int], HardwareCost] = {}
        for component in self._components:
            current = breakdown.get(component.layer_index, HardwareCost.zero())
            breakdown[component.layer_index] = current + component.cost
        return breakdown

    def count_by_kind(self) -> Dict[str, int]:
        """Number of component instances per kind."""
        counts: Dict[str, int] = {}
        for component in self._components:
            counts[component.kind] = counts.get(component.kind, 0) + 1
        return counts
