"""Bespoke printed-MLP circuit generation, analytical synthesis, simulation and export."""

from .circuit import BespokeCircuit, BespokeConfig, build_bespoke_circuit
from .layer_circuit import (
    LayerCircuitResult,
    LayerCircuitSpec,
    build_layer_circuit,
    distinct_products_per_input,
    estimate_layer_latency_depth,
)
from .netlist import CircuitComponent, Netlist
from .report import SynthesisReport
from .simulator import (
    FixedPointSimulator,
    SimulationTrace,
    population_accuracy,
    simulate_population,
    verify_circuit,
)
from .synthesis import (
    report_from_circuit,
    synthesize,
    synthesize_baseline,
    synthesize_cost_only,
)
from .verilog import count_verilog_adders, export_verilog

__all__ = [
    "BespokeCircuit",
    "BespokeConfig",
    "CircuitComponent",
    "FixedPointSimulator",
    "LayerCircuitResult",
    "LayerCircuitSpec",
    "Netlist",
    "SimulationTrace",
    "SynthesisReport",
    "build_bespoke_circuit",
    "build_layer_circuit",
    "count_verilog_adders",
    "distinct_products_per_input",
    "estimate_layer_latency_depth",
    "export_verilog",
    "population_accuracy",
    "report_from_circuit",
    "simulate_population",
    "synthesize",
    "synthesize_baseline",
    "synthesize_cost_only",
    "verify_circuit",
]
