"""Synthesis driver: MLP → bespoke circuit → :class:`SynthesisReport`.

This is the module that plays the role of Synopsys Design Compiler +
PrimeTime in the original flow: it produces the area/power/delay numbers the
evaluation is based on. See ``DESIGN.md`` section 2 for the substitution
rationale.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from ..hardware.arithmetic import argmax_unit, register_bank
from ..hardware.cost import HardwareCost
from ..hardware.technology import TechnologyLibrary, egt_library
from ..nn.network import MLP
from .circuit import (
    BespokeCircuit,
    BespokeConfig,
    _dense_relu_flags,
    build_bespoke_circuit,
    derive_layer_spec,
)
from .layer_circuit import accumulate_layer_costs
from .report import SynthesisReport


def report_from_circuit(circuit: BespokeCircuit) -> SynthesisReport:
    """Compute the synthesis report of an already-built bespoke circuit.

    The critical path is estimated as the serial chain of the slowest
    multiplier, the per-layer adder trees and the argmax stage, which is
    what dominates a fully combinational bespoke MLP.
    """
    netlist = circuit.netlist
    total_parallel = netlist.total_cost()
    by_kind = netlist.cost_by_kind()
    by_layer_raw = netlist.cost_by_layer()
    by_layer: Dict[int, HardwareCost] = {}
    for key, value in by_layer_raw.items():
        by_layer[-1 if key is None else int(key)] = value

    # Critical path: per layer the slowest multiplier + slowest adder tree
    # (+ activation), then the argmax; everything chained serially.
    delay = 0.0
    for layer_index in range(len(circuit.layer_results)):
        layer_components = netlist.by_layer(layer_index)
        mult_delay = max(
            (c.cost.delay for c in layer_components if c.kind == "multiplier"),
            default=0.0,
        )
        tree_delay = max(
            (c.cost.delay for c in layer_components if c.kind == "adder_tree"),
            default=0.0,
        )
        act_delay = max(
            (c.cost.delay for c in layer_components if c.kind == "activation"),
            default=0.0,
        )
        delay += mult_delay + tree_delay + act_delay
    delay += sum(c.cost.delay for c in netlist.by_kind("argmax"))
    delay += max((c.cost.delay for c in netlist.by_kind("register")), default=0.0)

    total = HardwareCost(
        area=total_parallel.area,
        power=total_parallel.power,
        delay=delay,
        gate_counts=total_parallel.gate_counts,
    )
    return SynthesisReport(
        circuit_name=circuit.name,
        technology=circuit.technology.name,
        total=total,
        by_kind=by_kind,
        by_layer=by_layer,
        component_counts=netlist.count_by_kind(),
        n_multipliers=circuit.n_multipliers,
        n_shared_products=circuit.n_shared_products,
        metadata=dict(circuit.metadata),
    )


class _CostAccumulator:
    """Streaming equivalent of ``Netlist`` folds + ``report_from_circuit``.

    Consumes ``(kind, layer_index, cost)`` triples in component-instantiation
    order and reproduces — with the exact same float-accumulation order, so
    the results are bit-identical — the totals, per-kind/per-layer
    breakdowns, component counts and the critical-path delay that
    :func:`report_from_circuit` derives from a full netlist.
    """

    def __init__(self) -> None:
        self.area = 0.0
        self.power = 0.0
        self.gate_counts: Dict[str, int] = {}
        # per kind / per layer: [area, power, delay_max, gate_counts]
        self._by_kind: Dict[str, list] = {}
        self._by_layer: Dict[Optional[int], list] = {}
        self.counts: Dict[str, int] = {}
        # critical-path ingredients
        self._layer_kind_delay: Dict[Tuple[int, str], float] = {}
        self._argmax_delay = 0.0
        self._register_delay = 0.0

    def add(self, kind: str, layer_index: Optional[int], cost: HardwareCost) -> None:
        self.area += cost.area
        self.power += cost.power
        for cell, count in cost.gate_counts.items():
            self.gate_counts[cell] = self.gate_counts.get(cell, 0) + count

        bucket = self._by_kind.get(kind)
        if bucket is None:
            bucket = [0.0, 0.0, 0.0, {}]
            self._by_kind[kind] = bucket
        self._fold(bucket, cost)
        bucket = self._by_layer.get(layer_index)
        if bucket is None:
            bucket = [0.0, 0.0, 0.0, {}]
            self._by_layer[layer_index] = bucket
        self._fold(bucket, cost)
        self.counts[kind] = self.counts.get(kind, 0) + 1

        if layer_index is not None:
            delay_key = (layer_index, kind)
            previous = self._layer_kind_delay.get(delay_key, 0.0)
            self._layer_kind_delay[delay_key] = max(previous, cost.delay)
        elif kind == "argmax":
            self._argmax_delay += cost.delay
        elif kind == "register":
            self._register_delay = max(self._register_delay, cost.delay)

    @staticmethod
    def _fold(bucket: list, cost: HardwareCost) -> None:
        bucket[0] += cost.area
        bucket[1] += cost.power
        bucket[2] = max(bucket[2], cost.delay)
        for cell, count in cost.gate_counts.items():
            bucket[3][cell] = bucket[3].get(cell, 0) + count

    def critical_path_delay(self, n_layers: int) -> float:
        delay = 0.0
        for layer_index in range(n_layers):
            mult_delay = self._layer_kind_delay.get((layer_index, "multiplier"), 0.0)
            tree_delay = self._layer_kind_delay.get((layer_index, "adder_tree"), 0.0)
            act_delay = self._layer_kind_delay.get((layer_index, "activation"), 0.0)
            delay += mult_delay + tree_delay + act_delay
        delay += self._argmax_delay
        delay += self._register_delay
        return delay

    @staticmethod
    def _as_cost(bucket: list) -> HardwareCost:
        return HardwareCost(
            area=bucket[0], power=bucket[1], delay=bucket[2], gate_counts=bucket[3]
        )

    def by_kind(self) -> Dict[str, HardwareCost]:
        return {kind: self._as_cost(bucket) for kind, bucket in self._by_kind.items()}

    def by_layer(self) -> Dict[int, HardwareCost]:
        return {
            -1 if key is None else int(key): self._as_cost(bucket)
            for key, bucket in self._by_layer.items()
        }


def synthesize_cost_only(
    model: MLP,
    config: Optional[BespokeConfig] = None,
    tech: Optional[TechnologyLibrary] = None,
    name: str = "bespoke_mlp",
) -> SynthesisReport:
    """Synthesis report without materializing the netlist.

    Walks the exact component sequence :func:`build_bespoke_circuit` would
    instantiate — input registers, per-layer multipliers/adder trees/ReLUs,
    argmax, output registers — but streams each block's memoized
    :class:`HardwareCost` into a :class:`_CostAccumulator` instead of
    building named :class:`~repro.bespoke.netlist.CircuitComponent` objects.
    The report is bit-identical to ``report_from_circuit(build_bespoke_circuit(...))``
    (asserted by ``tests/test_perf_fastpaths.py``); use this in search inner
    loops, and the full netlist path for reports, ablation queries and
    Verilog export.
    """
    config = config if config is not None else BespokeConfig()
    tech = tech if tech is not None else egt_library()
    dense_layers = model.dense_layers
    if not dense_layers:
        raise ValueError("Cannot build a bespoke circuit for an MLP without Dense layers")
    relu_flags = _dense_relu_flags(model)

    acc = _CostAccumulator()
    current_input_bits = config.input_bits
    if config.include_io_registers:
        acc.add(
            "register",
            None,
            register_bank(dense_layers[0].n_inputs * config.input_bits, tech),
        )

    n_multipliers = 0
    n_shared_products = 0
    for layer_index, (layer, relu) in enumerate(zip(dense_layers, relu_flags)):
        weight_bits = config.bits_for_layer(layer_index, len(dense_layers))
        spec, _fmt = derive_layer_spec(
            layer, weight_bits, current_input_bits, relu, config
        )
        result = accumulate_layer_costs(
            spec, tech, lambda kind, cost: acc.add(kind, layer_index, cost)
        )
        n_multipliers += result.n_multipliers
        n_shared_products += result.n_shared_products
        current_input_bits = result.output_bits

    n_classes = dense_layers[-1].n_outputs
    index_bits = max(int(math.ceil(math.log2(n_classes))), 1)
    acc.add(
        "argmax", None, argmax_unit(n_classes, current_input_bits, index_bits, tech)
    )
    if config.include_io_registers:
        acc.add("register", None, register_bank(index_bits, tech))

    total = HardwareCost(
        area=acc.area,
        power=acc.power,
        delay=acc.critical_path_delay(len(dense_layers)),
        gate_counts=acc.gate_counts,
    )
    metadata = {
        "input_bits": config.input_bits,
        "weight_bits": [
            config.bits_for_layer(i, len(dense_layers))
            for i in range(len(dense_layers))
        ],
        "share_products": config.share_products,
        "multiplier_method": config.multiplier_method,
        "topology": model.topology(),
        "sparsity": model.sparsity(),
    }
    return SynthesisReport(
        circuit_name=name,
        technology=tech.name,
        total=total,
        by_kind=acc.by_kind(),
        by_layer=acc.by_layer(),
        component_counts=acc.counts,
        n_multipliers=n_multipliers,
        n_shared_products=n_shared_products,
        metadata=metadata,
    )


def synthesize(
    model: MLP,
    config: Optional[BespokeConfig] = None,
    tech: Optional[TechnologyLibrary] = None,
    name: str = "bespoke_mlp",
) -> SynthesisReport:
    """One-call synthesis: build the bespoke circuit and report its costs.

    Args:
        model: trained (and possibly minimized) MLP.
        config: bespoke mapping configuration; defaults to the baseline
            convention (4-bit inputs, 8-bit weights, CSD, product sharing).
        tech: technology library, defaults to the EGT printed library.
        name: design name recorded in the report.
    """
    tech = tech if tech is not None else egt_library()
    circuit = build_bespoke_circuit(model, config=config, tech=tech, name=name)
    return report_from_circuit(circuit)


def synthesize_baseline(
    model: MLP,
    input_bits: int = 4,
    weight_bits: int = 8,
    tech: Optional[TechnologyLibrary] = None,
    name: str = "baseline_mlp",
) -> SynthesisReport:
    """Synthesize the un-minimized baseline the paper normalizes against.

    The baseline is the same trained network mapped with the default
    full-precision-for-printed convention (8-bit weights, 4-bit inputs),
    without any pruning mask or clustering applied. Masks/quantizer hooks on
    the model are temporarily ignored by synthesizing a clean clone.
    """
    baseline_model = model.clone()
    for layer in baseline_model.dense_layers:
        layer.mask = None
        layer.weight_quantizer = None
        layer.bias_quantizer = None
    config = BespokeConfig(input_bits=input_bits, weight_bits=weight_bits)
    return synthesize(baseline_model, config=config, tech=tech, name=name)
