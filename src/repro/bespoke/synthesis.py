"""Synthesis driver: MLP → bespoke circuit → :class:`SynthesisReport`.

This is the module that plays the role of Synopsys Design Compiler +
PrimeTime in the original flow: it produces the area/power/delay numbers the
evaluation is based on. See ``DESIGN.md`` section 2 for the substitution
rationale.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..hardware.cost import HardwareCost
from ..hardware.technology import TechnologyLibrary, egt_library
from ..nn.network import MLP
from .circuit import BespokeCircuit, BespokeConfig, build_bespoke_circuit
from .report import SynthesisReport


def report_from_circuit(circuit: BespokeCircuit) -> SynthesisReport:
    """Compute the synthesis report of an already-built bespoke circuit.

    The critical path is estimated as the serial chain of the slowest
    multiplier, the per-layer adder trees and the argmax stage, which is
    what dominates a fully combinational bespoke MLP.
    """
    netlist = circuit.netlist
    total_parallel = netlist.total_cost()
    by_kind = netlist.cost_by_kind()
    by_layer_raw = netlist.cost_by_layer()
    by_layer: Dict[int, HardwareCost] = {}
    for key, value in by_layer_raw.items():
        by_layer[-1 if key is None else int(key)] = value

    # Critical path: per layer the slowest multiplier + slowest adder tree
    # (+ activation), then the argmax; everything chained serially.
    delay = 0.0
    for layer_index in range(len(circuit.layer_results)):
        layer_components = netlist.by_layer(layer_index)
        mult_delay = max(
            (c.cost.delay for c in layer_components if c.kind == "multiplier"),
            default=0.0,
        )
        tree_delay = max(
            (c.cost.delay for c in layer_components if c.kind == "adder_tree"),
            default=0.0,
        )
        act_delay = max(
            (c.cost.delay for c in layer_components if c.kind == "activation"),
            default=0.0,
        )
        delay += mult_delay + tree_delay + act_delay
    delay += sum(c.cost.delay for c in netlist.by_kind("argmax"))
    delay += max((c.cost.delay for c in netlist.by_kind("register")), default=0.0)

    total = HardwareCost(
        area=total_parallel.area,
        power=total_parallel.power,
        delay=delay,
        gate_counts=total_parallel.gate_counts,
    )
    return SynthesisReport(
        circuit_name=circuit.name,
        technology=circuit.technology.name,
        total=total,
        by_kind=by_kind,
        by_layer=by_layer,
        component_counts=netlist.count_by_kind(),
        n_multipliers=circuit.n_multipliers,
        n_shared_products=circuit.n_shared_products,
        metadata=dict(circuit.metadata),
    )


def synthesize(
    model: MLP,
    config: Optional[BespokeConfig] = None,
    tech: Optional[TechnologyLibrary] = None,
    name: str = "bespoke_mlp",
) -> SynthesisReport:
    """One-call synthesis: build the bespoke circuit and report its costs.

    Args:
        model: trained (and possibly minimized) MLP.
        config: bespoke mapping configuration; defaults to the baseline
            convention (4-bit inputs, 8-bit weights, CSD, product sharing).
        tech: technology library, defaults to the EGT printed library.
        name: design name recorded in the report.
    """
    tech = tech if tech is not None else egt_library()
    circuit = build_bespoke_circuit(model, config=config, tech=tech, name=name)
    return report_from_circuit(circuit)


def synthesize_baseline(
    model: MLP,
    input_bits: int = 4,
    weight_bits: int = 8,
    tech: Optional[TechnologyLibrary] = None,
    name: str = "baseline_mlp",
) -> SynthesisReport:
    """Synthesize the un-minimized baseline the paper normalizes against.

    The baseline is the same trained network mapped with the default
    full-precision-for-printed convention (8-bit weights, 4-bit inputs),
    without any pruning mask or clustering applied. Masks/quantizer hooks on
    the model are temporarily ignored by synthesizing a clean clone.
    """
    baseline_model = model.clone()
    for layer in baseline_model.dense_layers:
        layer.mask = None
        layer.weight_quantizer = None
        layer.bias_quantizer = None
    config = BespokeConfig(input_bits=input_bits, weight_bits=weight_bits)
    return synthesize(baseline_model, config=config, tech=tech, name=name)
