"""Bit-accurate fixed-point simulation of bespoke MLP circuits.

The area model in :mod:`repro.bespoke.synthesis` describes what hardware the
bespoke circuit needs; this module describes what that hardware *computes*.
The simulator executes the integer datapath exactly as the circuit would —
unsigned fixed-point inputs, hard-wired integer weights, integer bias
operands, integer adder trees, sign-gated ReLU, argmax comparator tree — so
it can be used for

* functional verification: the circuit's predictions must agree with the
  (quantized) software model it was generated from,
* accuracy evaluation of the *actual* deployed circuit rather than its
  floating-point proxy,
* datapath statistics (accumulator ranges, toggle estimates) used by the
  energy model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.backend import resolve_backend
from ..hardware.fixed_point import FixedPointFormat, derive_format
from ..nn.network import MLP
from .circuit import BespokeConfig, _dense_relu_flags


@dataclass
class FixedPointLayer:
    """The integer view of one Dense layer as hard-wired in the circuit.

    Attributes:
        weights: integer coefficient matrix ``(n_inputs, n_neurons)``.
        bias: integer bias operands (already on the product grid).
        weight_format: fixed-point format the integers were derived with.
        activation_scale: float value of one LSB of this layer's *input*.
        output_scale: float value of one LSB of this layer's *output*
            (``weight_format.scale * activation_scale``).
        relu: whether a ReLU follows the layer.
    """

    weights: np.ndarray
    bias: np.ndarray
    weight_format: FixedPointFormat
    activation_scale: float
    output_scale: float
    relu: bool

    @property
    def n_inputs(self) -> int:
        return int(self.weights.shape[0])

    @property
    def n_neurons(self) -> int:
        return int(self.weights.shape[1])


@dataclass
class SimulationTrace:
    """Datapath statistics collected during a simulation run."""

    accumulator_min: List[int] = field(default_factory=list)
    accumulator_max: List[int] = field(default_factory=list)
    accumulator_bits: List[int] = field(default_factory=list)
    n_samples: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "accumulator_min": list(self.accumulator_min),
            "accumulator_max": list(self.accumulator_max),
            "accumulator_bits": list(self.accumulator_bits),
            "n_samples": self.n_samples,
        }


class FixedPointSimulator:
    """Executes the bespoke circuit's integer datapath.

    Args:
        model: the trained (and possibly minimized) MLP the circuit was
            generated from; its ``effective_weights()`` are hard-wired.
        config: the same :class:`BespokeConfig` used for synthesis, so the
            simulated datapath and the costed datapath are identical.
    """

    def __init__(self, model: MLP, config: Optional[BespokeConfig] = None) -> None:
        self.config = config if config is not None else BespokeConfig()
        dense_layers = model.dense_layers
        if not dense_layers:
            raise ValueError("Cannot simulate an MLP without Dense layers")
        relu_flags = _dense_relu_flags(model)

        self.input_bits = self.config.input_bits
        input_levels = (1 << self.input_bits) - 1
        activation_scale = 1.0 / input_levels

        self.layers: List[FixedPointLayer] = []
        for layer_index, (layer, relu) in enumerate(zip(dense_layers, relu_flags)):
            bits = self.config.bits_for_layer(layer_index, len(dense_layers))
            effective = layer.effective_weights()
            fmt = derive_format(effective, bits)
            int_weights = fmt.to_integers(effective)
            bias = layer.effective_bias() if layer.use_bias else np.zeros(layer.n_outputs)
            output_scale = fmt.scale * activation_scale
            int_bias = np.round(bias / output_scale).astype(np.int64)
            self.layers.append(
                FixedPointLayer(
                    weights=int_weights,
                    bias=int_bias,
                    weight_format=fmt,
                    activation_scale=activation_scale,
                    output_scale=output_scale,
                    relu=relu,
                )
            )
            # The next layer consumes this layer's integer outputs directly;
            # one LSB of those outputs is worth ``output_scale``.
            activation_scale = output_scale

        self.trace = SimulationTrace()

    # -- input conversion --------------------------------------------------------

    def quantize_inputs(self, features: np.ndarray) -> np.ndarray:
        """Map features in ``[0, 1]`` to the circuit's unsigned integer levels."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        if features.size and (features.min() < -1e-9 or features.max() > 1.0 + 1e-9):
            raise ValueError("Simulator inputs must be scaled to [0, 1]")
        levels = (1 << self.input_bits) - 1
        return np.round(np.clip(features, 0.0, 1.0) * levels).astype(np.int64)

    # -- simulation -----------------------------------------------------------------

    def simulate_batch(self, features: np.ndarray, record_trace: bool = False) -> np.ndarray:
        """Vectorized integer datapath over a whole ``(n_samples, n_features)`` batch.

        This is the production path used by every accuracy evaluation: one
        integer matrix multiply per layer instead of per-sample Python loops.
        It is bit-identical to :meth:`simulate_sample` (the scalar golden
        model) — the test suite asserts exact agreement between the two.
        """
        activations = self.quantize_inputs(features)
        if activations.shape[1] != self.layers[0].n_inputs:
            raise ValueError(
                f"Expected {self.layers[0].n_inputs} features, got {activations.shape[1]}"
            )
        if record_trace:
            self.trace = SimulationTrace(n_samples=int(activations.shape[0]))
        for layer in self.layers:
            accumulators = activations @ layer.weights + layer.bias
            if record_trace:
                low = int(accumulators.min()) if accumulators.size else 0
                high = int(accumulators.max()) if accumulators.size else 0
                self.trace.accumulator_min.append(low)
                self.trace.accumulator_max.append(high)
                self.trace.accumulator_bits.append(
                    max(int(abs(low)).bit_length(), int(abs(high)).bit_length()) + 1
                )
            if layer.relu:
                accumulators = np.maximum(accumulators, 0)
            activations = accumulators
        return activations

    def simulate_sample(self, sample: np.ndarray) -> List[int]:
        """Scalar golden model: one sample through explicit per-neuron loops.

        Mirrors the circuit structure operation by operation — one Python
        integer multiply-accumulate per hard-wired weight, arbitrary
        precision so no accumulator can silently wrap. Used to validate the
        vectorized batch path, never in the evaluation hot loop.
        """
        levels = [int(v) for v in self.quantize_inputs(np.asarray(sample).reshape(1, -1))[0]]
        if len(levels) != self.layers[0].n_inputs:
            raise ValueError(
                f"Expected {self.layers[0].n_inputs} features, got {len(levels)}"
            )
        for layer in self.layers:
            outputs: List[int] = []
            for neuron in range(layer.n_neurons):
                accumulator = int(layer.bias[neuron])
                for position in range(layer.n_inputs):
                    accumulator += levels[position] * int(layer.weights[position, neuron])
                if layer.relu and accumulator < 0:
                    accumulator = 0
                outputs.append(accumulator)
            levels = outputs
        return levels

    def forward_integer(self, features: np.ndarray, record_trace: bool = False) -> np.ndarray:
        """Run the integer datapath; returns the final-layer integer scores."""
        return self.simulate_batch(features, record_trace=record_trace)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted class indices of the circuit (argmax comparator tree)."""
        return np.argmax(self.forward_integer(features), axis=1)

    def predict_scores(self, features: np.ndarray) -> np.ndarray:
        """Final-layer scores re-expressed in float (integer x output LSB)."""
        scores = self.forward_integer(features).astype(np.float64)
        return scores * self.layers[-1].output_scale

    def evaluate_accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy of the simulated circuit."""
        labels = np.asarray(labels).reshape(-1).astype(int)
        return float(np.mean(self.predict(features) == labels))

    # -- verification -----------------------------------------------------------------

    def agreement_with_model(self, model: MLP, features: np.ndarray) -> float:
        """Fraction of samples where circuit and software model predict the same class.

        The comparison is meaningful when ``model`` is the network the
        simulator was built from (the integer datapath is then an exact
        rescaling of the float one, up to bias rounding).
        """
        circuit_predictions = self.predict(features)
        model_predictions = model.predict(np.asarray(features, dtype=np.float64))
        return float(np.mean(circuit_predictions == model_predictions))

    def datapath_report(self, features: np.ndarray) -> Dict[str, object]:
        """Accumulator-range statistics for a representative input set."""
        self.forward_integer(features, record_trace=True)
        report = self.trace.as_dict()
        report["configured_weight_bits"] = [
            self.config.bits_for_layer(i, len(self.layers)) for i in range(len(self.layers))
        ]
        report["input_bits"] = self.input_bits
        return report


def validate_population(simulators: Sequence["FixedPointSimulator"]) -> None:
    """Check that a population of simulators can be batched along a new axis.

    All simulators must share input bit-width, layer shapes and ReLU flags
    (guaranteed when they were built from same-topology models, as in the
    population evaluation engine); only the integer coefficients may
    differ. Shared by :func:`simulate_population` and the Monte-Carlo
    population kernel in :mod:`repro.reliability.monte_carlo`, so the two
    batched paths can never drift apart on what counts as compatible.
    """
    if not simulators:
        raise ValueError("Cannot simulate an empty population")
    first = simulators[0]
    for simulator in simulators[1:]:
        if simulator.input_bits != first.input_bits:
            raise ValueError("Population simulators disagree on input_bits")
        if len(simulator.layers) != len(first.layers):
            raise ValueError("Population simulators disagree on layer count")
        for layer, reference in zip(simulator.layers, first.layers):
            if layer.weights.shape != reference.weights.shape:
                raise ValueError("Population simulators disagree on layer shapes")
            if layer.relu != reference.relu:
                raise ValueError("Population simulators disagree on ReLU placement")


def simulate_population(
    simulators: Sequence["FixedPointSimulator"],
    features: np.ndarray,
    backend=None,
) -> np.ndarray:
    """Population-axis extension of :meth:`FixedPointSimulator.simulate_batch`.

    Stacks the hard-wired integer weights of G same-architecture simulators
    into ``(G, n_inputs, n_neurons)`` tensors and pushes the whole input
    batch through every circuit with one batched integer matmul per layer:
    ``(G, n_samples, n_outputs)`` integer scores, where slice ``g`` is
    *exactly* ``simulators[g].simulate_batch(features)`` — the datapath is
    pure int64 arithmetic, so batching cannot change a single bit (on any
    backend: integer matmul is exact everywhere, see ``docs/backends.md``).

    All simulators must share input bit-width, layer shapes and ReLU flags
    (see :func:`validate_population`); only the integer coefficients may
    differ. ``backend`` names the array backend (``None`` = resolve via
    :func:`repro.core.backend.resolve_backend`).
    """
    validate_population(simulators)
    ops = resolve_backend(backend)
    first = simulators[0]
    activations = first.quantize_inputs(features)
    if activations.shape[1] != first.layers[0].n_inputs:
        raise ValueError(
            f"Expected {first.layers[0].n_inputs} features, got {activations.shape[1]}"
        )
    out: np.ndarray = activations
    for layer_index in range(len(first.layers)):
        weights = np.stack(
            [simulator.layers[layer_index].weights for simulator in simulators]
        )
        bias = np.stack(
            [simulator.layers[layer_index].bias for simulator in simulators]
        )
        accumulators = ops.matmul(out, weights) + bias[:, None, :]
        if first.layers[layer_index].relu:
            accumulators = np.maximum(accumulators, 0)
        out = accumulators
    return out


def population_accuracy(
    simulators: Sequence["FixedPointSimulator"],
    features: np.ndarray,
    labels: np.ndarray,
    backend=None,
) -> np.ndarray:
    """Top-1 accuracy of every circuit of a population in one batched pass.

    Returns a ``(G,)`` float vector; entry ``g`` equals
    ``simulators[g].evaluate_accuracy(features, labels)`` exactly (scores
    are integers and every backend's argmax uses the first-occurrence tie
    rule).
    """
    ops = resolve_backend(backend)
    labels = np.asarray(labels).reshape(-1).astype(int)
    scores = simulate_population(simulators, features, backend=ops)
    predictions = ops.argmax(scores)
    return (predictions == labels).mean(axis=-1)


def verify_circuit(
    model: MLP,
    features: np.ndarray,
    config: Optional[BespokeConfig] = None,
    min_agreement: float = 0.98,
) -> Dict[str, object]:
    """One-call functional verification of the bespoke mapping.

    Builds the simulator from ``model`` + ``config``, compares its
    predictions against the software model on ``features`` and returns a
    verdict dictionary. Raises no exception — callers (and the test suite)
    decide what agreement level they require.
    """
    simulator = FixedPointSimulator(model, config)
    agreement = simulator.agreement_with_model(model, features)
    return {
        "agreement": agreement,
        "passed": agreement >= min_agreement,
        "n_samples": int(np.asarray(features).shape[0]),
        "min_agreement": min_agreement,
    }
