"""Synthesis reports for bespoke MLP circuits.

A :class:`SynthesisReport` is the analytical equivalent of the area/power
numbers the paper obtains from Synopsys Design Compiler and PrimeTime on the
EGT library: total area, power, critical-path delay, plus breakdowns by block
kind and by layer. Reports can be normalized against a baseline report,
which is how every figure in the paper (and in ``EXPERIMENTS.md``) presents
its results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..hardware.cost import HardwareCost


@dataclass(frozen=True)
class SynthesisReport:
    """Area / power / delay summary of one synthesized bespoke MLP.

    Attributes:
        circuit_name: identifier of the synthesized design.
        technology: technology library name (e.g. ``"EGT"``).
        total: full-circuit cost.
        by_kind: cost per component kind (multiplier / adder_tree / ...).
        by_layer: cost per Dense layer index (``-1`` groups global blocks).
        component_counts: number of instances per kind.
        n_multipliers: total constant multipliers instantiated.
        n_shared_products: products saved by multiplier sharing.
        metadata: configuration echoes (bit-widths, sharing, method...).
    """

    circuit_name: str
    technology: str
    total: HardwareCost
    by_kind: Dict[str, HardwareCost] = field(default_factory=dict)
    by_layer: Dict[int, HardwareCost] = field(default_factory=dict)
    component_counts: Dict[str, int] = field(default_factory=dict)
    n_multipliers: int = 0
    n_shared_products: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    # -- headline numbers --------------------------------------------------------

    @property
    def area(self) -> float:
        """Total area in mm²."""
        return self.total.area

    @property
    def power(self) -> float:
        """Total power in µW."""
        return self.total.power

    @property
    def delay(self) -> float:
        """Critical-path delay in µs."""
        return self.total.delay

    @property
    def total_gates(self) -> int:
        return self.total.total_gates

    # -- normalization -------------------------------------------------------------

    def normalized_area(self, baseline: "SynthesisReport") -> float:
        """Area relative to a baseline report (the paper's y-axis)."""
        if baseline.area <= 0:
            raise ValueError("Baseline area must be positive for normalization")
        return self.area / baseline.area

    def area_gain(self, baseline: "SynthesisReport") -> float:
        """Area reduction factor w.r.t. the baseline (``baseline / self``)."""
        if self.area <= 0:
            raise ValueError("Cannot compute area gain of a zero-area design")
        return baseline.area / self.area

    def normalized_power(self, baseline: "SynthesisReport") -> float:
        """Power relative to a baseline report."""
        if baseline.power <= 0:
            raise ValueError("Baseline power must be positive for normalization")
        return self.power / baseline.power

    # -- presentation -----------------------------------------------------------------

    def area_breakdown(self) -> Dict[str, float]:
        """Fraction of total area per component kind."""
        if self.area <= 0:
            return {kind: 0.0 for kind in self.by_kind}
        return {kind: cost.area / self.area for kind, cost in self.by_kind.items()}

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable summary (used by examples and EXPERIMENTS.md)."""
        return {
            "circuit_name": self.circuit_name,
            "technology": self.technology,
            "area_mm2": self.area,
            "power_uw": self.power,
            "delay_us": self.delay,
            "total_gates": self.total_gates,
            "n_multipliers": self.n_multipliers,
            "n_shared_products": self.n_shared_products,
            "area_by_kind": {k: v.area for k, v in self.by_kind.items()},
            "component_counts": dict(self.component_counts),
            "metadata": dict(self.metadata),
        }

    def format_summary(self, baseline: Optional["SynthesisReport"] = None) -> str:
        """Human-readable multi-line summary, DC-report style."""
        lines = [
            f"Design            : {self.circuit_name}",
            f"Technology        : {self.technology}",
            f"Total area        : {self.area:.4f} mm^2",
            f"Total power       : {self.power:.4f} uW",
            f"Critical path     : {self.delay:.1f} us",
            f"Standard cells    : {self.total_gates}",
            f"Constant mults    : {self.n_multipliers} "
            f"({self.n_shared_products} products shared)",
        ]
        for kind, fraction in sorted(self.area_breakdown().items()):
            lines.append(f"  area[{kind:<10}] : {fraction * 100:5.1f} %")
        if baseline is not None:
            lines.append(
                f"Normalized area   : {self.normalized_area(baseline):.3f} "
                f"(gain {self.area_gain(baseline):.2f}x)"
            )
        return "\n".join(lines)
