"""Dataset registry and per-dataset classifier specifications.

The registry maps the dataset names used throughout the paper ("WhiteWine",
"RedWine", "Pendigits", "Seeds") to their loaders and to the MLP topology and
training hyper-parameters used for the bespoke baseline of each classifier
(one hidden layer, as in Mubarik et al., MICRO 2020).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

from .base import Dataset
from .uci import load_pendigits, load_redwine, load_seeds, load_whitewine


@dataclass(frozen=True)
class ClassifierSpec:
    """Baseline-classifier recipe for one dataset.

    Attributes:
        dataset_name: registry key of the dataset.
        hidden_layers: hidden-layer widths of the baseline MLP.
        epochs: training epochs for the float baseline.
        learning_rate: Adam learning rate for the float baseline.
        batch_size: mini-batch size.
        input_bits: unsigned bit-width of the circuit inputs.
        baseline_weight_bits: weight bit-width of the un-minimized bespoke
            baseline the paper normalizes against.
        finetune_epochs: epochs used for QAT / pruning / clustering
            fine-tuning passes during the sweeps and the GA.
    """

    dataset_name: str
    hidden_layers: Tuple[int, ...]
    epochs: int = 120
    learning_rate: float = 0.01
    batch_size: int = 32
    input_bits: int = 4
    baseline_weight_bits: int = 8
    finetune_epochs: int = 15
    extra: Dict[str, object] = field(default_factory=dict)


_LOADERS: Dict[str, Callable[..., Dataset]] = {
    "whitewine": load_whitewine,
    "redwine": load_redwine,
    "pendigits": load_pendigits,
    "seeds": load_seeds,
}

_CLASSIFIER_SPECS: Dict[str, ClassifierSpec] = {
    "whitewine": ClassifierSpec("whitewine", hidden_layers=(8,), epochs=120),
    "redwine": ClassifierSpec("redwine", hidden_layers=(8,), epochs=120),
    "pendigits": ClassifierSpec(
        "pendigits", hidden_layers=(10,), epochs=100, batch_size=64
    ),
    "seeds": ClassifierSpec("seeds", hidden_layers=(4,), epochs=150, batch_size=16),
}

#: The four evaluation datasets of the paper, in Figure-1 order.
PAPER_DATASETS: Tuple[str, ...] = ("whitewine", "redwine", "pendigits", "seeds")


def available_datasets() -> Tuple[str, ...]:
    """Names accepted by :func:`load_dataset`."""
    return tuple(sorted(_LOADERS))


def normalize_name(name: str) -> str:
    """Canonical lower-case key for a dataset name (accepts paper spellings)."""
    key = name.strip().lower().replace(" ", "").replace("-", "").replace("_", "")
    aliases = {
        "whitewine": "whitewine",
        "winequalitywhite": "whitewine",
        "redwine": "redwine",
        "winequalityred": "redwine",
        "pendigits": "pendigits",
        "pendigit": "pendigits",
        "seeds": "seeds",
        "seed": "seeds",
    }
    if key in aliases:
        return aliases[key]
    if key in _LOADERS:
        return key
    raise KeyError(f"Unknown dataset '{name}'. Available: {available_datasets()}")


def load_dataset(
    name: str, seed: Optional[int] = None, n_samples: Optional[int] = None
) -> Dataset:
    """Load a dataset by name.

    Args:
        name: one of :func:`available_datasets` (case/format-insensitive).
        seed: override the loader's default seed (keeps defaults when None).
        n_samples: override the default sample count.
    """
    key = normalize_name(name)
    loader = _LOADERS[key]
    kwargs: Dict[str, object] = {}
    if seed is not None:
        kwargs["seed"] = seed
    if n_samples is not None:
        kwargs["n_samples"] = n_samples
    return loader(**kwargs)


def resolve_dataset_names(names: Union[str, Sequence[str], None]) -> Tuple[str, ...]:
    """Expand a dataset selection into canonical names, preserving order.

    Accepts a single name, a sequence of names, or the wildcard ``"all"``
    (also ``None``), which expands to :data:`PAPER_DATASETS`. Names are
    normalized through :func:`normalize_name` (so paper spellings work) and
    de-duplicated; unknown names raise ``KeyError``. This is the one place
    the CLI and the campaign layer share for turning user dataset
    selections into loader keys.
    """
    if names is None:
        return tuple(PAPER_DATASETS)
    if isinstance(names, str):
        names = [names]
    resolved = []
    for name in names:
        if isinstance(name, str) and name.strip().lower() == "all":
            candidates = list(PAPER_DATASETS)
        else:
            candidates = [normalize_name(name)]
        for key in candidates:
            if key not in resolved:
                resolved.append(key)
    if not resolved:
        raise ValueError("Dataset selection is empty")
    return tuple(resolved)


def get_classifier_spec(name: str) -> ClassifierSpec:
    """Baseline MLP recipe for a dataset (topology, training, bit-widths)."""
    return _CLASSIFIER_SPECS[normalize_name(name)]


def register_dataset(
    name: str, loader: Callable[..., Dataset], spec: ClassifierSpec
) -> None:
    """Register a custom dataset + classifier spec (for user extensions).

    The name is stored in the same canonical form :func:`normalize_name`
    produces (lower-case, separators stripped), so lookups accept the same
    spelling variations as the built-in datasets.

    Raises:
        ValueError: if the name collides with an existing registration.
    """
    key = name.strip().lower().replace(" ", "").replace("-", "").replace("_", "")
    if key in _LOADERS:
        raise ValueError(f"Dataset '{name}' is already registered")
    _LOADERS[key] = loader
    _CLASSIFIER_SPECS[key] = spec
