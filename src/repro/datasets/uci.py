"""Synthetic stand-ins for the four UCI datasets used in the paper.

The paper evaluates on WhiteWine, RedWine, Pendigits and Seeds from the UCI
ML repository. Those files cannot be downloaded in this environment, so each
loader below generates a synthetic dataset matching the real dataset's

* dimensionality and number of classes,
* approximate sample count and class balance (the wine-quality datasets are
  heavily imbalanced and ordinal; Pendigits and Seeds are balanced),
* approximate difficulty: the generator parameters are calibrated so a small
  MLP reaches roughly the accuracy reported for the real data by the printed
  classifier literature (wine ≈ 0.55–0.62, Pendigits ≈ 0.93–0.96,
  Seeds ≈ 0.88–0.93).

Every loader is deterministic given its seed; the experiment pipeline passes
fixed seeds so that Figure/Table reproductions are repeatable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import Dataset
from .synthetic import GaussianClassSpec, SyntheticSpec, generate_gaussian_mixture

#: Physico-chemical feature names shared by both wine datasets.
_WINE_FEATURES = (
    "fixed_acidity",
    "volatile_acidity",
    "citric_acid",
    "residual_sugar",
    "chlorides",
    "free_sulfur_dioxide",
    "total_sulfur_dioxide",
    "density",
    "pH",
    "sulphates",
    "alcohol",
)


def load_whitewine(n_samples: int = 2400, seed: Optional[int] = 11) -> Dataset:
    """WhiteWine quality stand-in: 11 features, 7 ordinal quality classes.

    The real dataset has 4898 samples with qualities 3–9 and a strong
    concentration on the middle grades; the default ``n_samples`` is reduced
    to keep NumPy training times short while preserving the class balance.
    """
    # Class weights follow the real quality histogram (3..9):
    # 20, 163, 1457, 2198, 880, 175, 5  ->  normalized below.
    weights = [0.004, 0.033, 0.298, 0.449, 0.180, 0.035, 0.001]
    spec = SyntheticSpec(
        n_samples=n_samples,
        n_features=11,
        class_specs=[
            GaussianClassSpec(weight=w, n_clusters=2, spread=1.35) for w in weights
        ],
        class_separation=1.5,
        label_noise=0.30,
        feature_correlation=0.45,
        ordinal_classes=True,
        seed=seed,
        name="whitewine",
        feature_names=_WINE_FEATURES,
        class_names=tuple(f"quality_{q}" for q in range(3, 10)),
    )
    return generate_gaussian_mixture(spec)


def load_redwine(n_samples: int = 1599, seed: Optional[int] = 17) -> Dataset:
    """RedWine quality stand-in: 11 features, 6 ordinal quality classes."""
    # Real histogram (qualities 3..8): 10, 53, 681, 638, 199, 18.
    weights = [0.006, 0.033, 0.426, 0.399, 0.124, 0.011]
    spec = SyntheticSpec(
        n_samples=n_samples,
        n_features=11,
        class_specs=[
            GaussianClassSpec(weight=w, n_clusters=2, spread=1.3) for w in weights
        ],
        class_separation=1.6,
        label_noise=0.28,
        feature_correlation=0.45,
        ordinal_classes=True,
        seed=seed,
        name="redwine",
        feature_names=_WINE_FEATURES,
        class_names=tuple(f"quality_{q}" for q in range(3, 9)),
    )
    return generate_gaussian_mixture(spec)


def load_pendigits(n_samples: int = 3000, seed: Optional[int] = 23) -> Dataset:
    """Pendigits stand-in: 16 resampled pen-trajectory coordinates, 10 digits.

    The real dataset (10992 samples) is nearly balanced and well separable;
    the generator uses distinct, weakly overlapping clusters per digit so a
    16-8-10 MLP reaches the mid-90 % accuracy regime.
    """
    spec = SyntheticSpec(
        n_samples=n_samples,
        n_features=16,
        class_specs=[
            GaussianClassSpec(weight=1.0, n_clusters=2, spread=0.9) for _ in range(10)
        ],
        class_separation=3.3,
        label_noise=0.02,
        feature_correlation=0.25,
        ordinal_classes=False,
        seed=seed,
        name="pendigits",
        feature_names=tuple(
            f"{axis}{i}" for i in range(1, 9) for axis in ("x", "y")
        ),
        class_names=tuple(f"digit_{d}" for d in range(10)),
    )
    return generate_gaussian_mixture(spec)


def load_seeds(n_samples: int = 210, seed: Optional[int] = 31) -> Dataset:
    """Seeds stand-in: 7 geometric kernel measurements, 3 balanced wheat varieties."""
    spec = SyntheticSpec(
        n_samples=n_samples,
        n_features=7,
        class_specs=[
            GaussianClassSpec(weight=1.0, n_clusters=1, spread=1.0) for _ in range(3)
        ],
        class_separation=3.6,
        label_noise=0.04,
        feature_correlation=0.5,
        ordinal_classes=False,
        seed=seed,
        name="seeds",
        feature_names=(
            "area",
            "perimeter",
            "compactness",
            "kernel_length",
            "kernel_width",
            "asymmetry",
            "groove_length",
        ),
        class_names=("kama", "rosa", "canadian"),
    )
    return generate_gaussian_mixture(spec)


def dataset_statistics(dataset: Dataset) -> dict:
    """Summary statistics used by the experiment reports and tests."""
    return {
        "name": dataset.name,
        "n_samples": dataset.n_samples,
        "n_features": dataset.n_features,
        "n_classes": dataset.n_classes,
        "class_balance": dataset.class_balance().tolist(),
        "feature_mean": float(np.mean(dataset.features)),
        "feature_std": float(np.std(dataset.features)),
    }
