"""Feature preprocessing for bespoke fixed-point inference.

Printed bespoke MLPs receive their inputs from printed ADCs/sensors as small
unsigned integers, so features are min-max scaled to ``[0, 1]`` and then
uniformly quantized to the input bit-width (4 bits by default, following the
printed-classifier literature). The scalers here are fitted on training data
only and applied consistently to validation/test data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .base import DataSplit, Dataset


class MinMaxScaler:
    """Scales features column-wise to ``[0, 1]`` based on fitted ranges."""

    def __init__(self) -> None:
        self.minimum: Optional[np.ndarray] = None
        self.maximum: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "MinMaxScaler":
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("MinMaxScaler expects a 2-D feature matrix")
        self.minimum = features.min(axis=0)
        self.maximum = features.max(axis=0)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.minimum is None or self.maximum is None:
            raise RuntimeError("MinMaxScaler must be fitted before transform()")
        features = np.asarray(features, dtype=np.float64)
        span = self.maximum - self.minimum
        span = np.where(span == 0.0, 1.0, span)
        return np.clip((features - self.minimum) / span, 0.0, 1.0)

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)


class StandardScaler:
    """Zero-mean unit-variance scaling (used only for float training studies)."""

    def __init__(self) -> None:
        self.mean: Optional[np.ndarray] = None
        self.std: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("StandardScaler expects a 2-D feature matrix")
        self.mean = features.mean(axis=0)
        self.std = features.std(axis=0)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean is None or self.std is None:
            raise RuntimeError("StandardScaler must be fitted before transform()")
        features = np.asarray(features, dtype=np.float64)
        std = np.where(self.std == 0.0, 1.0, self.std)
        return (features - self.mean) / std

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)


def quantize_inputs(features: np.ndarray, bits: int = 4) -> np.ndarray:
    """Quantize features in ``[0, 1]`` to ``bits``-bit unsigned levels.

    Returns float values on the grid ``{0, 1, ..., 2^bits - 1} / (2^bits - 1)``
    so they can be fed to the float model while exactly matching what the
    bespoke circuit's integer datapath would see.
    """
    if bits < 1:
        raise ValueError(f"Input bit-width must be >= 1, got {bits}")
    features = np.asarray(features, dtype=np.float64)
    if features.size and (features.min() < -1e-9 or features.max() > 1.0 + 1e-9):
        raise ValueError("quantize_inputs expects features scaled to [0, 1]")
    levels = (1 << bits) - 1
    return np.round(np.clip(features, 0.0, 1.0) * levels) / levels


def one_hot(labels: np.ndarray, n_classes: Optional[int] = None) -> np.ndarray:
    """One-hot encode integer labels."""
    labels = np.asarray(labels).reshape(-1).astype(int)
    if n_classes is None:
        n_classes = int(labels.max()) + 1 if labels.size else 0
    out = np.zeros((labels.size, n_classes), dtype=np.float64)
    if labels.size:
        out[np.arange(labels.size), labels] = 1.0
    return out


@dataclass
class PreparedData:
    """A split whose features are scaled (and optionally input-quantized)."""

    split: DataSplit
    scaler: MinMaxScaler
    input_bits: Optional[int]

    @property
    def train(self) -> Dataset:
        return self.split.train

    @property
    def validation(self) -> Dataset:
        return self.split.validation

    @property
    def test(self) -> Dataset:
        return self.split.test


def prepare_split(split: DataSplit, input_bits: Optional[int] = 4) -> PreparedData:
    """Min-max scale a split (fit on train only) and quantize the inputs.

    Args:
        split: raw train/validation/test split.
        input_bits: unsigned input bit-width; ``None`` skips input
            quantization (pure float features).
    """
    scaler = MinMaxScaler().fit(split.train.features)

    def _prepare(dataset: Dataset) -> Dataset:
        scaled = scaler.transform(dataset.features)
        if input_bits is not None:
            scaled = quantize_inputs(scaled, bits=input_bits)
        return dataset.with_features(scaled)

    prepared = DataSplit(
        train=_prepare(split.train),
        validation=_prepare(split.validation),
        test=_prepare(split.test),
    )
    return PreparedData(split=prepared, scaler=scaler, input_bits=input_bits)
