"""Dataset container and splitting utilities.

A :class:`Dataset` is an immutable bundle of feature matrix, integer labels
and metadata. All experiment code consumes datasets through this interface,
so the synthetic UCI stand-ins and any user-provided data behave identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class Dataset:
    """An immutable classification dataset.

    Attributes:
        features: ``(n_samples, n_features)`` float matrix.
        labels: ``(n_samples,)`` integer class labels in ``[0, n_classes)``.
        name: short identifier (e.g. ``"whitewine"``).
        feature_names: optional column names.
        class_names: optional class names.
        metadata: free-form description of provenance / generator settings.
    """

    features: np.ndarray
    labels: np.ndarray
    name: str = "dataset"
    feature_names: Tuple[str, ...] = ()
    class_names: Tuple[str, ...] = ()
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        features = np.asarray(self.features, dtype=np.float64)
        labels = np.asarray(self.labels).reshape(-1).astype(int)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {features.shape}")
        if features.shape[0] != labels.shape[0]:
            raise ValueError(
                f"features has {features.shape[0]} rows but labels has {labels.shape[0]}"
            )
        if labels.size and labels.min() < 0:
            raise ValueError("labels must be non-negative integers")
        object.__setattr__(self, "features", features)
        object.__setattr__(self, "labels", labels)

    # -- basic properties -------------------------------------------------------

    @property
    def n_samples(self) -> int:
        return int(self.features.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.features.shape[1])

    @property
    def n_classes(self) -> int:
        return int(self.labels.max()) + 1 if self.labels.size else 0

    def class_counts(self) -> np.ndarray:
        """Number of samples of each class (length ``n_classes``)."""
        return np.bincount(self.labels, minlength=self.n_classes)

    def class_balance(self) -> np.ndarray:
        """Relative class frequencies (sums to 1)."""
        counts = self.class_counts().astype(np.float64)
        return counts / counts.sum() if counts.sum() > 0 else counts

    # -- transformations --------------------------------------------------------

    def subset(self, indices: np.ndarray) -> "Dataset":
        """Return a new dataset restricted to ``indices`` (order preserved)."""
        indices = np.asarray(indices, dtype=int)
        return Dataset(
            features=self.features[indices],
            labels=self.labels[indices],
            name=self.name,
            feature_names=self.feature_names,
            class_names=self.class_names,
            metadata=dict(self.metadata),
        )

    def with_features(self, features: np.ndarray) -> "Dataset":
        """Return a copy with replaced feature matrix (same labels/metadata)."""
        return Dataset(
            features=features,
            labels=self.labels,
            name=self.name,
            feature_names=self.feature_names,
            class_names=self.class_names,
            metadata=dict(self.metadata),
        )

    def __len__(self) -> int:
        return self.n_samples


@dataclass(frozen=True)
class DataSplit:
    """A train/validation/test split of one dataset."""

    train: Dataset
    validation: Dataset
    test: Dataset

    @property
    def name(self) -> str:
        return self.train.name

    @property
    def n_features(self) -> int:
        return self.train.n_features

    @property
    def n_classes(self) -> int:
        return max(self.train.n_classes, self.validation.n_classes, self.test.n_classes)


def train_test_split(
    dataset: Dataset,
    test_fraction: float = 0.3,
    seed: Optional[int] = None,
    stratify: bool = True,
) -> Tuple[Dataset, Dataset]:
    """Split into train and test subsets.

    Args:
        test_fraction: fraction of samples assigned to the test set.
        seed: RNG seed for the permutation.
        stratify: keep per-class proportions approximately equal in both
            subsets (recommended for the heavily imbalanced wine datasets).
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    n = dataset.n_samples
    if stratify:
        test_indices = []
        train_indices = []
        for cls in range(dataset.n_classes):
            cls_idx = np.flatnonzero(dataset.labels == cls)
            rng.shuffle(cls_idx)
            n_test = int(round(len(cls_idx) * test_fraction))
            # keep at least one sample of every represented class on each side
            if len(cls_idx) >= 2:
                n_test = min(max(n_test, 1), len(cls_idx) - 1)
            test_indices.append(cls_idx[:n_test])
            train_indices.append(cls_idx[n_test:])
        test_idx = np.concatenate(test_indices) if test_indices else np.array([], dtype=int)
        train_idx = np.concatenate(train_indices) if train_indices else np.array([], dtype=int)
        rng.shuffle(test_idx)
        rng.shuffle(train_idx)
    else:
        order = rng.permutation(n)
        n_test = int(round(n * test_fraction))
        test_idx, train_idx = order[:n_test], order[n_test:]
    return dataset.subset(train_idx), dataset.subset(test_idx)


def train_val_test_split(
    dataset: Dataset,
    val_fraction: float = 0.15,
    test_fraction: float = 0.25,
    seed: Optional[int] = None,
    stratify: bool = True,
) -> DataSplit:
    """Three-way split used by every experiment (train / validation / test)."""
    if val_fraction + test_fraction >= 1.0:
        raise ValueError("val_fraction + test_fraction must be < 1")
    trainval, test = train_test_split(
        dataset, test_fraction=test_fraction, seed=seed, stratify=stratify
    )
    relative_val = val_fraction / (1.0 - test_fraction)
    train, val = train_test_split(
        trainval,
        test_fraction=relative_val,
        seed=None if seed is None else seed + 1,
        stratify=stratify,
    )
    return DataSplit(train=train, validation=val, test=test)
