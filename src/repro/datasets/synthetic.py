"""Synthetic classification-data generators.

The reproduction has no network access, so the UCI datasets the paper uses
are replaced by deterministic synthetic generators (see ``DESIGN.md``
section 2). Each generator draws class-conditional Gaussian clusters whose
separation, covariance structure, and class imbalance are tuned so a small
MLP reaches approximately the accuracy reported for the real dataset in the
printed-classifier literature. The minimization results only depend on those
aggregate properties, not on the identity of individual samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from .base import Dataset


@dataclass
class GaussianClassSpec:
    """Specification of one class in a Gaussian-mixture dataset.

    Attributes:
        weight: relative class frequency (normalized across classes).
        n_clusters: number of Gaussian clusters composing the class.
        spread: per-feature standard deviation of each cluster.
    """

    weight: float = 1.0
    n_clusters: int = 1
    spread: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"class weight must be positive, got {self.weight}")
        if self.n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {self.n_clusters}")
        if self.spread <= 0:
            raise ValueError(f"spread must be positive, got {self.spread}")


@dataclass
class SyntheticSpec:
    """Full specification of a synthetic Gaussian-mixture dataset.

    Attributes:
        n_samples: total sample count.
        n_features: feature dimensionality.
        class_specs: one :class:`GaussianClassSpec` per class.
        class_separation: distance scale between class centroids; larger
            values give an easier (more accurate) problem.
        label_noise: fraction of samples whose label is replaced by a random
            other class, used to cap the achievable accuracy (the wine
            datasets are intrinsically noisy in exactly this way).
        feature_correlation: amount of shared latent structure between
            features (0 = independent features, 1 = strongly correlated).
        ordinal_classes: when True, centroids are laid out along a dominant
            direction so adjacent classes overlap most — mimicking ordinal
            targets such as wine-quality scores.
        seed: generator seed.
        name: dataset name recorded in the produced :class:`Dataset`.
    """

    n_samples: int
    n_features: int
    class_specs: Sequence[GaussianClassSpec]
    class_separation: float = 3.0
    label_noise: float = 0.0
    feature_correlation: float = 0.3
    ordinal_classes: bool = False
    seed: Optional[int] = None
    name: str = "synthetic"
    feature_names: Tuple[str, ...] = field(default_factory=tuple)
    class_names: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.n_samples < len(self.class_specs):
            raise ValueError("n_samples must be at least the number of classes")
        if self.n_features < 1:
            raise ValueError("n_features must be >= 1")
        if len(self.class_specs) < 2:
            raise ValueError("at least two classes are required")
        if not 0.0 <= self.label_noise < 1.0:
            raise ValueError("label_noise must be in [0, 1)")
        if not 0.0 <= self.feature_correlation <= 1.0:
            raise ValueError("feature_correlation must be in [0, 1]")

    @property
    def n_classes(self) -> int:
        return len(self.class_specs)


def _class_centroids(spec: SyntheticSpec, rng: np.random.Generator) -> np.ndarray:
    """Draw one centroid per class, separated by ``class_separation``."""
    n_classes, n_features = spec.n_classes, spec.n_features
    if spec.ordinal_classes:
        # Centroids advance along a shared random direction, plus a small
        # per-class offset: class k overlaps mostly with classes k-1 / k+1.
        direction = rng.normal(size=n_features)
        direction /= np.linalg.norm(direction)
        offsets = rng.normal(scale=0.35 * spec.class_separation, size=(n_classes, n_features))
        steps = np.arange(n_classes, dtype=np.float64).reshape(-1, 1)
        return steps * spec.class_separation * direction + offsets
    centroids = rng.normal(size=(n_classes, n_features))
    norms = np.linalg.norm(centroids, axis=1, keepdims=True)
    norms = np.where(norms == 0.0, 1.0, norms)
    return spec.class_separation * centroids / norms * np.sqrt(n_features) / 2.0


def _correlation_mixing(spec: SyntheticSpec, rng: np.random.Generator) -> np.ndarray:
    """Mixing matrix introducing correlation between features."""
    identity = np.eye(spec.n_features)
    if spec.feature_correlation == 0.0:
        return identity
    random_basis = rng.normal(size=(spec.n_features, spec.n_features))
    random_basis /= np.linalg.norm(random_basis, axis=0, keepdims=True)
    return (1.0 - spec.feature_correlation) * identity + spec.feature_correlation * random_basis


def generate_gaussian_mixture(spec: SyntheticSpec) -> Dataset:
    """Generate a dataset from a :class:`SyntheticSpec`.

    The same spec (including seed) always produces the identical dataset,
    which is what makes the experiment pipeline reproducible end-to-end.
    """
    rng = np.random.default_rng(spec.seed)
    centroids = _class_centroids(spec, rng)
    mixing = _correlation_mixing(spec, rng)

    weights = np.array([cs.weight for cs in spec.class_specs], dtype=np.float64)
    weights /= weights.sum()
    counts = np.floor(weights * spec.n_samples).astype(int)
    counts = np.maximum(counts, 1)
    # distribute the rounding remainder to the largest classes
    while counts.sum() < spec.n_samples:
        counts[int(np.argmax(weights))] += 1
    while counts.sum() > spec.n_samples:
        counts[int(np.argmax(counts))] -= 1

    feature_blocks = []
    label_blocks = []
    for cls, (class_spec, count) in enumerate(zip(spec.class_specs, counts)):
        cluster_offsets = rng.normal(
            scale=0.6 * spec.class_separation,
            size=(class_spec.n_clusters, spec.n_features),
        )
        assignments = rng.integers(0, class_spec.n_clusters, size=count)
        noise = rng.normal(scale=class_spec.spread, size=(count, spec.n_features))
        samples = centroids[cls] + cluster_offsets[assignments] + noise
        feature_blocks.append(samples)
        label_blocks.append(np.full(count, cls, dtype=int))

    features = np.vstack(feature_blocks) @ mixing.T
    labels = np.concatenate(label_blocks)

    if spec.label_noise > 0.0:
        n_noisy = int(round(spec.label_noise * labels.size))
        noisy_idx = rng.choice(labels.size, size=n_noisy, replace=False)
        shifts = rng.integers(1, spec.n_classes, size=n_noisy)
        labels[noisy_idx] = (labels[noisy_idx] + shifts) % spec.n_classes

    order = rng.permutation(labels.size)
    metadata = {
        "generator": "gaussian_mixture",
        "class_separation": spec.class_separation,
        "label_noise": spec.label_noise,
        "ordinal_classes": spec.ordinal_classes,
        "seed": spec.seed,
    }
    return Dataset(
        features=features[order],
        labels=labels[order],
        name=spec.name,
        feature_names=spec.feature_names
        or tuple(f"f{i}" for i in range(spec.n_features)),
        class_names=spec.class_names
        or tuple(f"class_{i}" for i in range(spec.n_classes)),
        metadata=metadata,
    )


def make_blobs(
    n_samples: int,
    n_features: int,
    n_classes: int,
    class_separation: float = 3.0,
    seed: Optional[int] = None,
    name: str = "blobs",
) -> Dataset:
    """Quick helper for tests and examples: balanced, equal-spread classes."""
    spec = SyntheticSpec(
        n_samples=n_samples,
        n_features=n_features,
        class_specs=[GaussianClassSpec() for _ in range(n_classes)],
        class_separation=class_separation,
        seed=seed,
        name=name,
    )
    return generate_gaussian_mixture(spec)
