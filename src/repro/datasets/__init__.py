"""Dataset substrate: synthetic UCI stand-ins, preprocessing, registry."""

from .base import DataSplit, Dataset, train_test_split, train_val_test_split
from .preprocessing import (
    MinMaxScaler,
    PreparedData,
    StandardScaler,
    one_hot,
    prepare_split,
    quantize_inputs,
)
from .registry import (
    PAPER_DATASETS,
    ClassifierSpec,
    available_datasets,
    get_classifier_spec,
    load_dataset,
    normalize_name,
    register_dataset,
    resolve_dataset_names,
)
from .synthetic import (
    GaussianClassSpec,
    SyntheticSpec,
    generate_gaussian_mixture,
    make_blobs,
)
from .uci import (
    dataset_statistics,
    load_pendigits,
    load_redwine,
    load_seeds,
    load_whitewine,
)

__all__ = [
    "ClassifierSpec",
    "DataSplit",
    "Dataset",
    "GaussianClassSpec",
    "MinMaxScaler",
    "PAPER_DATASETS",
    "PreparedData",
    "StandardScaler",
    "SyntheticSpec",
    "available_datasets",
    "dataset_statistics",
    "generate_gaussian_mixture",
    "get_classifier_spec",
    "load_dataset",
    "load_pendigits",
    "load_redwine",
    "load_seeds",
    "load_whitewine",
    "make_blobs",
    "normalize_name",
    "one_hot",
    "prepare_split",
    "quantize_inputs",
    "register_dataset",
    "resolve_dataset_names",
    "train_test_split",
    "train_val_test_split",
]
