"""Pareto-front extraction and area-gain summaries.

These utilities implement the analysis layer of the paper's evaluation:
extracting the accuracy/area Pareto front from a cloud of design points,
normalizing against the baseline, and answering the headline question
"what is the maximum area gain within an accuracy-loss budget of X %?".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .results import DesignPoint, NormalizedPoint, SweepResult


def _criteria(point: DesignPoint, robust: bool) -> Tuple[float, ...]:
    """The maximised/minimised comparison axes of one point.

    ``(accuracy, -area)`` by default — all axes maximised. With ``robust``
    the point's ``robust_accuracy`` (fault-injected mean accuracy) joins as
    a third maximised axis; robustness-aware searches guarantee it is set.
    """
    if not robust:
        return (point.accuracy, -point.area)
    if point.robust_accuracy is None:
        raise ValueError(
            "robust Pareto comparison needs robust_accuracy on every point "
            "(evaluate with fault injection enabled)"
        )
    return (point.accuracy, -point.area, point.robust_accuracy)


def pareto_front_reference(
    points: Sequence[DesignPoint], robust: bool = False
) -> List[DesignPoint]:
    """The original O(n²) Python loop — kept as the oracle for the array path.

    Semantics (shared with :func:`pareto_front`, which must match this
    point-for-point): a point is Pareto-optimal when no other point is at
    least as good on every axis and strictly better on one; identical
    (rounded) criteria tuples collapse to their first occurrence; the
    result is sorted by increasing area.
    """
    points = list(points)
    criteria = [_criteria(point, robust) for point in points]
    front: List[DesignPoint] = []
    front_criteria: List[Tuple[float, ...]] = []
    for candidate, candidate_criteria in zip(points, criteria):
        dominated = False
        for other, other_criteria in zip(points, criteria):
            if other is candidate:
                continue
            if all(o >= c for o, c in zip(other_criteria, candidate_criteria)) and any(
                o > c for o, c in zip(other_criteria, candidate_criteria)
            ):
                dominated = True
                break
        if not dominated:
            front.append(candidate)
            front_criteria.append(candidate_criteria)
    # Deduplicate identical criteria tuples and sort by area.
    unique: Dict[Tuple[float, ...], DesignPoint] = {}
    for point, point_criteria in zip(front, front_criteria):
        unique.setdefault(
            tuple(round(value, 12) for value in point_criteria), point
        )
    return sorted(unique.values(), key=lambda p: (p.area, -p.accuracy))


def pareto_front_indices(
    points: Sequence[DesignPoint], robust: bool = False
) -> List[int]:
    """Indices (into ``points``) of the Pareto front, in front order.

    The index-returning core of :func:`pareto_front`: one broadcasted
    pairwise comparison replaces the Python double loop (identical float64
    comparisons, so the survivor set matches the reference loop exactly),
    then the same first-occurrence dedupe on rounded criteria and the same
    ``(area, -accuracy)`` sort. The columnar serving format persists these
    indices so an npz-backed view can slice its Pareto subset without
    materializing design points.
    """
    points = list(points)
    if not points:
        return []
    criteria = np.asarray(
        [_criteria(point, robust) for point in points], dtype=np.float64
    )
    # [i, j] = i dominates j (all axes >= and one >); the diagonal is False
    # because a point never strictly beats itself on any axis.
    left = criteria[:, None, :]
    right = criteria[None, :, :]
    dominated_by = np.logical_and(
        np.all(left >= right, axis=-1), np.any(left > right, axis=-1)
    )
    survivors = np.flatnonzero(~dominated_by.any(axis=0))
    unique: Dict[Tuple[float, ...], int] = {}
    for index in survivors:
        key = tuple(round(float(value), 12) for value in criteria[index])
        unique.setdefault(key, int(index))
    return sorted(
        unique.values(), key=lambda i: (points[i].area, -points[i].accuracy)
    )


def pareto_front(points: Sequence[DesignPoint], robust: bool = False) -> List[DesignPoint]:
    """Extract the accuracy/area (optionally x robustness) Pareto-optimal subset.

    A point is Pareto-optimal when no other point is at least as good on
    every axis and strictly better on one. The default axes are the paper's
    (accuracy maximised, area minimised); ``robust=True`` adds the
    fault-injected ``robust_accuracy`` as a third maximised axis — used by
    robustness-aware searches, whose fronts keep designs that trade a
    little area for fault tolerance. The result is sorted by increasing
    area.

    Delegates to the vectorized :func:`pareto_front_indices`
    (:func:`pareto_front_reference` is the pinned loop oracle).
    """
    points = list(points)
    return [points[index] for index in pareto_front_indices(points, robust=robust)]


def dominates(a: DesignPoint, b: DesignPoint, robust: bool = False) -> bool:
    """True when ``a`` Pareto-dominates ``b`` (accuracy maximised, area minimised).

    With ``robust=True`` the fault-injected ``robust_accuracy`` is a third
    maximised axis (both points must carry it).
    """
    a_criteria = _criteria(a, robust)
    b_criteria = _criteria(b, robust)
    return all(x >= y for x, y in zip(a_criteria, b_criteria)) and any(
        x > y for x, y in zip(a_criteria, b_criteria)
    )


def normalize_points(
    points: Sequence[DesignPoint], baseline: DesignPoint
) -> List[NormalizedPoint]:
    """Normalize a list of design points against a baseline design."""
    return [p.normalized(baseline) for p in points]


def best_area_gain_at_loss(
    points: Sequence[DesignPoint],
    baseline: DesignPoint,
    max_accuracy_loss: float = 0.05,
) -> Optional[NormalizedPoint]:
    """The largest-area-gain point whose accuracy loss is within the budget.

    This is the paper's headline metric ("up to 8x area reduction for up to
    5 % accuracy loss"). The loss budget is *relative* to the baseline
    accuracy (normalized accuracy >= 1 - max_accuracy_loss), matching the
    normalized axes of Figures 1 and 2. Returns ``None`` when no point meets
    the budget — which the paper itself observes for weight clustering on
    Pendigits and Seeds.
    """
    if max_accuracy_loss < 0:
        raise ValueError(f"max_accuracy_loss must be >= 0, got {max_accuracy_loss}")
    if baseline.accuracy <= 0:
        raise ValueError("Baseline accuracy must be positive")
    eligible = [
        p.normalized(baseline)
        for p in points
        if 1.0 - p.accuracy / baseline.accuracy <= max_accuracy_loss + 1e-12
    ]
    if not eligible:
        return None
    return max(eligible, key=lambda n: n.area_gain)


def area_gain_table(
    sweep: SweepResult,
    max_accuracy_loss: float = 0.05,
    techniques: Optional[Sequence[str]] = None,
) -> Dict[str, Optional[float]]:
    """Best area gain within the loss budget, per technique.

    Returns ``{technique: gain or None}`` — ``None`` meaning the technique
    produced no design inside the accuracy budget.
    """
    selected = techniques if techniques is not None else sweep.techniques()
    table: Dict[str, Optional[float]] = {}
    for technique in selected:
        best = best_area_gain_at_loss(
            sweep.by_technique(technique), sweep.baseline, max_accuracy_loss
        )
        table[technique] = None if best is None else float(best.area_gain)
    return table


def hypervolume(
    points: Sequence[DesignPoint],
    baseline: DesignPoint,
    reference_loss: float = 0.2,
) -> float:
    """2-D hypervolume of the normalized Pareto front.

    The reference point is (relative accuracy loss = ``reference_loss``,
    normalized area = 1.0): designs losing more accuracy than the reference
    or larger than the baseline contribute nothing. Used by the search
    package to compare GA runs and by the ablation benchmarks.
    """
    if reference_loss <= 0:
        raise ValueError(f"reference_loss must be positive, got {reference_loss}")
    front = pareto_front(points)
    if not front:
        return 0.0
    normalized = [
        (1.0 - p.accuracy / baseline.accuracy, p.area / baseline.area) for p in front
    ]
    # Keep points inside the reference box, sort by accuracy loss.
    inside = sorted(
        (max(loss, 0.0), min(area, 1.0))
        for loss, area in normalized
        if loss <= reference_loss and area <= 1.0
    )
    if not inside:
        return 0.0
    volume = 0.0
    previous_loss = 0.0
    best_area = 1.0
    for loss, area in inside:
        volume += (loss - previous_loss) * (1.0 - best_area)
        best_area = min(best_area, area)
        previous_loss = loss
    volume += (reference_loss - previous_loss) * (1.0 - best_area)
    return float(volume)


def _hypervolume_2d(points: List[Tuple[float, ...]], reference: Tuple[float, ...]) -> float:
    """Exact 2-D dominated volume of minimized points w.r.t. ``reference``."""
    inside = sorted(p for p in points if p[0] < reference[0] and p[1] < reference[1])
    volume = 0.0
    best_y = reference[1]
    for x, y in inside:
        if y >= best_y:
            continue  # dominated by an earlier (smaller-x) point
        volume += (reference[0] - x) * (best_y - y)
        best_y = y
    return volume


def hypervolume_objectives(
    objectives: Sequence[Sequence[float]],
    reference: Sequence[float],
) -> float:
    """Exact hypervolume of minimized objective vectors w.r.t. a reference point.

    The generic counterpart of :func:`hypervolume` for raw objective space:
    ``objectives`` are 2- or 3-component vectors where smaller is better
    (the convention of :func:`repro.search.objectives.objectives_of`), and
    the volume is that of the region dominated by the set and bounded by
    ``reference``. Points not strictly better than the reference on every
    axis contribute nothing. The 3-D case sweeps reference-to-point slabs
    along the last axis with an incremental 2-D front — exact, O(n² log n),
    plenty for search-sized fronts. Used by ``bench_surrogate.py`` to
    compare 3-objective fronts from surrogate-assisted and plain GA runs.
    """
    reference = tuple(float(value) for value in reference)
    dimensions = len(reference)
    if dimensions not in (2, 3):
        raise ValueError(f"hypervolume_objectives supports 2 or 3 objectives, got {dimensions}")
    points = [tuple(float(value) for value in vector) for vector in objectives]
    if any(len(point) != dimensions for point in points):
        raise ValueError("every objective vector must match the reference dimensionality")
    if dimensions == 2:
        return float(_hypervolume_2d(points, reference))
    inside = sorted(
        (p for p in points if all(v < r for v, r in zip(p, reference))),
        key=lambda p: p[2],
    )
    volume = 0.0
    for index, point in enumerate(inside):
        top = inside[index + 1][2] if index + 1 < len(inside) else reference[2]
        if top <= point[2]:
            continue  # zero-thickness slab (ties on the swept axis)
        slab = [(q[0], q[1]) for q in inside[: index + 1]]
        volume += _hypervolume_2d(slab, reference[:2]) * (top - point[2])
    return float(volume)


def average_area_gain(
    sweeps: Iterable[SweepResult],
    technique: str,
    max_accuracy_loss: float = 0.05,
) -> float:
    """Geometric-mean area gain of one technique across several datasets.

    Datasets where the technique never meets the accuracy budget are skipped
    (matching how the paper reports "on average 5x" for quantization while
    noting clustering misses the budget on two datasets).
    """
    gains: List[float] = []
    for sweep in sweeps:
        best = best_area_gain_at_loss(
            sweep.by_technique(technique), sweep.baseline, max_accuracy_loss
        )
        if best is not None:
            gains.append(best.area_gain)
    if not gains:
        return float("nan")
    return float(np.exp(np.mean(np.log(gains))))


def front_as_arrays(
    points: Sequence[DesignPoint], baseline: Optional[DesignPoint] = None
) -> Dict[str, np.ndarray]:
    """Pareto front as plottable arrays (normalized when a baseline is given)."""
    front = pareto_front(points)
    accuracy = np.array([p.accuracy for p in front])
    area = np.array([p.area for p in front])
    if baseline is not None:
        accuracy = accuracy / baseline.accuracy
        area = area / baseline.area
    return {"accuracy": accuracy, "area": area}
