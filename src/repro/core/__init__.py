"""Core API: design points, Pareto analysis, configs and the minimization pipeline."""

from . import profiling
from .backend import (
    ArrayBackend,
    NumpyBackend,
    TorchBackend,
    available_backends,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
)
from .config import (
    DEFAULT_BIT_RANGE,
    DEFAULT_CLUSTER_RANGE,
    DEFAULT_SPARSITY_RANGE,
    PipelineConfig,
    fast_config,
)
from .pareto import (
    area_gain_table,
    average_area_gain,
    best_area_gain_at_loss,
    dominates,
    front_as_arrays,
    hypervolume,
    hypervolume_objectives,
    normalize_points,
    pareto_front,
)
from .pipeline import (
    STANDALONE_TECHNIQUES,
    MinimizationPipeline,
    PreparedPipeline,
    evaluate_dataset,
)
from .results import TECHNIQUES, DesignPoint, NormalizedPoint, SweepResult

__all__ = [
    "ArrayBackend",
    "DEFAULT_BIT_RANGE",
    "DEFAULT_CLUSTER_RANGE",
    "DEFAULT_SPARSITY_RANGE",
    "DesignPoint",
    "MinimizationPipeline",
    "NormalizedPoint",
    "NumpyBackend",
    "PipelineConfig",
    "PreparedPipeline",
    "STANDALONE_TECHNIQUES",
    "SweepResult",
    "TECHNIQUES",
    "TorchBackend",
    "area_gain_table",
    "available_backends",
    "average_area_gain",
    "best_area_gain_at_loss",
    "dominates",
    "evaluate_dataset",
    "fast_config",
    "front_as_arrays",
    "get_backend",
    "hypervolume",
    "hypervolume_objectives",
    "normalize_points",
    "pareto_front",
    "profiling",
    "register_backend",
    "registered_backends",
    "resolve_backend",
]
