"""Core API: design points, Pareto analysis, configs and the minimization pipeline."""

from . import profiling
from .config import (
    DEFAULT_BIT_RANGE,
    DEFAULT_CLUSTER_RANGE,
    DEFAULT_SPARSITY_RANGE,
    PipelineConfig,
    fast_config,
)
from .pareto import (
    area_gain_table,
    average_area_gain,
    best_area_gain_at_loss,
    dominates,
    front_as_arrays,
    hypervolume,
    normalize_points,
    pareto_front,
)
from .pipeline import (
    STANDALONE_TECHNIQUES,
    MinimizationPipeline,
    PreparedPipeline,
    evaluate_dataset,
)
from .results import TECHNIQUES, DesignPoint, NormalizedPoint, SweepResult

__all__ = [
    "DEFAULT_BIT_RANGE",
    "DEFAULT_CLUSTER_RANGE",
    "DEFAULT_SPARSITY_RANGE",
    "DesignPoint",
    "MinimizationPipeline",
    "NormalizedPoint",
    "PipelineConfig",
    "PreparedPipeline",
    "STANDALONE_TECHNIQUES",
    "SweepResult",
    "TECHNIQUES",
    "area_gain_table",
    "average_area_gain",
    "best_area_gain_at_loss",
    "dominates",
    "evaluate_dataset",
    "fast_config",
    "front_as_arrays",
    "hypervolume",
    "normalize_points",
    "pareto_front",
    "profiling",
]
