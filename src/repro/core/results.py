"""Design points and result containers shared across the library.

A :class:`DesignPoint` is one evaluated configuration in the accuracy/area
design space: which technique produced it, its hyper-parameters, its test
accuracy and its synthesized hardware cost. Sweeps and the genetic search
all return lists of design points, and the Pareto/normalization utilities in
:mod:`repro.core.pareto` consume them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from ..bespoke.report import SynthesisReport

#: Technique labels used throughout the library.
TECHNIQUES = ("baseline", "quantization", "pruning", "clustering", "combined")


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated design in the accuracy/area space.

    Attributes:
        technique: which minimization produced the point (one of
            :data:`TECHNIQUES`).
        accuracy: test-set top-1 accuracy of the minimized classifier.
        area: synthesized bespoke area in mm².
        power: synthesized power in µW.
        delay: critical-path delay in µs.
        parameters: technique hyper-parameters (bit-width, sparsity, ...).
        report: the full synthesis report (optional, for detailed analysis).
        robust_accuracy: mean accuracy of the deployed circuit under
            Monte-Carlo fault injection (``None`` unless the evaluation ran
            with robustness enabled — see
            :class:`repro.search.EvaluationSettings`). Measured on the
            bit-accurate fixed-point simulator.
        accuracy_std: standard deviation of the per-trial fault-injected
            accuracies (``None`` when robustness is disabled).
    """

    technique: str
    accuracy: float
    area: float
    power: float = 0.0
    delay: float = 0.0
    parameters: Dict[str, object] = field(default_factory=dict)
    report: Optional[SynthesisReport] = None
    robust_accuracy: Optional[float] = None
    accuracy_std: Optional[float] = None

    def __post_init__(self) -> None:
        if self.technique not in TECHNIQUES:
            raise ValueError(
                f"Unknown technique '{self.technique}'. Valid: {TECHNIQUES}"
            )
        if not 0.0 <= self.accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1], got {self.accuracy}")
        if self.area < 0 or self.power < 0 or self.delay < 0:
            raise ValueError("area, power and delay must be non-negative")
        if self.robust_accuracy is not None and not 0.0 <= self.robust_accuracy <= 1.0:
            raise ValueError(
                f"robust_accuracy must be in [0, 1], got {self.robust_accuracy}"
            )
        if self.accuracy_std is not None and self.accuracy_std < 0:
            raise ValueError(f"accuracy_std must be >= 0, got {self.accuracy_std}")

    # -- normalized views ------------------------------------------------------

    def normalized(self, baseline: "DesignPoint") -> "NormalizedPoint":
        """Express the point relative to a baseline design (the paper's axes)."""
        if baseline.area <= 0:
            raise ValueError("Baseline area must be positive")
        if baseline.accuracy <= 0:
            raise ValueError("Baseline accuracy must be positive")
        normalized_accuracy = self.accuracy / baseline.accuracy
        return NormalizedPoint(
            technique=self.technique,
            normalized_accuracy=normalized_accuracy,
            normalized_area=self.area / baseline.area,
            accuracy_loss=1.0 - normalized_accuracy,
            area_gain=baseline.area / self.area if self.area > 0 else float("inf"),
            parameters=dict(self.parameters),
        )

    def as_dict(self) -> Dict[str, object]:
        # The robustness fields appear only when set: design points from
        # robustness-disabled evaluations serialize byte-identically to
        # pre-robustness versions (pinned by golden front.json tests).
        doc: Dict[str, object] = {
            "technique": self.technique,
            "accuracy": self.accuracy,
            "area": self.area,
            "power": self.power,
            "delay": self.delay,
            "parameters": dict(self.parameters),
        }
        if self.robust_accuracy is not None:
            doc["robust_accuracy"] = self.robust_accuracy
        if self.accuracy_std is not None:
            doc["accuracy_std"] = self.accuracy_std
        return doc


@dataclass(frozen=True)
class NormalizedPoint:
    """A design point normalized to its baseline (Figure-1/2 axes).

    ``normalized_accuracy`` and ``normalized_area`` are the ratios plotted in
    the paper; ``accuracy_loss`` (``1 - normalized_accuracy``, i.e. the loss
    *relative to the baseline*, matching the paper's normalized axes) and
    ``area_gain`` are the derived headline quantities ("x% accuracy loss",
    "yx area reduction").
    """

    technique: str
    normalized_accuracy: float
    normalized_area: float
    accuracy_loss: float
    area_gain: float
    parameters: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "technique": self.technique,
            "normalized_accuracy": self.normalized_accuracy,
            "normalized_area": self.normalized_area,
            "accuracy_loss": self.accuracy_loss,
            "area_gain": self.area_gain,
            "parameters": dict(self.parameters),
        }


@dataclass
class SweepResult:
    """All design points of one dataset's evaluation, plus its baseline."""

    dataset: str
    baseline: DesignPoint
    points: List[DesignPoint] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def by_technique(self, technique: str) -> List[DesignPoint]:
        """Design points of one technique."""
        return [p for p in self.points if p.technique == technique]

    def techniques(self) -> List[str]:
        """Techniques present in this sweep, in :data:`TECHNIQUES` order."""
        present = {p.technique for p in self.points}
        return [t for t in TECHNIQUES if t in present]

    def normalized_points(self, technique: Optional[str] = None) -> List[NormalizedPoint]:
        """Normalized view of (optionally one technique's) points."""
        selected = self.points if technique is None else self.by_technique(technique)
        return [p.normalized(self.baseline) for p in selected]

    def add(self, points: Iterable[DesignPoint]) -> None:
        self.points.extend(points)

    # -- persistence ------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "dataset": self.dataset,
            "baseline": self.baseline.as_dict(),
            "points": [p.as_dict() for p in self.points],
            "metadata": dict(self.metadata),
        }

    def save_json(self, path: Union[str, Path]) -> Path:
        """Write the sweep (without full synthesis reports) to a JSON file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2))
        return path

    @staticmethod
    def load_json(path: Union[str, Path]) -> "SweepResult":
        """Load a sweep previously written by :meth:`save_json`."""
        data = json.loads(Path(path).read_text())
        baseline = DesignPoint(**data["baseline"])
        points = [DesignPoint(**entry) for entry in data["points"]]
        return SweepResult(
            dataset=data["dataset"],
            baseline=baseline,
            points=points,
            metadata=data.get("metadata", {}),
        )
