"""Pluggable array-ops backend for the population tensor engine.

The four G-axis subsystems — the stacked QAT trainer
(:mod:`repro.nn.stacked` + :class:`repro.nn.optimizers.StackedAdam`), the
fixed-point population simulator (:func:`repro.bespoke.simulator.simulate_population`),
the vectorized NSGA-II primitives (:mod:`repro.search.nsga2`) and the
Monte-Carlo fault-injection kernels (:mod:`repro.reliability.monte_carlo`) —
share a small set of hot array operations: batched ``matmul`` over
``(G, ...)`` stacks, contiguous segment reductions, k-smallest selection,
scatter along the trial axis, the rint/clip fake-quantization pass, argmax
with numpy's first-occurrence tie rule, a fused Adam step, and turning
SHAKE-256 byte streams into draw matrices.

This module names those operations once (:class:`ArrayBackend`) so the
kernels can be pointed at different array libraries without forking the
engine. Two implementations ship:

* :class:`NumpyBackend` (default) — every method is the *literal* numpy
  call the kernels historically made, so routing through the seam is
  byte-identical to the pre-seam code. All bit-identity contracts
  (stacked-vs-serial training, vectorized-vs-reference Monte Carlo,
  NSGA-II-vs-reference sorting) are stated for this backend.
* :class:`TorchBackend` — optional, gated behind the ``torch`` extra.
  Operations accept/return numpy arrays and run the heavy compute through
  torch CPU tensors (``torch.from_numpy`` shares memory, so in-place ops
  mutate the caller's buffers exactly like the numpy path). Integer
  operations (the bespoke datapath, argmax outcomes) are exact; float
  operations (stacked training) agree to BLAS reduction order —
  ``allclose``, not byte equality. See ``docs/backends.md``.

Selection precedence (resolved by :func:`resolve_backend`):

1. an explicit ``backend=`` argument (name or :class:`ArrayBackend` instance),
2. ``PipelineConfig.backend`` / ``GAConfig.backend`` / ``EvaluationSettings.backend``
   (threaded by the evaluation-settings resolver),
3. the ``REPRO_BACKEND`` environment variable,
4. ``"numpy"``.
"""

from __future__ import annotations

import importlib.util
import os
from typing import Callable, Dict, List, Optional, Union

import numpy as np

#: Environment variable consulted when no explicit backend is requested.
ENV_VAR = "REPRO_BACKEND"

#: The backend every contract is stated against.
DEFAULT_BACKEND = "numpy"


class ArrayBackend:
    """The array-ops protocol the population kernels are written against.

    Subclasses implement each operation for one array library. All methods
    accept numpy arrays; operations documented as in-place (``quantize``,
    ``put_along_axis``, ``adam_step``) must mutate the provided buffers so
    callers can keep preallocated storage across steps.
    """

    #: Registry name of the backend (``"numpy"``, ``"torch"``, ...).
    name: str = "abstract"

    # -- linear algebra ----------------------------------------------------------

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Broadcasted matrix product (``(G, N, I) @ (G, I, O)`` and friends)."""
        raise NotImplementedError

    # -- reductions and selection ------------------------------------------------

    def segment_max(self, values: np.ndarray, starts: np.ndarray) -> np.ndarray:
        """Per-row max of contiguous segments of ``values`` along axis 1.

        ``starts`` holds the first flat index of each segment (the last
        segment runs to the end of the row) — the ``np.maximum.reduceat``
        geometry the stacked quantizer uses for per-tensor scales.
        """
        raise NotImplementedError

    def take(
        self, values: np.ndarray, indices: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Gather columns of ``values`` along axis 1 (broadcasts segment scales)."""
        raise NotImplementedError

    def smallest_k(self, keys: np.ndarray, k: int) -> np.ndarray:
        """Indices of the ``k`` smallest keys per row (order unspecified).

        Backends may pick any of several equal-key tie-breaks; the
        Monte-Carlo kernels draw 64-bit keys, where ties are vanishingly
        rare, and sort the returned indices themselves.
        """
        raise NotImplementedError

    def argmax(self, scores: np.ndarray) -> np.ndarray:
        """Argmax over the last axis with numpy's first-occurrence tie rule."""
        raise NotImplementedError

    def argsort_stable(self, values: np.ndarray) -> np.ndarray:
        """Stable ascending argsort of a 1-D vector (NSGA-II crowding order)."""
        raise NotImplementedError

    def domination_matrix(self, objectives: np.ndarray) -> np.ndarray:
        """Boolean ``[i, j] = solution i Pareto-dominates solution j`` matrix."""
        raise NotImplementedError

    def nonzero(self, mask: np.ndarray) -> np.ndarray:
        """Ascending indices of the true entries of a 1-D boolean mask.

        The selection step of the serving query planner: constraint masks
        are reduced to candidate row indices without materializing rows.
        """
        raise NotImplementedError

    # -- scatter -----------------------------------------------------------------

    def put_along_axis(
        self, stack: np.ndarray, indices: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """Scatter ``values`` into ``stack`` along the last axis, in place.

        Indices are unique per row (fault sites are sampled without
        replacement), so write order cannot matter.
        """
        raise NotImplementedError

    # -- fused kernels -----------------------------------------------------------

    def quantize(
        self,
        values: np.ndarray,
        scale: np.ndarray,
        neg_level: np.ndarray,
        pos_level: np.ndarray,
        out: np.ndarray,
    ) -> np.ndarray:
        """The fake-quantization pass: divide, rint, clip, renormalize, rescale.

        Writes into ``out`` with the exact float sequence of the serial
        quantizer (including the ``+ 0.0`` negative-zero normalization).
        """
        raise NotImplementedError

    def adam_step(
        self,
        params: np.ndarray,
        grads: np.ndarray,
        m: np.ndarray,
        v: np.ndarray,
        step: np.ndarray,
        sq: np.ndarray,
        denom: np.ndarray,
        learning_rates: np.ndarray,
        beta1: float,
        beta2: float,
        epsilon: float,
        t: int,
    ) -> None:
        """One fused in-place Adam step on a ``(G, P)`` parameter stack.

        Must reproduce the per-element float sequence of
        :class:`repro.nn.optimizers.Adam`'s fused path (moments, bias
        correction, per-row learning rate, denominator, update).
        """
        raise NotImplementedError

    # -- randomness --------------------------------------------------------------

    def draws_from_bytes(self, raw: bytes, n_rows: int, n_cols: int) -> np.ndarray:
        """Big-endian uint64 draw matrix from a SHAKE-256 byte stream.

        Draw interpretation is part of the determinism contract (patterns
        depend only on the byte stream), so the default implementation is
        shared: backends keep draws as numpy uint64 and only accelerate the
        arithmetic that consumes them.
        """
        return (
            np.frombuffer(raw, dtype=">u8")
            .astype(np.uint64, copy=False)
            .reshape(n_rows, n_cols)
        )


class NumpyBackend(ArrayBackend):
    """The default backend: the literal numpy calls of the pre-seam kernels.

    Every method is a thin alias for the exact call the hot loops used to
    make, so the numpy path is byte-identical by construction — the
    ``*_reference`` loops kept throughout the codebase remain its oracles.
    """

    name = "numpy"

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``np.matmul`` (BLAS per 2-D slice of the broadcasted stack)."""
        return np.matmul(a, b)

    def segment_max(self, values: np.ndarray, starts: np.ndarray) -> np.ndarray:
        """``np.maximum.reduceat`` over contiguous row segments."""
        return np.maximum.reduceat(values, starts, axis=1)

    def take(
        self, values: np.ndarray, indices: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """``np.take`` along axis 1 (optionally into a preallocated buffer)."""
        return np.take(values, indices, axis=1, out=out)

    def smallest_k(self, keys: np.ndarray, k: int) -> np.ndarray:
        """``np.argpartition`` around the ``k``-th key, first ``k`` columns."""
        return np.argpartition(keys, k - 1, axis=-1)[:, :k]

    def argmax(self, scores: np.ndarray) -> np.ndarray:
        """``np.argmax`` over the last axis (first-occurrence ties)."""
        return np.argmax(scores, axis=-1)

    def argsort_stable(self, values: np.ndarray) -> np.ndarray:
        """``np.argsort(kind="stable")``."""
        return np.argsort(values, kind="stable")

    def domination_matrix(self, objectives: np.ndarray) -> np.ndarray:
        """One broadcasted comparison for the full pairwise domination matrix."""
        left = objectives[:, None, :]
        right = objectives[None, :, :]
        return np.logical_and(
            np.all(left <= right, axis=-1), np.any(left < right, axis=-1)
        )

    def nonzero(self, mask: np.ndarray) -> np.ndarray:
        """``np.flatnonzero`` (ascending by construction)."""
        return np.flatnonzero(mask)

    def put_along_axis(
        self, stack: np.ndarray, indices: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """``np.put_along_axis`` on the last axis, in place."""
        np.put_along_axis(stack, indices, values, axis=-1)
        return stack

    def quantize(
        self,
        values: np.ndarray,
        scale: np.ndarray,
        neg_level: np.ndarray,
        pos_level: np.ndarray,
        out: np.ndarray,
    ) -> np.ndarray:
        """The serial quantizer's literal divide/rint/clip/rescale sequence."""
        np.divide(values, scale, out=out)
        np.rint(out, out=out)
        np.maximum(out, neg_level, out=out)
        np.minimum(out, pos_level, out=out)
        out += 0.0  # normalize IEEE -0.0 like the serial quantizer
        out *= scale
        return out

    def adam_step(
        self,
        params: np.ndarray,
        grads: np.ndarray,
        m: np.ndarray,
        v: np.ndarray,
        step: np.ndarray,
        sq: np.ndarray,
        denom: np.ndarray,
        learning_rates: np.ndarray,
        beta1: float,
        beta2: float,
        epsilon: float,
        t: int,
    ) -> None:
        """Identical per-element float sequence to ``Adam._update_fused``."""
        np.multiply(grads, 1.0 - beta1, out=step)
        m *= beta1
        m += step
        np.multiply(grads, grads, out=sq)
        sq *= 1.0 - beta2
        v *= beta2
        v += sq
        np.divide(m, 1.0 - beta1**t, out=step)
        step *= learning_rates
        np.divide(v, 1.0 - beta2**t, out=denom)
        np.sqrt(denom, out=denom)
        denom += epsilon
        step /= denom
        params -= step


class TorchBackend(ArrayBackend):  # pragma: no cover - exercised by the torch CI job
    """Torch CPU implementation of the protocol, gated behind the extra.

    Accepts and returns numpy arrays: ``torch.from_numpy`` shares memory,
    so the in-place operations mutate the caller's buffers directly and the
    kernels keep their preallocated-storage structure. Integer arithmetic
    (the bespoke datapath, fault scatters, argmax outcomes) is exact; float
    arithmetic matches numpy to BLAS reduction order (``allclose``).
    """

    name = "torch"

    def __init__(self) -> None:
        import torch  # noqa: PLC0415 - the gate is the whole point

        self._torch = torch

    def _tensor(self, array: np.ndarray):
        """Zero-copy view when possible, else a converted CPU tensor."""
        array = np.ascontiguousarray(array)
        return self._torch.from_numpy(array)

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``torch.matmul`` with numpy-compatible leading-dim broadcasting."""
        return self._torch.matmul(self._tensor(a), self._tensor(b)).numpy()

    def segment_max(self, values: np.ndarray, starts: np.ndarray) -> np.ndarray:
        """Per-segment ``amax`` (segment counts are small: two per layer)."""
        tensor = self._tensor(values)
        bounds = [int(s) for s in starts] + [tensor.shape[1]]
        columns = [
            tensor[:, lo:hi].amax(dim=1) for lo, hi in zip(bounds[:-1], bounds[1:])
        ]
        return self._torch.stack(columns, dim=1).numpy()

    def take(
        self, values: np.ndarray, indices: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """``torch.index_select`` along dim 1."""
        gathered = self._torch.index_select(
            self._tensor(values), 1, self._tensor(np.asarray(indices, dtype=np.int64))
        ).numpy()
        if out is not None:
            out[...] = gathered
            return out
        return gathered

    def smallest_k(self, keys: np.ndarray, k: int) -> np.ndarray:
        """``torch.topk(largest=False)`` on an order-preserving int64 view.

        Torch has no uint64, so the unsigned keys are mapped through an XOR
        of the sign bit — a strictly monotone reinterpretation — before the
        top-k. Equal keys may break ties differently from
        ``np.argpartition``; the kernels draw 64-bit keys where ties are
        vanishingly rare.
        """
        signed = (keys ^ np.uint64(1 << 63)).view(np.int64)
        picks = self._torch.topk(
            self._tensor(signed), k, dim=-1, largest=False, sorted=False
        ).indices
        return picks.numpy()

    def argmax(self, scores: np.ndarray) -> np.ndarray:
        """``torch.argmax`` (documented first-occurrence ties on CPU)."""
        return self._torch.argmax(self._tensor(scores), dim=-1).numpy()

    def argsort_stable(self, values: np.ndarray) -> np.ndarray:
        """``torch.argsort(stable=True)``."""
        return self._torch.argsort(self._tensor(values), stable=True).numpy()

    def domination_matrix(self, objectives: np.ndarray) -> np.ndarray:
        """Broadcasted pairwise domination tests, as in the numpy backend."""
        tensor = self._tensor(objectives)
        left = tensor.unsqueeze(1)
        right = tensor.unsqueeze(0)
        dominated = (left <= right).all(dim=-1) & (left < right).any(dim=-1)
        return dominated.numpy()

    def nonzero(self, mask: np.ndarray) -> np.ndarray:
        """``torch.nonzero`` flattened to the numpy ``flatnonzero`` shape."""
        picks = self._torch.nonzero(self._tensor(mask), as_tuple=False)
        return picks.reshape(-1).numpy().astype(np.int64, copy=False)

    def put_along_axis(
        self, stack: np.ndarray, indices: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """In-place ``scatter_`` through a shared-memory tensor view."""
        tensor = self._torch.from_numpy(stack)
        index = self._tensor(np.asarray(indices, dtype=np.int64))
        tensor.scatter_(-1, index, self._tensor(values).to(tensor.dtype))
        return stack

    def quantize(
        self,
        values: np.ndarray,
        scale: np.ndarray,
        neg_level: np.ndarray,
        pos_level: np.ndarray,
        out: np.ndarray,
    ) -> np.ndarray:
        """The quantization sequence with torch ops on shared-memory views.

        ``torch.round`` rounds half to even, matching ``np.rint``.
        """
        torch = self._torch
        buffer = torch.from_numpy(out)
        torch.div(self._tensor(values), self._tensor(scale), out=buffer)
        torch.round(buffer, out=buffer)
        torch.maximum(buffer, self._tensor(neg_level), out=buffer)
        torch.minimum(buffer, self._tensor(pos_level), out=buffer)
        buffer += 0.0
        buffer *= torch.from_numpy(scale)
        return out

    def adam_step(
        self,
        params: np.ndarray,
        grads: np.ndarray,
        m: np.ndarray,
        v: np.ndarray,
        step: np.ndarray,
        sq: np.ndarray,
        denom: np.ndarray,
        learning_rates: np.ndarray,
        beta1: float,
        beta2: float,
        epsilon: float,
        t: int,
    ) -> None:
        """The fused Adam sequence on shared-memory tensor views."""
        torch = self._torch
        g = self._tensor(grads)
        m_t, v_t = torch.from_numpy(m), torch.from_numpy(v)
        step_t, sq_t = torch.from_numpy(step), torch.from_numpy(sq)
        denom_t = torch.from_numpy(denom)
        torch.mul(g, 1.0 - beta1, out=step_t)
        m_t *= beta1
        m_t += step_t
        torch.mul(g, g, out=sq_t)
        sq_t *= 1.0 - beta2
        v_t *= beta2
        v_t += sq_t
        torch.div(m_t, 1.0 - beta1**t, out=step_t)
        step_t *= torch.from_numpy(learning_rates)
        torch.div(v_t, 1.0 - beta2**t, out=denom_t)
        torch.sqrt(denom_t, out=denom_t)
        denom_t += epsilon
        step_t /= denom_t
        torch.from_numpy(params).sub_(step_t)


#: Registered backend factories, by name.
_FACTORIES: Dict[str, Callable[[], ArrayBackend]] = {
    "numpy": NumpyBackend,
    "torch": TorchBackend,
}

#: Instantiated backends (they are stateless, so one instance each suffices).
_INSTANCES: Dict[str, ArrayBackend] = {}


def register_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register a custom backend factory under ``name``.

    The factory is called lazily on first resolution; it should raise
    ``ImportError`` when its array library is unavailable. Registering an
    existing name replaces it (and drops any cached instance).
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"Backend name must be a non-empty string, got {name!r}")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def registered_backends() -> List[str]:
    """Names of every registered backend, available or not."""
    return sorted(_FACTORIES)


def backend_available(name: str) -> bool:
    """Whether ``name`` is registered and its array library is importable."""
    if name not in _FACTORIES:
        return False
    if name in _INSTANCES or name == "numpy":
        return True
    if name == "torch":
        return importlib.util.find_spec("torch") is not None
    try:  # custom backends: availability is whether the factory constructs
        _INSTANCES[name] = _FACTORIES[name]()
    except ImportError:
        return False
    return True


def available_backends() -> List[str]:
    """Names of the registered backends usable in this environment."""
    return [name for name in registered_backends() if backend_available(name)]


def get_backend(name: str) -> ArrayBackend:
    """The (cached) backend instance registered under ``name``.

    Raises:
        ValueError: unknown name.
        ImportError: the backend's array library is not installed.
    """
    if name not in _FACTORIES:
        raise ValueError(
            f"Unknown array backend '{name}'. Registered: {registered_backends()}"
        )
    instance = _INSTANCES.get(name)
    if instance is None:
        try:
            instance = _FACTORIES[name]()
        except ImportError as error:
            raise ImportError(
                f"Array backend '{name}' is registered but its library is not "
                f"installed (install the '{name}' extra, e.g. "
                f"pip install repro-printed-mlp[{name}])"
            ) from error
        _INSTANCES[name] = instance
    return instance


def default_backend_name() -> str:
    """The backend name used when nothing explicit is configured.

    ``REPRO_BACKEND`` when set (and non-empty), else ``"numpy"``.
    """
    return os.environ.get(ENV_VAR) or DEFAULT_BACKEND


def resolve_backend(
    backend: Optional[Union[str, ArrayBackend]] = None,
) -> ArrayBackend:
    """Resolve a backend request to an :class:`ArrayBackend` instance.

    ``backend`` may be an instance (returned as-is), a registered name, or
    ``None`` — which falls back to ``REPRO_BACKEND`` and then ``"numpy"``.
    This is the single resolution path every kernel uses, so precedence can
    never differ between subsystems.
    """
    if isinstance(backend, ArrayBackend):
        return backend
    if backend is not None and not isinstance(backend, str):
        raise TypeError(
            f"backend must be a name, an ArrayBackend or None, got {type(backend)!r}"
        )
    return get_backend(backend if backend is not None else default_backend_name())


def validate_backend_name(backend: Optional[str], owner: str) -> None:
    """Config-time validation shared by every ``backend`` knob.

    ``None`` (inherit) and registered names pass; anything else raises with
    the owner's field name in the message. Availability is deliberately not
    checked here — a campaign spec naming ``torch`` should fail at kernel
    resolution on the machine that lacks it, not at config parse time on
    the machine that has it.
    """
    if backend is None:
        return
    if not isinstance(backend, str) or backend not in _FACTORIES:
        raise ValueError(
            f"{owner} must be None or one of {registered_backends()}, got {backend!r}"
        )


__all__ = [
    "ArrayBackend",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "NumpyBackend",
    "TorchBackend",
    "available_backends",
    "backend_available",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "validate_backend_name",
]
