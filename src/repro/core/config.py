"""Configuration objects for the end-to-end minimization pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from .backend import validate_backend_name

#: Default sweep ranges, matching the paper's evaluation section.
DEFAULT_BIT_RANGE: Tuple[int, ...] = (2, 3, 4, 5, 6, 7)
DEFAULT_SPARSITY_RANGE: Tuple[float, ...] = (0.2, 0.3, 0.4, 0.5, 0.6)
DEFAULT_CLUSTER_RANGE: Tuple[int, ...] = (2, 3, 4, 6, 8)


@dataclass(frozen=True)
class PipelineConfig:
    """Everything needed to reproduce one dataset's evaluation.

    Attributes:
        dataset: dataset name (``"whitewine"``, ``"redwine"``, ``"pendigits"``,
            ``"seeds"`` or a registered custom dataset).
        seed: master seed for data splitting, training and fine-tuning.
        input_bits: unsigned bit-width of the circuit inputs.
        baseline_weight_bits: weight precision of the un-minimized baseline.
        technology: technology library name (``"egt"`` or ``"silicon"``).
        train_epochs: float-baseline training epochs (``None`` = dataset default).
        finetune_epochs: fine-tuning epochs used inside each sweep step.
        bit_range: quantization sweep bit-widths.
        sparsity_range: pruning sweep sparsity levels.
        cluster_range: clustering sweep cluster budgets.
        val_fraction / test_fraction: data split proportions.
        n_samples: optional dataset-size override (smaller = faster benches).
        max_accuracy_loss: accuracy budget for headline area-gain numbers.
        n_workers: worker processes for search fitness evaluation
            (1 = serial, 0 = every available core). Parallel runs produce
            bit-identical results to serial ones.
        stacked: evaluate search populations as stacked tensor programs
            (whole generations batched through shared ``(G, ...)`` array
            ops). Byte-identical to per-genome evaluation; on by default.
        cache_size: LRU bound on the search's genome evaluation cache
            (``None`` = unbounded, the historical behavior). Long searches
            over large spaces can bound memory at the cost of occasionally
            re-evaluating evicted genomes (deterministic, so results are
            unchanged).
        fault_rate: fraction of hard-wired connections hit per Monte-Carlo
            fault-injection trial during search evaluation. Together with
            ``n_fault_trials`` > 0 this enables robustness-aware search:
            every design point gains ``robust_accuracy``/``accuracy_std``
            and the GA optimizes fault tolerance as a third objective.
            Default 0.0 (off — results byte-identical to a robustness-free
            build).
        n_fault_trials: Monte-Carlo trials per design point (0 = off).
        fault_model: defect mechanism injected (``"open"``, ``"short"`` or
            ``"level_shift"`` — see :mod:`repro.reliability`).
        backend: array backend for the population tensor engine
            (``"numpy"``, ``"torch"``, or a registered custom backend).
            ``None`` (default) defers to the ``REPRO_BACKEND`` environment
            variable and then numpy. See :mod:`repro.core.backend` and
            ``docs/backends.md`` for exactness guarantees per backend.
        surrogate: surrogate model for surrogate-assisted search
            (``"ridge"`` or ``"mlp"``; ``None`` = off, the default). A
            cheap online-trained predictor prefilters GA offspring so only
            promising genomes get real evaluations; reported fronts contain
            only measured points. See :mod:`repro.surrogate` and
            ``docs/surrogate.md``. Like every surrogate knob this changes
            *which* genomes are evaluated, never what an evaluation
            returns, so it does not enter the campaign cache's
            evaluation-context key.
        surrogate_candidates: surrogate candidate-pool multiplier (the
            predictor scores this many times ``population_size`` offspring
            per generation).
        surrogate_prefilter: fraction of the population size receiving a
            real full-budget evaluation per generation, in ``(0, 1]``.
        halving_budgets: ascending short fine-tuning budgets (epochs) for
            successive-halving races between the surrogate prefilter and
            full evaluation (``None`` = no halving).
    """

    dataset: str
    seed: int = 0
    input_bits: int = 4
    baseline_weight_bits: int = 8
    technology: str = "egt"
    train_epochs: Optional[int] = None
    finetune_epochs: int = 15
    bit_range: Sequence[int] = field(default=DEFAULT_BIT_RANGE)
    sparsity_range: Sequence[float] = field(default=DEFAULT_SPARSITY_RANGE)
    cluster_range: Sequence[int] = field(default=DEFAULT_CLUSTER_RANGE)
    val_fraction: float = 0.15
    test_fraction: float = 0.25
    n_samples: Optional[int] = None
    max_accuracy_loss: float = 0.05
    n_workers: int = 1
    stacked: bool = True
    cache_size: Optional[int] = None
    fault_rate: float = 0.0
    n_fault_trials: int = 0
    fault_model: str = "open"
    backend: Optional[str] = None
    surrogate: Optional[str] = None
    surrogate_candidates: int = 4
    surrogate_prefilter: float = 0.25
    halving_budgets: Optional[Sequence[int]] = None

    def __post_init__(self) -> None:
        validate_backend_name(self.backend, "PipelineConfig.backend")
        # Mirrors repro.surrogate.SURROGATE_MODELS (not imported here: core
        # must stay dependency-free of the search/surrogate stack).
        if self.surrogate is not None and self.surrogate not in ("ridge", "mlp"):
            raise ValueError(
                f"surrogate must be one of ('ridge', 'mlp'), got '{self.surrogate}'"
            )
        if self.surrogate_candidates < 1:
            raise ValueError(
                f"surrogate_candidates must be >= 1, got {self.surrogate_candidates}"
            )
        if not 0.0 < self.surrogate_prefilter <= 1.0:
            raise ValueError(
                f"surrogate_prefilter must be in (0, 1], got {self.surrogate_prefilter}"
            )
        if self.halving_budgets is not None:
            budgets = tuple(self.halving_budgets)
            if any(int(b) != b or b < 1 for b in budgets):
                raise ValueError(
                    f"halving_budgets must be positive integers, got {budgets}"
                )
            if any(a >= b for a, b in zip(budgets, budgets[1:])):
                raise ValueError(
                    f"halving_budgets must be strictly increasing, got {budgets}"
                )
        # Mirrors repro.reliability.FAULT_MODELS (not imported here: core
        # must stay dependency-free of the nn/bespoke stack).
        if self.fault_model not in ("open", "short", "level_shift"):
            raise ValueError(
                "fault_model must be one of ('open', 'short', 'level_shift'), "
                f"got '{self.fault_model}'"
            )
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError(f"fault_rate must be in [0, 1], got {self.fault_rate}")
        if self.n_fault_trials < 0:
            raise ValueError(
                f"n_fault_trials must be >= 0, got {self.n_fault_trials}"
            )
        if self.n_workers < 0:
            raise ValueError(f"n_workers must be >= 0, got {self.n_workers}")
        if self.cache_size is not None and self.cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {self.cache_size}")
        if self.input_bits < 1:
            raise ValueError(f"input_bits must be >= 1, got {self.input_bits}")
        if self.baseline_weight_bits < 2:
            raise ValueError(
                f"baseline_weight_bits must be >= 2, got {self.baseline_weight_bits}"
            )
        if self.finetune_epochs < 0:
            raise ValueError(f"finetune_epochs must be >= 0, got {self.finetune_epochs}")
        if not 0.0 < self.max_accuracy_loss < 1.0:
            raise ValueError(
                f"max_accuracy_loss must be in (0, 1), got {self.max_accuracy_loss}"
            )
        if any(b < 2 for b in self.bit_range):
            raise ValueError("bit_range entries must be >= 2")
        if any(not 0.0 <= s < 1.0 for s in self.sparsity_range):
            raise ValueError("sparsity_range entries must be in [0, 1)")
        if any(c < 1 for c in self.cluster_range):
            raise ValueError("cluster_range entries must be >= 1")


def fast_config(
    dataset: str, seed: int = 0, n_workers: int = 1, backend: Optional[str] = None
) -> PipelineConfig:
    """A reduced-cost configuration used by tests and quick examples.

    Smaller dataset realizations, fewer fine-tuning epochs and coarser sweep
    grids — the trends stay the same, the wall-clock drops by roughly an
    order of magnitude compared to :class:`PipelineConfig` defaults.
    """
    return PipelineConfig(
        dataset=dataset,
        seed=seed,
        train_epochs=40,
        finetune_epochs=6,
        bit_range=(2, 3, 4, 6),
        sparsity_range=(0.2, 0.4, 0.6),
        cluster_range=(2, 4, 8),
        n_samples=600 if dataset.lower() != "seeds" else None,
        n_workers=n_workers,
        backend=backend,
    )
