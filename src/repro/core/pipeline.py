"""The end-to-end minimization pipeline.

:class:`MinimizationPipeline` wires together all the substrates for one
dataset: load data → train the float baseline → synthesize the un-minimized
bespoke baseline → run the standalone minimization sweeps. The combined
(GA-driven) search of Figure 2 builds on the same prepared pipeline through
:mod:`repro.search`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..bespoke.circuit import BespokeConfig
from ..bespoke.synthesis import synthesize
from ..clustering.sweep import clustering_sweep
from ..datasets.base import DataSplit
from ..datasets.preprocessing import PreparedData, prepare_split
from ..datasets.registry import get_classifier_spec, load_dataset, normalize_name
from ..datasets.base import train_val_test_split
from ..hardware.technology import TechnologyLibrary, get_technology
from ..nn.network import MLP, build_mlp
from ..nn.trainer import train_classifier
from ..pruning.sweep import pruning_sweep
from ..quantization.sweep import quantization_sweep
from . import profiling
from .config import PipelineConfig
from .pareto import area_gain_table, pareto_front
from .results import DesignPoint, SweepResult

#: The standalone techniques evaluated in Figure 1.
STANDALONE_TECHNIQUES = ("quantization", "pruning", "clustering")


@dataclass
class PreparedPipeline:
    """Artifacts shared by every sweep of one dataset evaluation."""

    config: PipelineConfig
    data: PreparedData
    baseline_model: MLP
    baseline_point: DesignPoint
    technology: TechnologyLibrary
    baseline_accuracy: float
    metadata: Dict[str, object] = field(default_factory=dict)


class MinimizationPipeline:
    """Reproduces the per-dataset evaluation flow of the paper.

    Typical use::

        pipeline = MinimizationPipeline(PipelineConfig(dataset="whitewine"))
        sweep = pipeline.run()            # Figure-1 style standalone sweeps
        gains = pipeline.area_gains(sweep)  # headline numbers

    The prepared state (trained baseline, prepared data, baseline synthesis)
    is cached after the first call so repeated sweeps reuse it.
    """

    def __init__(self, config: PipelineConfig) -> None:
        self.config = config
        self._prepared: Optional[PreparedPipeline] = None

    # -- preparation -------------------------------------------------------------

    def prepare(self) -> PreparedPipeline:
        """Load data, train the float baseline and synthesize the baseline circuit."""
        if self._prepared is not None:
            return self._prepared
        config = self.config
        dataset_name = normalize_name(config.dataset)
        dataset = load_dataset(dataset_name, n_samples=config.n_samples)
        spec = get_classifier_spec(dataset_name)
        split: DataSplit = train_val_test_split(
            dataset,
            val_fraction=config.val_fraction,
            test_fraction=config.test_fraction,
            seed=config.seed,
        )
        data = prepare_split(split, input_bits=config.input_bits)
        technology = get_technology(config.technology)

        model = build_mlp(
            data.train.n_features,
            spec.hidden_layers,
            dataset.n_classes,
            seed=config.seed,
        )
        epochs = config.train_epochs if config.train_epochs is not None else spec.epochs
        with profiling.stage("train_baseline"):
            train_classifier(
                model,
                data.train.features,
                data.train.labels,
                data.validation.features,
                data.validation.labels,
                epochs=epochs,
                batch_size=spec.batch_size,
                learning_rate=spec.learning_rate,
                seed=config.seed,
            )
        baseline_accuracy = model.evaluate_accuracy(data.test.features, data.test.labels)

        with profiling.stage("synthesize_baseline"):
            baseline_report = synthesize(
                model,
                config=BespokeConfig(
                    input_bits=config.input_bits,
                    weight_bits=config.baseline_weight_bits,
                ),
                tech=technology,
                name=f"{dataset_name}_baseline",
            )
        baseline_point = DesignPoint(
            technique="baseline",
            accuracy=float(baseline_accuracy),
            area=baseline_report.area,
            power=baseline_report.power,
            delay=baseline_report.delay,
            parameters={
                "weight_bits": config.baseline_weight_bits,
                "input_bits": config.input_bits,
            },
            report=baseline_report,
        )
        self._prepared = PreparedPipeline(
            config=config,
            data=data,
            baseline_model=model,
            baseline_point=baseline_point,
            technology=technology,
            baseline_accuracy=float(baseline_accuracy),
            metadata={
                "dataset": dataset_name,
                "topology": model.topology(),
                "n_train": data.train.n_samples,
                "n_test": data.test.n_samples,
            },
        )
        return self._prepared

    # -- standalone sweeps ---------------------------------------------------------

    def run_technique(self, technique: str) -> List[DesignPoint]:
        """Run one standalone technique's sweep (Figure-1 curve)."""
        prepared = self.prepare()
        config = self.config
        if technique == "quantization":
            return quantization_sweep(
                prepared.baseline_model,
                prepared.data,
                bit_range=config.bit_range,
                input_bits=config.input_bits,
                qat_epochs=config.finetune_epochs,
                tech=prepared.technology,
                seed=config.seed,
            )
        if technique == "pruning":
            return pruning_sweep(
                prepared.baseline_model,
                prepared.data,
                sparsity_range=config.sparsity_range,
                input_bits=config.input_bits,
                weight_bits=config.baseline_weight_bits,
                finetune_epochs=config.finetune_epochs,
                tech=prepared.technology,
                seed=config.seed,
            )
        if technique == "clustering":
            return clustering_sweep(
                prepared.baseline_model,
                prepared.data,
                cluster_range=config.cluster_range,
                input_bits=config.input_bits,
                weight_bits=config.baseline_weight_bits,
                finetune_epochs=config.finetune_epochs,
                tech=prepared.technology,
                seed=config.seed,
            )
        raise ValueError(
            f"Unknown technique '{technique}'. Valid: {STANDALONE_TECHNIQUES}"
        )

    def run(
        self, techniques: Sequence[str] = STANDALONE_TECHNIQUES
    ) -> SweepResult:
        """Run the requested standalone sweeps and bundle them with the baseline."""
        prepared = self.prepare()
        sweep = SweepResult(
            dataset=prepared.metadata["dataset"],
            baseline=prepared.baseline_point,
            metadata=dict(prepared.metadata),
        )
        for technique in techniques:
            sweep.add(self.run_technique(technique))
        return sweep

    # -- combined search ---------------------------------------------------------------

    def combined_search(self, ga_config=None):
        """Run the hardware-aware GA (Figure 2's search) on this pipeline.

        The GA inherits the pipeline's evaluation engine configuration —
        ``n_workers``, ``stacked`` population batching and the evaluation
        cache's ``cache_size`` bound — unless ``ga_config`` overrides them.
        Returns a :class:`~repro.search.ga.GAResult`.
        """
        # Deferred import: repro.search imports this module.
        from ..search.ga import GAConfig, run_combined_search

        prepared = self.prepare()
        if ga_config is None:
            ga_config = GAConfig(
                finetune_epochs=self.config.finetune_epochs, seed=self.config.seed
            )
        with profiling.stage("combined_search"):
            return run_combined_search(prepared, config=ga_config)

    # -- analysis ----------------------------------------------------------------------

    def area_gains(self, sweep: SweepResult) -> Dict[str, Optional[float]]:
        """Best area gain per technique within the configured accuracy budget."""
        return area_gain_table(sweep, max_accuracy_loss=self.config.max_accuracy_loss)

    def pareto(self, sweep: SweepResult, technique: Optional[str] = None) -> List[DesignPoint]:
        """Pareto front of the sweep (optionally restricted to one technique)."""
        points = sweep.points if technique is None else sweep.by_technique(technique)
        return pareto_front(points)


def evaluate_dataset(
    dataset: str,
    config: Optional[PipelineConfig] = None,
    techniques: Sequence[str] = STANDALONE_TECHNIQUES,
) -> SweepResult:
    """One-call reproduction of a dataset's Figure-1 panel."""
    if config is None:
        config = PipelineConfig(dataset=dataset)
    elif normalize_name(config.dataset) != normalize_name(dataset):
        raise ValueError(
            f"config.dataset ({config.dataset}) does not match dataset ({dataset})"
        )
    pipeline = MinimizationPipeline(config)
    return pipeline.run(techniques)
