"""Lightweight stage-level timing for the evaluation hot path.

The profiler is a process-global registry of named stages. Code wraps its
stages in :func:`stage` (a context manager); when profiling is disabled —
the default — the wrapper is a couple of dict lookups, cheap enough to leave
permanently in the per-genome evaluation path. Enable it with
``repro ... --profile`` (or :func:`enable` from Python) and print
:func:`format_report` to see where the wall-clock went::

    stage                     calls   total s    mean ms
    evaluate_genome              96     4.812     50.1
    ├ finetune                   96     4.321     45.0
    ...

Notes:
    * Timings are wall-clock (``time.perf_counter``) and inclusive: nested
      stages also accumulate into their parents.
    * The registry is per process. Parallel searches (``--workers N``) time
      only the driver process; run with serial evaluation when profiling the
      per-genome breakdown (results are bit-identical at any worker count).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Tuple

_enabled = False
#: stage name -> [total_seconds, calls]
_records: Dict[str, List[float]] = {}


def enable(on: bool = True) -> None:
    """Turn stage timing on/off (the registry is kept either way)."""
    global _enabled
    _enabled = bool(on)


def is_enabled() -> bool:
    return _enabled


def reset() -> None:
    """Clear all accumulated stage timings."""
    _records.clear()


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Time a named stage (no-op when profiling is disabled)."""
    if not _enabled:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        record = _records.get(name)
        if record is None:
            _records[name] = [elapsed, 1]
        else:
            record[0] += elapsed
            record[1] += 1


def summary() -> Dict[str, Dict[str, float]]:
    """Accumulated timings: ``{stage: {total_s, calls, mean_ms}}``."""
    return {
        name: {
            "total_s": total,
            "calls": int(calls),
            "mean_ms": (total / calls) * 1e3 if calls else 0.0,
        }
        for name, (total, calls) in _records.items()
    }


def format_report(sort_by_total: bool = True) -> str:
    """Human-readable stage table (stages sorted by total time)."""
    rows: List[Tuple[str, float, int]] = [
        (name, total, int(calls)) for name, (total, calls) in _records.items()
    ]
    if sort_by_total:
        rows.sort(key=lambda row: row[1], reverse=True)
    if not rows:
        return "profile: no stages recorded (is profiling enabled?)"
    lines = [f"{'stage':<28} {'calls':>7} {'total s':>9} {'mean ms':>9}"]
    for name, total, calls in rows:
        mean_ms = (total / calls) * 1e3 if calls else 0.0
        lines.append(f"{name:<28} {calls:>7} {total:>9.3f} {mean_ms:>9.2f}")
    return "\n".join(lines)
