"""repro — Hardware-Aware Automated Neural Minimization for Printed MLPs.

A from-scratch reproduction of Kokkinis et al., DATE 2023: quantization,
unstructured pruning and per-input-position weight clustering applied to
bespoke (hard-wired coefficient) printed MLP classifiers, with an analytical
EGT area/power model standing in for the commercial synthesis flow, and a
hardware-aware NSGA-II combining all three techniques.

Quickstart::

    from repro import MinimizationPipeline, PipelineConfig

    pipeline = MinimizationPipeline(PipelineConfig(dataset="whitewine"))
    sweep = pipeline.run()                 # Figure-1 style sweeps
    print(pipeline.area_gains(sweep))      # area gain at <=5 % accuracy loss

Sub-packages:

* :mod:`repro.nn` — NumPy MLP training framework.
* :mod:`repro.datasets` — synthetic UCI stand-ins and preprocessing.
* :mod:`repro.hardware` — EGT technology library and arithmetic cost models.
* :mod:`repro.bespoke` — bespoke circuit generation and synthesis reports.
* :mod:`repro.quantization` / :mod:`repro.pruning` / :mod:`repro.clustering`
  — the three minimization techniques.
* :mod:`repro.core` — design points, Pareto analysis, the evaluation pipeline.
* :mod:`repro.search` — the hardware-aware genetic algorithm.
* :mod:`repro.campaign` — resumable multi-dataset search campaigns.
* :mod:`repro.experiments` — Figure/Table reproduction drivers.
"""

from .bespoke import BespokeConfig, SynthesisReport, synthesize, synthesize_baseline
from .campaign import CampaignRunner, CampaignSpec, load_spec
from .core import (
    DesignPoint,
    MinimizationPipeline,
    NormalizedPoint,
    PipelineConfig,
    SweepResult,
    area_gain_table,
    best_area_gain_at_loss,
    evaluate_dataset,
    fast_config,
    pareto_front,
)
from .datasets import load_dataset, prepare_split, train_val_test_split
from .hardware import egt_library, get_technology
from .nn import MLP, build_mlp, train_classifier
from .search import GAConfig, HardwareAwareGA, run_combined_search

__version__ = "1.0.0"

__all__ = [
    "BespokeConfig",
    "CampaignRunner",
    "CampaignSpec",
    "DesignPoint",
    "GAConfig",
    "HardwareAwareGA",
    "MLP",
    "MinimizationPipeline",
    "NormalizedPoint",
    "PipelineConfig",
    "SweepResult",
    "SynthesisReport",
    "__version__",
    "area_gain_table",
    "best_area_gain_at_loss",
    "build_mlp",
    "egt_library",
    "evaluate_dataset",
    "fast_config",
    "get_technology",
    "load_dataset",
    "load_spec",
    "pareto_front",
    "prepare_split",
    "run_combined_search",
    "synthesize",
    "synthesize_baseline",
    "train_classifier",
    "train_val_test_split",
]
