"""repro — Hardware-Aware Automated Neural Minimization for Printed MLPs.

A from-scratch reproduction of Kokkinis et al., DATE 2023: quantization,
unstructured pruning and per-input-position weight clustering applied to
bespoke (hard-wired coefficient) printed MLP classifiers, with an analytical
EGT area/power model standing in for the commercial synthesis flow, and a
hardware-aware NSGA-II combining all three techniques.

Quickstart::

    from repro import MinimizationPipeline, PipelineConfig

    pipeline = MinimizationPipeline(PipelineConfig(dataset="whitewine"))
    sweep = pipeline.run()                 # Figure-1 style sweeps
    print(pipeline.area_gains(sweep))      # area gain at <=5 % accuracy loss

Sub-packages:

* :mod:`repro.nn` — NumPy MLP training framework.
* :mod:`repro.datasets` — synthetic UCI stand-ins and preprocessing.
* :mod:`repro.hardware` — EGT technology library and arithmetic cost models.
* :mod:`repro.bespoke` — bespoke circuit generation and synthesis reports.
* :mod:`repro.quantization` / :mod:`repro.pruning` / :mod:`repro.clustering`
  — the three minimization techniques.
* :mod:`repro.core` — design points, Pareto analysis, the evaluation
  pipeline, and the pluggable array-backend registry
  (:mod:`repro.core.backend`).
* :mod:`repro.reliability` — Monte-Carlo fault injection for hard-wired
  classifiers.
* :mod:`repro.search` — the hardware-aware genetic algorithm.
* :mod:`repro.campaign` — resumable multi-dataset search campaigns.
* :mod:`repro.experiments` — Figure/Table reproduction drivers.
"""

# ``repro.core`` is imported first on purpose: it loads the array-backend
# registry (``repro.core.backend``) before any subsystem that consumes it,
# which keeps the core -> bespoke -> nn -> core.backend import chain acyclic.
from .core import (
    ArrayBackend,
    DesignPoint,
    MinimizationPipeline,
    NormalizedPoint,
    PipelineConfig,
    SweepResult,
    area_gain_table,
    available_backends,
    best_area_gain_at_loss,
    evaluate_dataset,
    fast_config,
    get_backend,
    pareto_front,
    register_backend,
    resolve_backend,
)

from .bespoke import (
    BespokeConfig,
    FixedPointSimulator,
    SynthesisReport,
    synthesize,
    synthesize_baseline,
)
from .campaign import CampaignRunner, CampaignSpec, load_spec
from .datasets import load_dataset, prepare_split, train_val_test_split
from .hardware import egt_library, get_technology
from .nn import MLP, build_mlp, train_classifier
from .reliability import monte_carlo_fault_injection
from .search import (
    EvaluationSettings,
    GAConfig,
    HardwareAwareGA,
    ParallelEvaluator,
    SerialEvaluator,
    create_evaluator,
    resolve_evaluation_settings,
    run_combined_search,
)

__version__ = "1.0.0"

__all__ = [
    "ArrayBackend",
    "BespokeConfig",
    "CampaignRunner",
    "CampaignSpec",
    "DesignPoint",
    "EvaluationSettings",
    "FixedPointSimulator",
    "GAConfig",
    "HardwareAwareGA",
    "MLP",
    "MinimizationPipeline",
    "NormalizedPoint",
    "ParallelEvaluator",
    "PipelineConfig",
    "SerialEvaluator",
    "SweepResult",
    "SynthesisReport",
    "__version__",
    "area_gain_table",
    "available_backends",
    "best_area_gain_at_loss",
    "build_mlp",
    "create_evaluator",
    "egt_library",
    "evaluate_dataset",
    "fast_config",
    "get_backend",
    "get_technology",
    "load_dataset",
    "load_spec",
    "monte_carlo_fault_injection",
    "pareto_front",
    "prepare_split",
    "register_backend",
    "resolve_backend",
    "resolve_evaluation_settings",
    "run_combined_search",
    "synthesize",
    "synthesize_baseline",
    "train_classifier",
    "train_val_test_split",
]
