"""Weight quantizers.

A quantizer is a callable mapping a float tensor to its fake-quantized
version (floats restricted to the representable grid). The same object also
exposes the integer view used by the bespoke circuit generator, via the
shared :mod:`repro.hardware.fixed_point` helpers, so training-time accuracy
and hardware-time area are computed from identical coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..hardware.fixed_point import (
    FixedPointFormat,
    derive_format,
    derive_scale,
    max_symmetric_level,
)


class Quantizer:
    """Base quantizer interface."""

    bits: int

    def __call__(self, values: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def integer_levels(self, values: np.ndarray) -> np.ndarray:
        """Integer levels the circuit hard-wires for ``values``."""
        raise NotImplementedError


@dataclass
class SymmetricQuantizer(Quantizer):
    """Symmetric fixed-point quantizer with a frozen or dynamic scale.

    Args:
        bits: total bit-width (sign bit included).
        scale: value of one integer step. When ``None`` the scale is derived
            from each tensor it quantizes (dynamic, the QAT default); a fixed
            scale is used when the quantizer is calibrated once
            (:meth:`calibrate`) and then frozen for deployment.
    """

    bits: int
    scale: Optional[float] = None

    def __post_init__(self) -> None:
        if self.bits < 2:
            raise ValueError(f"bits must be >= 2, got {self.bits}")
        if self.scale is not None and self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        self._max_level = max_symmetric_level(self.bits)

    # -- calibration ------------------------------------------------------------

    def calibrate(self, values: np.ndarray) -> "SymmetricQuantizer":
        """Freeze the scale so the largest |value| maps to the top level."""
        fmt = derive_format(np.asarray(values), self.bits)
        self.scale = fmt.scale
        return self

    def format_for(self, values: np.ndarray) -> FixedPointFormat:
        """The fixed-point format used for ``values`` under current settings."""
        if self.scale is not None:
            return FixedPointFormat(bits=self.bits, scale=self.scale)
        return derive_format(np.asarray(values), self.bits)

    # -- quantization -----------------------------------------------------------

    def __call__(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        # Single-pass fake quantization on the QAT hot path: derive the scale
        # (same arithmetic as :func:`derive_format`), then round/clip/rescale
        # with raw ufuncs — the same float operations as
        # ``fmt.to_floats(fmt.to_integers(values))`` without the int64
        # round-trip (integral float64 levels convert exactly), the
        # ``FixedPointFormat`` allocation and the ``np.round``/``np.clip``
        # dispatch wrappers. Bit-identical to the reference path
        # (``np.round(x) == np.rint(x)`` and ``clip == minimum(maximum())``
        # elementwise), which the property tests assert.
        max_level = self._max_level
        scale = self.scale
        if scale is None:
            max_abs = float(np.abs(values).max()) if values.size else 0.0
            scale = derive_scale(max_abs, max_level)
        levels = values / scale
        np.rint(levels, out=levels)
        np.maximum(levels, -max_level, out=levels)
        np.minimum(levels, max_level, out=levels)
        # The int64 round-trip normalizes -0.0 to +0.0; adding 0.0 does the
        # same (x + 0.0 == x exactly for every other value) so the result is
        # byte-identical to the reference.
        levels += 0.0
        levels *= scale
        return levels

    def integer_levels(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        fmt = self.format_for(values)
        return fmt.to_integers(values)

    @property
    def max_level(self) -> int:
        return max_symmetric_level(self.bits)


@dataclass
class PowerOfTwoQuantizer(Quantizer):
    """Quantizer restricting weights to signed powers of two (and zero).

    Power-of-two coefficients need no adders in a bespoke multiplier (pure
    shifts), so this quantizer is the most hardware-friendly — and most
    accuracy-hungry — point of the design space. It is provided for the
    extension studies, not used by the paper's main sweeps.

    Args:
        bits: total bit-width budget; exponents range over
            ``[0, 2**(bits-1) - 1]`` relative to the tensor's maximum.
    """

    bits: int

    def __post_init__(self) -> None:
        if self.bits < 2:
            raise ValueError(f"bits must be >= 2, got {self.bits}")

    def __call__(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return values.copy()
        max_abs = float(np.max(np.abs(values)))
        if max_abs == 0.0:
            return np.zeros_like(values)
        n_exponents = max_symmetric_level(self.bits)
        # Exponent 0 corresponds to max_abs; smaller weights round to
        # progressively smaller powers of two, the smallest to zero.
        with np.errstate(divide="ignore"):
            exponents = np.round(np.log2(np.abs(values) / max_abs))
        exponents = np.where(np.isfinite(exponents), exponents, -np.inf)
        quantized = np.where(
            exponents < -(n_exponents - 1),
            0.0,
            np.sign(values) * max_abs * np.power(2.0, np.clip(exponents, -(n_exponents - 1), 0)),
        )
        return quantized

    def integer_levels(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        quantized = self(values)
        if quantized.size == 0:
            return quantized.astype(np.int64)
        max_abs = float(np.max(np.abs(quantized)))
        if max_abs == 0.0:
            return np.zeros(quantized.shape, dtype=np.int64)
        # Smallest non-zero magnitude becomes 1; all levels are powers of two.
        nonzero = np.abs(quantized[quantized != 0.0])
        smallest = float(np.min(nonzero))
        return np.round(quantized / smallest).astype(np.int64)


def quantize_tensor(values: np.ndarray, bits: int) -> np.ndarray:
    """Convenience function: symmetric fake-quantization with a dynamic scale."""
    return SymmetricQuantizer(bits=bits)(values)
