"""Bit-width sweeps: the quantization Pareto curve of Figure 1.

The paper generates its quantization Pareto points by evaluating designs
whose quantized weight precision ranges from 2 to 7 bits, each obtained with
QAT. :func:`quantization_sweep` reproduces exactly that loop and returns one
:class:`~repro.core.results.DesignPoint` per bit-width, synthesized with the
bespoke area model.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..bespoke.circuit import BespokeConfig
from ..bespoke.synthesis import synthesize
from ..core.results import DesignPoint
from ..datasets.preprocessing import PreparedData
from ..hardware.technology import TechnologyLibrary
from ..nn.network import MLP
from .qat import QATConfig, quantize_aware_train
from .ptq import post_training_quantize

#: Bit-widths examined by the paper's quantization sweep.
PAPER_BIT_RANGE: Sequence[int] = (2, 3, 4, 5, 6, 7)


def quantization_sweep(
    model: MLP,
    data: PreparedData,
    bit_range: Sequence[int] = PAPER_BIT_RANGE,
    input_bits: int = 4,
    use_qat: bool = True,
    qat_epochs: int = 20,
    tech: Optional[TechnologyLibrary] = None,
    seed: Optional[int] = None,
) -> List[DesignPoint]:
    """Evaluate one quantized design per bit-width.

    Args:
        model: trained float baseline (never modified; clones are used).
        data: prepared dataset split (scaled, input-quantized).
        bit_range: weight bit-widths to evaluate (paper: 2..7).
        input_bits: circuit input bit-width.
        use_qat: retrain after attaching quantizers (paper behaviour); when
            False plain post-training quantization is used.
        qat_epochs: fine-tuning epochs per bit-width.
        tech: technology library for synthesis (EGT by default).
        seed: fine-tuning seed.

    Returns:
        One :class:`DesignPoint` per bit-width with test accuracy and the
        synthesized bespoke area.
    """
    points: List[DesignPoint] = []
    for bits in bit_range:
        candidate = model.clone()
        if use_qat:
            quantize_aware_train(
                candidate,
                data,
                QATConfig(weight_bits=int(bits), epochs=qat_epochs),
                seed=seed,
            )
        else:
            candidate = post_training_quantize(candidate, int(bits)).model
        accuracy = candidate.evaluate_accuracy(data.test.features, data.test.labels)
        report = synthesize(
            candidate,
            config=BespokeConfig(input_bits=input_bits, weight_bits=int(bits)),
            tech=tech,
            name=f"{data.train.name}_q{bits}",
        )
        points.append(
            DesignPoint(
                technique="quantization",
                accuracy=float(accuracy),
                area=report.area,
                power=report.power,
                delay=report.delay,
                parameters={"weight_bits": int(bits), "use_qat": use_qat},
                report=report,
            )
        )
    return points
