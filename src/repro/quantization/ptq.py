"""Post-training quantization (PTQ).

PTQ quantizes an already-trained model without any retraining. The paper
uses QAT (via QKeras) for its quantization Pareto fronts; PTQ is implemented
as the cheaper alternative used by the QAT-vs-PTQ ablation benchmark and as
the fallback inside the genetic search when fine-tuning is disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..datasets.preprocessing import PreparedData
from ..nn.network import MLP
from .quantizers import SymmetricQuantizer


@dataclass(frozen=True)
class PTQResult:
    """Outcome of a post-training quantization pass."""

    model: MLP
    weight_bits: List[int]
    scales: List[float]
    accuracy: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "weight_bits": list(self.weight_bits),
            "scales": list(self.scales),
            "accuracy": self.accuracy,
        }


def post_training_quantize(
    model: MLP,
    weight_bits: Union[int, Sequence[int]],
    data: Optional[PreparedData] = None,
    quantize_bias: bool = True,
) -> PTQResult:
    """Quantize a trained model's weights with calibrated, frozen scales.

    Unlike QAT the scales are calibrated once from the trained weights and
    frozen, and no retraining happens. Returns a new model (clone); the
    original is untouched.

    Args:
        model: trained float model.
        weight_bits: single bit-width or per-layer sequence.
        data: optional prepared split used to report test accuracy.
        quantize_bias: also quantize biases (at ``bits + 4``).
    """
    clone = model.clone()
    dense_layers = clone.dense_layers
    if isinstance(weight_bits, int):
        per_layer = [weight_bits] * len(dense_layers)
    else:
        per_layer = [int(b) for b in weight_bits]
        if len(per_layer) != len(dense_layers):
            raise ValueError(
                f"weight_bits has {len(per_layer)} entries but the model has "
                f"{len(dense_layers)} Dense layers"
            )

    scales: List[float] = []
    for layer, bits in zip(dense_layers, per_layer):
        weights = layer.weights if layer.mask is None else layer.weights * layer.mask
        quantizer = SymmetricQuantizer(bits=bits).calibrate(weights)
        layer.weight_quantizer = quantizer
        if quantize_bias:
            layer.bias_quantizer = SymmetricQuantizer(bits=bits + 4).calibrate(layer.bias)
        scales.append(float(quantizer.scale))

    accuracy = None
    if data is not None:
        accuracy = clone.evaluate_accuracy(data.test.features, data.test.labels)
    return PTQResult(model=clone, weight_bits=per_layer, scales=scales, accuracy=accuracy)


def ptq_bitwidth_sensitivity(
    model: MLP,
    data: PreparedData,
    bit_range: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
) -> Dict[int, float]:
    """Test accuracy of PTQ at each bit-width (no retraining).

    Used by the ablation benchmark to quantify how much accuracy QAT recovers
    over plain PTQ at low precision.
    """
    results: Dict[int, float] = {}
    for bits in bit_range:
        result = post_training_quantize(model, bits, data=data)
        results[int(bits)] = float(result.accuracy) if result.accuracy is not None else float("nan")
    return results


def layer_quantization_error(model: MLP, bits: int) -> List[float]:
    """Per-layer RMS error a ``bits``-bit symmetric quantization would cause."""
    errors: List[float] = []
    for layer in model.dense_layers:
        weights = layer.weights if layer.mask is None else layer.weights * layer.mask
        quantizer = SymmetricQuantizer(bits=bits)
        quantized = quantizer(weights)
        errors.append(float(np.sqrt(np.mean((weights - quantized) ** 2))))
    return errors
