"""Quantization: symmetric fixed-point quantizers, QAT, PTQ and bit-width sweeps."""

from .ptq import (
    PTQResult,
    layer_quantization_error,
    post_training_quantize,
    ptq_bitwidth_sensitivity,
)
from .qat import (
    QATConfig,
    attach_quantizers,
    detach_quantizers,
    quantization_snr,
    quantize_aware_train,
    quantized_copy,
    weight_bits_used,
)
from .quantizers import (
    PowerOfTwoQuantizer,
    Quantizer,
    SymmetricQuantizer,
    quantize_tensor,
)
from .sweep import PAPER_BIT_RANGE, quantization_sweep

__all__ = [
    "PAPER_BIT_RANGE",
    "PTQResult",
    "PowerOfTwoQuantizer",
    "QATConfig",
    "Quantizer",
    "SymmetricQuantizer",
    "attach_quantizers",
    "detach_quantizers",
    "layer_quantization_error",
    "post_training_quantize",
    "ptq_bitwidth_sensitivity",
    "quantization_snr",
    "quantize_aware_train",
    "quantize_tensor",
    "quantized_copy",
    "quantization_sweep",
    "weight_bits_used",
]
