"""Quantization-aware training (QAT).

This mirrors the paper's QKeras flow: fake-quantizers are attached to every
Dense layer so the forward pass sees quantized weights, while gradients flow
to full-precision shadow weights (the straight-through estimator implemented
by :class:`repro.nn.layers.Dense`). A short retraining pass then recovers
most of the accuracy lost to the precision reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from ..datasets.preprocessing import PreparedData
from ..nn.network import MLP
from ..nn.trainer import TrainingHistory, finetune
from .quantizers import Quantizer, SymmetricQuantizer


@dataclass(frozen=True)
class QATConfig:
    """Configuration of a quantization-aware (re)training pass.

    Attributes:
        weight_bits: weight bit-width; single int or per-layer sequence.
        quantize_bias: also quantize biases (at ``weight_bits + 4`` bits,
            reflecting the wider accumulator grid biases live on).
        epochs: fine-tuning epochs.
        learning_rate: fine-tuning learning rate.
        batch_size: fine-tuning batch size.
    """

    weight_bits: Union[int, Sequence[int]] = 4
    quantize_bias: bool = True
    epochs: int = 20
    learning_rate: float = 0.003
    batch_size: int = 32

    def bits_for_layer(self, layer_index: int, n_layers: int) -> int:
        if isinstance(self.weight_bits, int):
            return self.weight_bits
        bits = list(self.weight_bits)
        if len(bits) != n_layers:
            raise ValueError(
                f"weight_bits has {len(bits)} entries but the model has {n_layers} Dense layers"
            )
        return int(bits[layer_index])


def attach_quantizers(
    model: MLP,
    weight_bits: Union[int, Sequence[int]],
    quantize_bias: bool = True,
) -> List[Quantizer]:
    """Attach symmetric fake-quantizers to every Dense layer, in place.

    Returns the quantizer objects in layer order (useful for inspecting the
    scales or freezing them later).
    """
    dense_layers = model.dense_layers
    config = QATConfig(weight_bits=weight_bits, quantize_bias=quantize_bias)
    quantizers: List[Quantizer] = []
    for index, layer in enumerate(dense_layers):
        bits = config.bits_for_layer(index, len(dense_layers))
        quantizer = SymmetricQuantizer(bits=bits)
        layer.weight_quantizer = quantizer
        if quantize_bias:
            layer.bias_quantizer = SymmetricQuantizer(bits=bits + 4)
        quantizers.append(quantizer)
    return quantizers


def detach_quantizers(model: MLP) -> None:
    """Remove all quantizer hooks from the model, in place."""
    for layer in model.dense_layers:
        layer.weight_quantizer = None
        layer.bias_quantizer = None


def quantize_aware_train(
    model: MLP,
    data: PreparedData,
    config: Optional[QATConfig] = None,
    seed: Optional[int] = None,
) -> TrainingHistory:
    """Attach quantizers and fine-tune the model on the prepared split.

    The model is modified in place: after the call its ``effective_weights()``
    lie on the quantization grid and the shadow weights hold the QAT result.
    """
    config = config if config is not None else QATConfig()
    attach_quantizers(model, config.weight_bits, config.quantize_bias)
    return finetune(
        model,
        data.train.features,
        data.train.labels,
        data.validation.features,
        data.validation.labels,
        epochs=config.epochs,
        learning_rate=config.learning_rate,
        batch_size=config.batch_size,
        seed=seed,
    )


def quantized_copy(
    model: MLP,
    weight_bits: Union[int, Sequence[int]],
    data: Optional[PreparedData] = None,
    epochs: int = 20,
    seed: Optional[int] = None,
) -> MLP:
    """Return a quantized clone of ``model`` (original left untouched).

    When ``data`` is provided a QAT fine-tuning pass runs on the clone;
    otherwise the clone is post-training quantized only.
    """
    clone = model.clone()
    if data is None:
        attach_quantizers(clone, weight_bits)
        return clone
    quantize_aware_train(
        clone,
        data,
        QATConfig(weight_bits=weight_bits, epochs=epochs),
        seed=seed,
    )
    return clone


def weight_bits_used(model: MLP) -> List[Optional[int]]:
    """Bit-widths of the quantizers attached to each Dense layer (None = float)."""
    bits: List[Optional[int]] = []
    for layer in model.dense_layers:
        quantizer = layer.weight_quantizer
        bits.append(getattr(quantizer, "bits", None) if quantizer is not None else None)
    return bits


def quantization_snr(model: MLP) -> float:
    """Signal-to-quantization-noise ratio (dB) over all Dense weights.

    Infinite when no quantizer is attached or the weights are exactly
    representable.
    """
    signal = 0.0
    noise = 0.0
    for layer in model.dense_layers:
        w = layer.weights if layer.mask is None else layer.weights * layer.mask
        effective = layer.effective_weights()
        signal += float(np.sum(w * w))
        noise += float(np.sum((w - effective) ** 2))
    if noise == 0.0:
        return float("inf")
    return float(10.0 * np.log10(signal / noise)) if signal > 0 else float("-inf")
