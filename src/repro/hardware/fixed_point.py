"""Fixed-point conversion between float weights and hard-wired integers.

The bespoke circuit generator and the quantization package must agree on the
mapping from float weights to the integer coefficients that get hard-wired:
this module is that single source of truth. Weights use a symmetric signed
representation with ``bits`` total bits (one sign bit), scaled so the largest
magnitude weight maps onto the largest representable integer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


def max_symmetric_level(bits: int) -> int:
    """Largest representable magnitude for a signed ``bits``-bit weight."""
    if bits < 2:
        raise ValueError(f"Symmetric quantization needs at least 2 bits, got {bits}")
    return (1 << (bits - 1)) - 1


@dataclass(frozen=True)
class FixedPointFormat:
    """A symmetric fixed-point weight format.

    Attributes:
        bits: total bit-width including the sign bit.
        scale: float value of one integer step (``quantized = round(w / scale)``).
    """

    bits: int
    scale: float

    def __post_init__(self) -> None:
        if self.bits < 2:
            raise ValueError(f"bits must be >= 2, got {self.bits}")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    @property
    def max_level(self) -> int:
        return max_symmetric_level(self.bits)

    def to_integers(self, weights: np.ndarray) -> np.ndarray:
        """Map float weights to clipped integer levels."""
        weights = np.asarray(weights, dtype=np.float64)
        levels = np.round(weights / self.scale)
        return np.clip(levels, -self.max_level, self.max_level).astype(np.int64)

    def to_floats(self, integers: np.ndarray) -> np.ndarray:
        """Map integer levels back to their float values."""
        return np.asarray(integers, dtype=np.float64) * self.scale


def derive_scale(max_abs: float, max_level: "int | float") -> float:
    """Scale mapping ``max_abs`` onto ``max_level`` (1.0 for degenerate tensors).

    The single source of truth for the symmetric-quantization scale formula:
    :func:`derive_format`, :meth:`repro.quantization.SymmetricQuantizer.__call__`
    and the trainer's packed per-step quantization all call it, so they can
    never diverge. An all-zero tensor gets scale 1.0 (any scale represents it
    exactly); a subnormal ``max_abs`` can underflow the division to exactly 0,
    in which case every level is zero anyway and 1.0 is used as well.
    """
    scale = max_abs / max_level if max_abs > 0 else 1.0
    if scale == 0.0:
        scale = 1.0
    return scale


def derive_format(weights: np.ndarray, bits: int) -> FixedPointFormat:
    """Choose the scale so the largest |weight| lands on the largest level."""
    weights = np.asarray(weights, dtype=np.float64)
    max_level = max_symmetric_level(bits)
    max_abs = float(np.max(np.abs(weights))) if weights.size else 0.0
    return FixedPointFormat(bits=bits, scale=derive_scale(max_abs, max_level))


def quantize_to_fixed_point(
    weights: np.ndarray, bits: int
) -> Tuple[np.ndarray, FixedPointFormat]:
    """Quantize float weights: returns (fake-quantized floats, format).

    The fake-quantized floats are exactly ``format.to_floats(format.to_integers(w))``
    so the float model and the integer circuit compute identical products up
    to the shared scale factor.
    """
    fmt = derive_format(weights, bits)
    integers = fmt.to_integers(weights)
    return fmt.to_floats(integers), fmt


def weights_to_integers(weights: np.ndarray, bits: int) -> Tuple[np.ndarray, FixedPointFormat]:
    """Convenience wrapper returning the integer levels and their format."""
    fmt = derive_format(weights, bits)
    return fmt.to_integers(weights), fmt


def quantization_error(weights: np.ndarray, bits: int) -> float:
    """Root-mean-square error introduced by ``bits``-bit symmetric quantization."""
    quantized, _ = quantize_to_fixed_point(weights, bits)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.size == 0:
        return 0.0
    return float(np.sqrt(np.mean((weights - quantized) ** 2)))
