"""Energy and battery-lifetime analysis for printed bespoke classifiers.

The paper's motivation is that printed devices must "operate under tight
battery requirements": area is the headline metric, but the same bespoke
designs are also evaluated for power. This module turns the synthesis
reports' power/delay figures into the quantities a printed-system designer
actually budgets:

* energy per classification (power x critical-path delay, the circuits are
  combinational and can be power-gated between samples),
* average power at a given classification rate plus standby leakage,
* lifetime on a printed battery of a given capacity,
* power/energy breakdowns and gains relative to the baseline design.

Printed energy sources are tiny: the defaults below follow the printed
battery / energy-harvesting figures used in the printed-classifier
literature (a few mWh of capacity, sub-mW harvesting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..bespoke.report import SynthesisReport

#: Capacity of a typical small printed battery, in milliwatt-hours.
DEFAULT_PRINTED_BATTERY_MWH: float = 10.0

#: Fraction of the active power a power-gated bespoke circuit still draws
#: when idle (printed transistors leak comparatively little; the interface
#: registers dominate standby consumption).
DEFAULT_STANDBY_FRACTION: float = 0.02


@dataclass(frozen=True)
class EnergyProfile:
    """Energy behaviour of one synthesized design at a given duty cycle.

    Attributes:
        energy_per_inference: energy of one classification in µJ.
        average_power: average power in µW at the requested rate.
        inferences_per_second: the classification rate the profile assumes.
        duty_cycle: fraction of time the circuit is actively evaluating.
        battery_life_hours: lifetime on the configured printed battery.
        standby_power: idle power in µW.
    """

    energy_per_inference: float
    average_power: float
    inferences_per_second: float
    duty_cycle: float
    battery_life_hours: float
    standby_power: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "energy_per_inference_uj": self.energy_per_inference,
            "average_power_uw": self.average_power,
            "inferences_per_second": self.inferences_per_second,
            "duty_cycle": self.duty_cycle,
            "battery_life_hours": self.battery_life_hours,
            "standby_power_uw": self.standby_power,
        }


def energy_per_inference(report: SynthesisReport) -> float:
    """Energy of one classification in µJ (power µW x delay µs / 1e6)."""
    return report.power * report.delay / 1e6


def energy_profile(
    report: SynthesisReport,
    inferences_per_second: float = 1.0,
    battery_mwh: float = DEFAULT_PRINTED_BATTERY_MWH,
    standby_fraction: float = DEFAULT_STANDBY_FRACTION,
) -> EnergyProfile:
    """Compute the energy profile of a design at a given classification rate.

    Args:
        report: synthesis report of the design.
        inferences_per_second: how often the classifier is evaluated. Printed
            sensor applications are slow (one evaluation per second or less).
        battery_mwh: printed-battery capacity in mWh.
        standby_fraction: idle power as a fraction of active power.

    Raises:
        ValueError: if the requested rate cannot be sustained (the circuit's
            critical path is longer than the sample period) or arguments are
            out of range.
    """
    if inferences_per_second <= 0:
        raise ValueError("inferences_per_second must be positive")
    if battery_mwh <= 0:
        raise ValueError("battery_mwh must be positive")
    if not 0.0 <= standby_fraction <= 1.0:
        raise ValueError("standby_fraction must be in [0, 1]")

    period_us = 1e6 / inferences_per_second
    if report.delay > period_us:
        raise ValueError(
            f"Classification rate {inferences_per_second} /s is unreachable: "
            f"critical path is {report.delay:.0f} us but the period is {period_us:.0f} us"
        )
    duty_cycle = report.delay / period_us
    standby_power = report.power * standby_fraction
    average_power = report.power * duty_cycle + standby_power * (1.0 - duty_cycle)
    battery_uwh = battery_mwh * 1000.0
    battery_life_hours = battery_uwh / average_power if average_power > 0 else float("inf")
    return EnergyProfile(
        energy_per_inference=energy_per_inference(report),
        average_power=average_power,
        inferences_per_second=inferences_per_second,
        duty_cycle=duty_cycle,
        battery_life_hours=battery_life_hours,
        standby_power=standby_power,
    )


def max_inference_rate(report: SynthesisReport) -> float:
    """Highest sustainable classification rate (1 / critical-path delay), in Hz."""
    if report.delay <= 0:
        return float("inf")
    return 1e6 / report.delay


def power_breakdown(report: SynthesisReport) -> Dict[str, float]:
    """Fraction of total power per component kind."""
    if report.power <= 0:
        return {kind: 0.0 for kind in report.by_kind}
    return {kind: cost.power / report.power for kind, cost in report.by_kind.items()}


def energy_gain(
    minimized: SynthesisReport, baseline: SynthesisReport
) -> Dict[str, float]:
    """Power / energy / rate improvements of a minimized design over the baseline."""
    if baseline.power <= 0 or baseline.delay <= 0:
        raise ValueError("Baseline power and delay must be positive")
    return {
        "power_gain": baseline.power / minimized.power if minimized.power > 0 else float("inf"),
        "energy_gain": (
            energy_per_inference(baseline) / energy_per_inference(minimized)
            if energy_per_inference(minimized) > 0
            else float("inf")
        ),
        "speedup": baseline.delay / minimized.delay if minimized.delay > 0 else float("inf"),
    }


def battery_life_comparison(
    minimized: SynthesisReport,
    baseline: SynthesisReport,
    inferences_per_second: float = 1.0,
    battery_mwh: float = DEFAULT_PRINTED_BATTERY_MWH,
) -> Dict[str, float]:
    """Battery lifetime (hours) of both designs at the same classification rate."""
    baseline_profile = energy_profile(
        baseline, inferences_per_second=inferences_per_second, battery_mwh=battery_mwh
    )
    minimized_profile = energy_profile(
        minimized, inferences_per_second=inferences_per_second, battery_mwh=battery_mwh
    )
    return {
        "baseline_hours": baseline_profile.battery_life_hours,
        "minimized_hours": minimized_profile.battery_life_hours,
        "lifetime_gain": (
            minimized_profile.battery_life_hours / baseline_profile.battery_life_hours
            if baseline_profile.battery_life_hours > 0
            else float("inf")
        ),
    }
