"""Printed-technology standard-cell libraries.

The paper synthesizes its bespoke MLPs with Synopsys Design Compiler against
the open Electrolyte-Gated-Transistor (EGT) library of Bleier et al. (ISCA
2020). That flow is replaced here by an analytical model built on a small
standard-cell library: each cell carries an area (mm²), a power (µW) and a
delay (µs) figure, and the arithmetic cost models in
:mod:`repro.hardware.arithmetic` compose them into multipliers, adder trees,
comparators, etc.

The EGT numbers below are calibration constants chosen to reflect the
*relative* sizes of printed cells (inverters small, full adders and flip-
flops an order of magnitude larger, everything in the multi-10⁻² mm² regime,
microsecond-scale delays, sub-µW power). Absolute values do not need to match
the proprietary characterization because every figure in the paper — and in
this reproduction — is normalized to the un-minimized baseline built from the
same library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from .cost import HardwareCost


@dataclass(frozen=True)
class CellSpec:
    """Characterization of a single standard cell.

    Attributes:
        name: cell name (e.g. ``"NAND2"``).
        area: cell area in mm².
        power: average power in µW at the library's nominal activity.
        delay: propagation delay in µs.
    """

    name: str
    area: float
    power: float
    delay: float

    def __post_init__(self) -> None:
        if self.area <= 0 or self.power < 0 or self.delay < 0:
            raise ValueError(f"Invalid cell characterization for {self.name}")

    def cost(self, count: int = 1) -> HardwareCost:
        """Hardware cost of ``count`` parallel instances of this cell."""
        if count < 0:
            raise ValueError(f"Cell count must be non-negative, got {count}")
        if count == 0:
            return HardwareCost.zero()
        return HardwareCost(
            area=self.area * count,
            power=self.power * count,
            delay=self.delay,
            gate_counts={self.name: count},
        )


class TechnologyLibrary:
    """A named collection of :class:`CellSpec` entries.

    Args:
        name: library identifier (e.g. ``"EGT"``).
        cells: mapping from cell name to its spec.
        description: free-form provenance note.
    """

    #: Cell names every library must provide (the arithmetic models rely on them).
    REQUIRED_CELLS: Tuple[str, ...] = (
        "INV",
        "NAND2",
        "NOR2",
        "AND2",
        "OR2",
        "XOR2",
        "XNOR2",
        "MUX2",
        "HA",
        "FA",
        "DFF",
    )

    def __init__(
        self,
        name: str,
        cells: Mapping[str, CellSpec],
        description: str = "",
    ) -> None:
        missing = [c for c in self.REQUIRED_CELLS if c not in cells]
        if missing:
            raise ValueError(f"Technology '{name}' is missing required cells: {missing}")
        self.name = name
        self.description = description
        self._cells: Dict[str, CellSpec] = dict(cells)
        self._cache_key: "Tuple[object, ...] | None" = None

    def cell(self, name: str) -> CellSpec:
        """Look up a cell spec by name.

        Raises:
            KeyError: if the cell is not in the library.
        """
        if name not in self._cells:
            raise KeyError(
                f"Cell '{name}' not in technology '{self.name}'. "
                f"Available: {sorted(self._cells)}"
            )
        return self._cells[name]

    def cost(self, cell_name: str, count: int = 1) -> HardwareCost:
        """Cost of ``count`` instances of ``cell_name``."""
        return self.cell(cell_name).cost(count)

    def cell_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._cells))

    @property
    def cache_key(self) -> Tuple[object, ...]:
        """Hashable identity of the library's full characterization.

        Two libraries with the same name but different cell numbers get
        distinct keys, so the memoized cost kernels in
        :mod:`repro.hardware.arithmetic` can never serve stale entries.
        Libraries are treated as immutable after construction (nothing in
        the code base mutates ``_cells``).
        """
        if self._cache_key is None:
            self._cache_key = (self.name,) + tuple(
                (cell_name, spec.area, spec.power, spec.delay)
                for cell_name, spec in sorted(self._cells.items())
            )
        return self._cache_key

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TechnologyLibrary({self.name!r}, {len(self._cells)} cells)"


def _build_library(
    name: str, raw: Mapping[str, Tuple[float, float, float]], description: str
) -> TechnologyLibrary:
    cells = {
        cell_name: CellSpec(cell_name, area=a, power=p, delay=d)
        for cell_name, (a, p, d) in raw.items()
    }
    return TechnologyLibrary(name, cells, description)


#: EGT-like printed technology. (area mm², power µW, delay µs)
_EGT_CELLS: Dict[str, Tuple[float, float, float]] = {
    "INV": (0.0040, 0.020, 20.0),
    "NAND2": (0.0060, 0.028, 25.0),
    "NOR2": (0.0060, 0.028, 25.0),
    "AND2": (0.0072, 0.034, 30.0),
    "OR2": (0.0072, 0.034, 30.0),
    "XOR2": (0.0130, 0.062, 45.0),
    "XNOR2": (0.0130, 0.062, 45.0),
    "MUX2": (0.0118, 0.055, 40.0),
    "HA": (0.0205, 0.096, 55.0),
    "FA": (0.0410, 0.190, 80.0),
    "DFF": (0.0430, 0.210, 90.0),
}

#: A conventional low-cost silicon node, included for cross-technology studies.
_SILICON_CELLS: Dict[str, Tuple[float, float, float]] = {
    "INV": (1.0e-6, 0.010, 0.00005),
    "NAND2": (1.4e-6, 0.014, 0.00006),
    "NOR2": (1.4e-6, 0.014, 0.00006),
    "AND2": (1.8e-6, 0.016, 0.00008),
    "OR2": (1.8e-6, 0.016, 0.00008),
    "XOR2": (3.0e-6, 0.028, 0.00010),
    "XNOR2": (3.0e-6, 0.028, 0.00010),
    "MUX2": (2.6e-6, 0.024, 0.00009),
    "HA": (4.6e-6, 0.042, 0.00012),
    "FA": (9.0e-6, 0.082, 0.00018),
    "DFF": (9.6e-6, 0.090, 0.00020),
}


def egt_library() -> TechnologyLibrary:
    """The Electrolyte-Gated-Transistor printed library used by the paper."""
    return _build_library(
        "EGT",
        _EGT_CELLS,
        description=(
            "Analytical stand-in for the open EGT library (Bleier et al., ISCA 2020) "
            "used via Synopsys DC/PrimeTime in the paper."
        ),
    )


def silicon_library() -> TechnologyLibrary:
    """A generic silicon node for cross-technology comparison studies."""
    return _build_library(
        "SILICON",
        _SILICON_CELLS,
        description="Generic bulk-CMOS node used only for relative comparisons.",
    )


_LIBRARIES = {
    "egt": egt_library,
    "silicon": silicon_library,
}


def get_technology(name: str = "egt") -> TechnologyLibrary:
    """Look up a technology library by name (``"egt"`` or ``"silicon"``)."""
    key = name.strip().lower()
    if key not in _LIBRARIES:
        raise KeyError(f"Unknown technology '{name}'. Available: {sorted(_LIBRARIES)}")
    return _LIBRARIES[key]()
