"""Gate-level cost models for the arithmetic blocks of bespoke MLPs.

These models replace the Synopsys DC + PrimeTime synthesis flow of the
paper. Each function returns a :class:`~repro.hardware.cost.HardwareCost`
built from the cells of a :class:`~repro.hardware.technology.TechnologyLibrary`.

The blocks are exactly those a bespoke (hard-wired coefficient) MLP needs:

* constant-coefficient multipliers (CSD shift-add networks),
* ripple-carry adders and multi-operand adder trees,
* ReLU gating, comparators and the argmax selection tree of the output layer,
* registers for the input/output interface.
"""

from __future__ import annotations

import math

from .cost import HardwareCost
from .csd import (
    binary_adder_stages,
    coefficient_bit_length,
    csd_adder_stages,
    is_power_of_two,
)
from .technology import TechnologyLibrary


def ripple_carry_adder(width: int, tech: TechnologyLibrary) -> HardwareCost:
    """A ``width``-bit ripple-carry adder: one full adder per bit.

    The delay is the full carry-propagation chain, which is what dominates
    the (very relaxed) timing of printed circuits.
    """
    if width <= 0:
        raise ValueError(f"Adder width must be positive, got {width}")
    fa = tech.cell("FA")
    return HardwareCost(
        area=fa.area * width,
        power=fa.power * width,
        delay=fa.delay * width,
        gate_counts={"FA": width},
    )


def subtractor(width: int, tech: TechnologyLibrary) -> HardwareCost:
    """Two's-complement subtractor: an adder plus one inverter per bit."""
    adder = ripple_carry_adder(width, tech)
    inverters = tech.cost("INV", width)
    return adder.serial(inverters)


def constant_multiplier(
    coefficient: int,
    input_bits: int,
    tech: TechnologyLibrary,
    method: str = "csd",
) -> HardwareCost:
    """Constant-coefficient multiplier implemented as a shift-add network.

    Args:
        coefficient: the hard-wired integer coefficient (may be negative).
        input_bits: unsigned bit-width of the multiplied input.
        tech: technology library supplying the cell costs.
        method: ``"csd"`` (canonical signed digit, what synthesis achieves)
            or ``"binary"`` (naive shift-add, used by the ablation study).

    A zero coefficient costs nothing (the product is dropped), a power-of-two
    coefficient is pure wiring. Otherwise the multiplier needs
    ``nonzero_digits - 1`` adder stages whose width grows with the partial
    product: stage widths are approximated as ``input_bits`` plus the
    coefficient's magnitude bits, which matches the final product width.
    """
    if input_bits <= 0:
        raise ValueError(f"input_bits must be positive, got {input_bits}")
    if method not in ("csd", "binary"):
        raise ValueError(f"method must be 'csd' or 'binary', got '{method}'")
    coefficient = int(coefficient)
    if coefficient == 0:
        return HardwareCost.zero()
    if is_power_of_two(coefficient) and coefficient > 0:
        # A pure left shift: wiring only.
        return HardwareCost.zero()

    stages = (
        csd_adder_stages(coefficient)
        if method == "csd"
        else binary_adder_stages(coefficient)
    )
    product_width = input_bits + coefficient_bit_length(coefficient)
    if coefficient < 0 and stages == 0:
        # A negative power of two: the negation is folded into the consuming
        # adder tree (subtraction), charge one inverter row for the complement.
        return tech.cost("INV", product_width)

    cost = HardwareCost.zero()
    for _ in range(stages):
        cost = cost.serial(ripple_carry_adder(product_width, tech))
    return cost


def adder_tree(
    n_operands: int, operand_width: int, tech: TechnologyLibrary
) -> HardwareCost:
    """Balanced adder tree summing ``n_operands`` values of ``operand_width`` bits.

    The tree needs ``n_operands - 1`` adders; widths grow by one bit per
    level to accommodate carries. Zero or one operand needs no hardware.
    """
    if n_operands < 0:
        raise ValueError(f"n_operands must be non-negative, got {n_operands}")
    if operand_width <= 0:
        raise ValueError(f"operand_width must be positive, got {operand_width}")
    if n_operands <= 1:
        return HardwareCost.zero()

    cost = HardwareCost.zero()
    level_width = operand_width
    remaining = n_operands
    depth = 0
    while remaining > 1:
        adders_this_level = remaining // 2
        level_cost = ripple_carry_adder(level_width, tech).scaled(adders_this_level)
        if depth == 0:
            cost = level_cost
        else:
            # levels are serial with one another, parallel within a level
            cost = HardwareCost(
                area=cost.area + level_cost.area,
                power=cost.power + level_cost.power,
                delay=cost.delay + level_cost.delay,
                gate_counts={
                    **cost.gate_counts,
                    "FA": cost.gate_counts.get("FA", 0)
                    + level_cost.gate_counts.get("FA", 0),
                },
            )
        remaining = adders_this_level + (remaining % 2)
        level_width += 1
        depth += 1
    return cost


def adder_tree_from_widths(
    operand_widths: "list[int]", tech: TechnologyLibrary
) -> HardwareCost:
    """Adder tree over operands of heterogeneous bit-widths.

    Synthesis sizes each adder to its actual operands, so summing many narrow
    products (small hard-wired coefficients) is cheaper than the worst-case
    uniform-width estimate. The model combines the two narrowest operands
    first (Huffman-style, which is what a area-driven synthesis netlist tends
    towards); each combination costs a ripple-carry adder at the wider
    operand's width and produces a result one bit wider.
    """
    widths = sorted(int(w) for w in operand_widths)
    if any(w <= 0 for w in widths):
        raise ValueError("operand widths must be positive")
    if len(widths) <= 1:
        return HardwareCost.zero()
    total_area = 0.0
    total_power = 0.0
    total_fa = 0
    depth_delay = 0.0
    while len(widths) > 1:
        first = widths.pop(0)
        second = widths.pop(0)
        adder_width = max(first, second)
        adder = ripple_carry_adder(adder_width, tech)
        total_area += adder.area
        total_power += adder.power
        total_fa += adder_width
        depth_delay += adder.delay
        # insert the sum (one bit wider) keeping the list sorted
        result_width = adder_width + 1
        insert_at = 0
        while insert_at < len(widths) and widths[insert_at] < result_width:
            insert_at += 1
        widths.insert(insert_at, result_width)
    # Delay: a balanced tree is log-depth, not the full serial chain; scale
    # the accumulated serial delay down to the tree depth.
    n_operands = len(operand_widths)
    tree_depth = math.ceil(math.log2(n_operands)) if n_operands > 1 else 0
    serial_stages = n_operands - 1
    delay = depth_delay * (tree_depth / serial_stages) if serial_stages else 0.0
    return HardwareCost(
        area=total_area,
        power=total_power,
        delay=delay,
        gate_counts={"FA": total_fa},
    )


def relu_unit(width: int, tech: TechnologyLibrary) -> HardwareCost:
    """ReLU on a two's-complement value: sign bit gates the output bus.

    One inverter for the sign bit plus one AND gate per data bit.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    sign = tech.cost("INV", 1)
    gates = tech.cost("AND2", width)
    return sign.serial(gates)


def comparator(width: int, tech: TechnologyLibrary) -> HardwareCost:
    """Magnitude comparator (greater-than) over two ``width``-bit values.

    Modelled as a subtractor whose sign bit is the comparison result.
    """
    return subtractor(width, tech)


def argmax_unit(
    n_values: int, width: int, index_bits: int, tech: TechnologyLibrary
) -> HardwareCost:
    """Argmax over ``n_values`` scores: a linear chain of compare-and-select.

    Each of the ``n_values - 1`` stages needs a comparator, a ``width``-bit
    value multiplexer and an ``index_bits``-bit index multiplexer.
    """
    if n_values <= 0:
        raise ValueError(f"n_values must be positive, got {n_values}")
    if n_values == 1:
        return HardwareCost.zero()
    stage = comparator(width, tech).serial(tech.cost("MUX2", width + index_bits))
    cost = HardwareCost.zero()
    for _ in range(n_values - 1):
        cost = cost.serial(stage)
    return cost


def register_bank(width: int, tech: TechnologyLibrary) -> HardwareCost:
    """A bank of ``width`` flip-flops (input/output interface registers)."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return tech.cost("DFF", width)


def neuron_output_width(
    input_bits: int, weight_bits: int, n_operands: int
) -> int:
    """Bit-width of a neuron's accumulated sum.

    Product width plus ``ceil(log2(n_operands))`` carry bits plus a sign bit.
    """
    if input_bits <= 0 or weight_bits <= 0:
        raise ValueError("input_bits and weight_bits must be positive")
    if n_operands <= 0:
        return input_bits + weight_bits + 1
    growth = math.ceil(math.log2(n_operands)) if n_operands > 1 else 0
    return input_bits + weight_bits + growth + 1
