"""Gate-level cost models for the arithmetic blocks of bespoke MLPs.

These models replace the Synopsys DC + PrimeTime synthesis flow of the
paper. Each function returns a :class:`~repro.hardware.cost.HardwareCost`
built from the cells of a :class:`~repro.hardware.technology.TechnologyLibrary`.

The blocks are exactly those a bespoke (hard-wired coefficient) MLP needs:

* constant-coefficient multipliers (CSD shift-add networks),
* ripple-carry adders and multi-operand adder trees,
* ReLU gating, comparators and the argmax selection tree of the output layer,
* registers for the input/output interface.

All block costs are pure functions of their arguments, and the search inner
loop asks for the same small domain over and over (coefficients below
``2**weight_bits``, a handful of operand-width multisets per layer), so the
heavyweight entry points — :func:`constant_multiplier`,
:func:`adder_tree_from_widths`, :func:`argmax_unit` — are memoized on
``(arguments, tech.cache_key)``. The memoized values are frozen
:class:`HardwareCost` instances shared between callers; they are built by
the same float operations as the original serial folds, so cached and
uncached results are bit-identical (asserted by the property tests in
``tests/test_perf_fastpaths.py``).
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, List, Tuple

from .cost import HardwareCost
from .csd import (
    coefficient_bit_length,
    csd_stage_table,
    is_power_of_two,
)
from .technology import TechnologyLibrary

_RIPPLE_CACHE: Dict[Tuple, HardwareCost] = {}
_MULT_CACHE: Dict[Tuple, HardwareCost] = {}
_TREE_CACHE: Dict[Tuple, HardwareCost] = {}
_ARGMAX_CACHE: Dict[Tuple, HardwareCost] = {}


def clear_cost_caches() -> None:
    """Drop every memoized block cost (used by tests and benchmarks)."""
    _RIPPLE_CACHE.clear()
    _MULT_CACHE.clear()
    _TREE_CACHE.clear()
    _ARGMAX_CACHE.clear()


def _chain_totals(
    levels: Iterable[Tuple[int, int]], tech: TechnologyLibrary
) -> Tuple[float, float, float, int]:
    """Accumulated (area, power, serial delay, FA count) of ripple-adder levels.

    ``levels`` is a sequence of ``(width, count)`` pairs: ``count`` parallel
    ``width``-bit ripple-carry adders per level, levels composed serially.
    This is the shared kernel behind every adder-chain cost model
    (:func:`constant_multiplier` stages, :func:`adder_tree`,
    :func:`adder_tree_from_widths`); the accumulation order matches the
    original per-level ``HardwareCost`` folds exactly, so the floats are
    unchanged.
    """
    fa = tech.cell("FA")
    area = 0.0
    power = 0.0
    delay = 0.0
    fa_count = 0
    for width, count in levels:
        area += (fa.area * width) * count
        power += (fa.power * width) * count
        delay += fa.delay * width
        fa_count += width * count
    return area, power, delay, fa_count


def ripple_carry_adder(width: int, tech: TechnologyLibrary) -> HardwareCost:
    """A ``width``-bit ripple-carry adder: one full adder per bit.

    The delay is the full carry-propagation chain, which is what dominates
    the (very relaxed) timing of printed circuits.
    """
    if width <= 0:
        raise ValueError(f"Adder width must be positive, got {width}")
    key = (int(width), tech.cache_key)
    cached = _RIPPLE_CACHE.get(key)
    if cached is not None:
        return cached
    fa = tech.cell("FA")
    cost = HardwareCost(
        area=fa.area * width,
        power=fa.power * width,
        delay=fa.delay * width,
        gate_counts={"FA": width},
    )
    _RIPPLE_CACHE[key] = cost
    return cost


def subtractor(width: int, tech: TechnologyLibrary) -> HardwareCost:
    """Two's-complement subtractor: an adder plus one inverter per bit."""
    adder = ripple_carry_adder(width, tech)
    inverters = tech.cost("INV", width)
    return adder.serial(inverters)


def constant_multiplier(
    coefficient: int,
    input_bits: int,
    tech: TechnologyLibrary,
    method: str = "csd",
) -> HardwareCost:
    """Constant-coefficient multiplier implemented as a shift-add network.

    Args:
        coefficient: the hard-wired integer coefficient (may be negative).
        input_bits: unsigned bit-width of the multiplied input.
        tech: technology library supplying the cell costs.
        method: ``"csd"`` (canonical signed digit, what synthesis achieves)
            or ``"binary"`` (naive shift-add, used by the ablation study).

    A zero coefficient costs nothing (the product is dropped), a power-of-two
    coefficient is pure wiring. Otherwise the multiplier needs
    ``nonzero_digits - 1`` adder stages whose width grows with the partial
    product: stage widths are approximated as ``input_bits`` plus the
    coefficient's magnitude bits, which matches the final product width.

    Results are memoized on ``(coefficient, input_bits, method,
    tech.cache_key)``: one genome evaluation asks for the same few hundred
    coefficients thousands of times, and the domain is bounded by the weight
    bit-width, so the memo turns the synthesis hot loop into dict lookups.
    """
    if input_bits <= 0:
        raise ValueError(f"input_bits must be positive, got {input_bits}")
    if method not in ("csd", "binary"):
        raise ValueError(f"method must be 'csd' or 'binary', got '{method}'")
    coefficient = int(coefficient)
    key = (coefficient, int(input_bits), method, tech.cache_key)
    cached = _MULT_CACHE.get(key)
    if cached is not None:
        return cached
    cost = _constant_multiplier_uncached(coefficient, input_bits, tech, method)
    _MULT_CACHE[key] = cost
    return cost


def _constant_multiplier_uncached(
    coefficient: int,
    input_bits: int,
    tech: TechnologyLibrary,
    method: str,
) -> HardwareCost:
    """The actual multiplier cost model behind the :func:`constant_multiplier` memo."""
    if coefficient == 0:
        return HardwareCost.zero()
    if is_power_of_two(coefficient) and coefficient > 0:
        # A pure left shift: wiring only.
        return HardwareCost.zero()

    magnitude = -coefficient if coefficient < 0 else coefficient
    magnitude_bits = coefficient_bit_length(coefficient)
    # Stage counts come from the precomputed table covering the coefficient's
    # bit-width (CSD digit counts are sign-symmetric, so |c| indexes it).
    stages = int(csd_stage_table(magnitude_bits, method)[magnitude])
    product_width = input_bits + magnitude_bits
    if coefficient < 0 and stages == 0:
        # A negative power of two: the negation is folded into the consuming
        # adder tree (subtraction), charge one inverter row for the complement.
        return tech.cost("INV", product_width)

    area, power, delay, fa_count = _chain_totals(
        ((product_width, 1) for _ in range(stages)), tech
    )
    return HardwareCost(
        area=area, power=power, delay=delay, gate_counts={"FA": fa_count}
    )


def adder_tree(
    n_operands: int, operand_width: int, tech: TechnologyLibrary
) -> HardwareCost:
    """Balanced adder tree summing ``n_operands`` values of ``operand_width`` bits.

    The tree needs ``n_operands - 1`` adders; widths grow by one bit per
    level to accommodate carries. Zero or one operand needs no hardware.
    """
    if n_operands < 0:
        raise ValueError(f"n_operands must be non-negative, got {n_operands}")
    if operand_width <= 0:
        raise ValueError(f"operand_width must be positive, got {operand_width}")
    if n_operands <= 1:
        return HardwareCost.zero()

    levels: List[Tuple[int, int]] = []
    level_width = operand_width
    remaining = n_operands
    while remaining > 1:
        adders_this_level = remaining // 2
        levels.append((level_width, adders_this_level))
        remaining = adders_this_level + (remaining % 2)
        level_width += 1
    area, power, delay, fa_count = _chain_totals(levels, tech)
    return HardwareCost(
        area=area, power=power, delay=delay, gate_counts={"FA": fa_count}
    )


def adder_tree_from_widths(
    operand_widths: "list[int]", tech: TechnologyLibrary
) -> HardwareCost:
    """Adder tree over operands of heterogeneous bit-widths.

    Synthesis sizes each adder to its actual operands, so summing many narrow
    products (small hard-wired coefficients) is cheaper than the worst-case
    uniform-width estimate. The model combines the two narrowest operands
    first (Huffman-style, which is what a area-driven synthesis netlist tends
    towards); each combination costs a ripple-carry adder at the wider
    operand's width and produces a result one bit wider.

    The Huffman merge runs on a binary heap (the historical sorted-list
    ``pop(0)``/``insert`` loop was quadratic) and the result is memoized on
    the sorted width multiset, which repeats heavily across the neurons of a
    layer and across genomes.
    """
    widths = sorted(int(w) for w in operand_widths)
    if any(w <= 0 for w in widths):
        raise ValueError("operand widths must be positive")
    if len(widths) <= 1:
        return HardwareCost.zero()
    key = (tuple(widths), tech.cache_key)
    cached = _TREE_CACHE.get(key)
    if cached is not None:
        return cached

    # The merge schedule touches only operand *values*, so any tie-breaking
    # between equal widths yields the same (width, 1) sequence; a heap gives
    # it in O(n log n).
    heap = list(widths)  # already sorted => a valid min-heap
    merges: List[Tuple[int, int]] = []
    while len(heap) > 1:
        first = heapq.heappop(heap)
        second = heapq.heappop(heap)
        adder_width = second if second > first else first
        merges.append((adder_width, 1))
        heapq.heappush(heap, adder_width + 1)
    total_area, total_power, depth_delay, total_fa = _chain_totals(merges, tech)

    # Delay: a balanced tree is log-depth, not the full serial chain; scale
    # the accumulated serial delay down to the tree depth.
    n_operands = len(operand_widths)
    tree_depth = math.ceil(math.log2(n_operands)) if n_operands > 1 else 0
    serial_stages = n_operands - 1
    delay = depth_delay * (tree_depth / serial_stages) if serial_stages else 0.0
    cost = HardwareCost(
        area=total_area,
        power=total_power,
        delay=delay,
        gate_counts={"FA": total_fa},
    )
    _TREE_CACHE[key] = cost
    return cost


def relu_unit(width: int, tech: TechnologyLibrary) -> HardwareCost:
    """ReLU on a two's-complement value: sign bit gates the output bus.

    One inverter for the sign bit plus one AND gate per data bit.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    sign = tech.cost("INV", 1)
    gates = tech.cost("AND2", width)
    return sign.serial(gates)


def comparator(width: int, tech: TechnologyLibrary) -> HardwareCost:
    """Magnitude comparator (greater-than) over two ``width``-bit values.

    Modelled as a subtractor whose sign bit is the comparison result.
    """
    return subtractor(width, tech)


def argmax_unit(
    n_values: int, width: int, index_bits: int, tech: TechnologyLibrary
) -> HardwareCost:
    """Argmax over ``n_values`` scores: a linear chain of compare-and-select.

    Each of the ``n_values - 1`` stages needs a comparator, a ``width``-bit
    value multiplexer and an ``index_bits``-bit index multiplexer. The chain
    is a serial fold of one fixed stage cost; it is accumulated in scalars
    (identical float sequence to composing ``HardwareCost.serial``
    repeatedly) and memoized.
    """
    if n_values <= 0:
        raise ValueError(f"n_values must be positive, got {n_values}")
    if n_values == 1:
        return HardwareCost.zero()
    key = (int(n_values), int(width), int(index_bits), tech.cache_key)
    cached = _ARGMAX_CACHE.get(key)
    if cached is not None:
        return cached
    stage = comparator(width, tech).serial(tech.cost("MUX2", width + index_bits))
    area = 0.0
    power = 0.0
    delay = 0.0
    for _ in range(n_values - 1):
        area += stage.area
        power += stage.power
        delay += stage.delay
    gate_counts = {
        cell: count * (n_values - 1) for cell, count in stage.gate_counts.items()
    }
    cost = HardwareCost(area=area, power=power, delay=delay, gate_counts=gate_counts)
    _ARGMAX_CACHE[key] = cost
    return cost


def register_bank(width: int, tech: TechnologyLibrary) -> HardwareCost:
    """A bank of ``width`` flip-flops (input/output interface registers)."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return tech.cost("DFF", width)


def neuron_output_width(
    input_bits: int, weight_bits: int, n_operands: int
) -> int:
    """Bit-width of a neuron's accumulated sum.

    Product width plus ``ceil(log2(n_operands))`` carry bits plus a sign bit.
    """
    if input_bits <= 0 or weight_bits <= 0:
        raise ValueError("input_bits and weight_bits must be positive")
    if n_operands <= 0:
        return input_bits + weight_bits + 1
    growth = math.ceil(math.log2(n_operands)) if n_operands > 1 else 0
    return input_bits + weight_bits + growth + 1
