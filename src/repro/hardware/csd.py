"""Canonical Signed Digit (CSD) encoding of constant coefficients.

In a bespoke MLP every multiplier has a constant coefficient, so it is
implemented as a shift-add network: one adder (or subtractor) per non-zero
digit of the coefficient beyond the first. The CSD recoding minimizes the
number of non-zero digits (no two adjacent digits are non-zero), which is
what a synthesis tool effectively does when it optimizes a constant
multiplication. The area model therefore charges ``nonzero_digits - 1``
adder stages per multiplier, and zero or power-of-two coefficients are free.
"""

from __future__ import annotations

from typing import List


def to_csd(value: int) -> List[int]:
    """Return the CSD digit list of ``value`` (LSB first, digits in {-1, 0, 1}).

    The representation satisfies ``sum(d * 2**i) == value`` and contains no
    two adjacent non-zero digits.
    """
    value = int(value)
    if value == 0:
        return [0]
    negative = value < 0
    magnitude = -value if negative else value

    digits: List[int] = []
    while magnitude > 0:
        if magnitude & 1:
            # non-adjacent form: pick +1 or -1 so the remaining value is
            # divisible by 4, which forces the next digit to be zero
            remainder = 2 - (magnitude % 4)
            digits.append(remainder)
            magnitude -= remainder
        else:
            digits.append(0)
        magnitude >>= 1
    if negative:
        digits = [-d for d in digits]
    return digits


def from_csd(digits: List[int]) -> int:
    """Inverse of :func:`to_csd`: rebuild the integer from its digit list."""
    value = 0
    for position, digit in enumerate(digits):
        if digit not in (-1, 0, 1):
            raise ValueError(f"CSD digits must be in {{-1, 0, 1}}, got {digit}")
        value += digit << position
    return value


def csd_nonzero_digits(value: int) -> int:
    """Number of non-zero digits in the CSD representation of ``value``."""
    return sum(1 for d in to_csd(value) if d != 0)


def binary_nonzero_digits(value: int) -> int:
    """Number of set bits of ``|value|`` (the naive shift-add decomposition)."""
    return bin(abs(int(value))).count("1")


def csd_adder_stages(value: int) -> int:
    """Adder/subtractor stages needed for a CSD shift-add constant multiplier.

    Zero and power-of-two coefficients need no adders (pure wiring / shift);
    otherwise one stage per non-zero digit beyond the first.
    """
    nonzero = csd_nonzero_digits(value)
    return max(nonzero - 1, 0)


def binary_adder_stages(value: int) -> int:
    """Adder stages for the naive binary shift-add decomposition."""
    nonzero = binary_nonzero_digits(value)
    return max(nonzero - 1, 0)


def is_power_of_two(value: int) -> bool:
    """True when ``|value|`` is a power of two (multiplication is a pure shift)."""
    magnitude = abs(int(value))
    return magnitude > 0 and (magnitude & (magnitude - 1)) == 0


def coefficient_bit_length(value: int) -> int:
    """Number of magnitude bits needed to represent ``value``."""
    return int(abs(int(value))).bit_length()
