"""Canonical Signed Digit (CSD) encoding of constant coefficients.

In a bespoke MLP every multiplier has a constant coefficient, so it is
implemented as a shift-add network: one adder (or subtractor) per non-zero
digit of the coefficient beyond the first. The CSD recoding minimizes the
number of non-zero digits (no two adjacent digits are non-zero), which is
what a synthesis tool effectively does when it optimizes a constant
multiplication. The area model therefore charges ``nonzero_digits - 1``
adder stages per multiplier, and zero or power-of-two coefficients are free.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

import numpy as np


def to_csd(value: int) -> List[int]:
    """Return the CSD digit list of ``value`` (LSB first, digits in {-1, 0, 1}).

    The representation satisfies ``sum(d * 2**i) == value`` and contains no
    two adjacent non-zero digits.
    """
    value = int(value)
    if value == 0:
        return [0]
    negative = value < 0
    magnitude = -value if negative else value

    digits: List[int] = []
    while magnitude > 0:
        if magnitude & 1:
            # non-adjacent form: pick +1 or -1 so the remaining value is
            # divisible by 4, which forces the next digit to be zero
            remainder = 2 - (magnitude % 4)
            digits.append(remainder)
            magnitude -= remainder
        else:
            digits.append(0)
        magnitude >>= 1
    if negative:
        digits = [-d for d in digits]
    return digits


def from_csd(digits: List[int]) -> int:
    """Inverse of :func:`to_csd`: rebuild the integer from its digit list."""
    value = 0
    for position, digit in enumerate(digits):
        if digit not in (-1, 0, 1):
            raise ValueError(f"CSD digits must be in {{-1, 0, 1}}, got {digit}")
        value += digit << position
    return value


@lru_cache(maxsize=None)
def csd_nonzero_digits(value: int) -> int:
    """Number of non-zero digits in the CSD representation of ``value``.

    Memoized: the constant-multiplier cost model queries the same small
    coefficient domain (|value| < 2**weight_bits) for every genome.
    """
    return sum(1 for d in to_csd(value) if d != 0)


def binary_nonzero_digits(value: int) -> int:
    """Number of set bits of ``|value|`` (the naive shift-add decomposition)."""
    return bin(abs(int(value))).count("1")


def csd_adder_stages(value: int) -> int:
    """Adder/subtractor stages needed for a CSD shift-add constant multiplier.

    Zero and power-of-two coefficients need no adders (pure wiring / shift);
    otherwise one stage per non-zero digit beyond the first.
    """
    nonzero = csd_nonzero_digits(int(value))
    return max(nonzero - 1, 0)


def binary_adder_stages(value: int) -> int:
    """Adder stages for the naive binary shift-add decomposition."""
    nonzero = binary_nonzero_digits(value)
    return max(nonzero - 1, 0)


@lru_cache(maxsize=None)
def _stage_table(max_bits: int, method: str) -> "np.ndarray":
    """Adder-stage counts for every magnitude representable in ``max_bits`` bits.

    Table entry ``t[m]`` is ``csd_adder_stages(m)`` (or the binary variant)
    for ``0 <= m < 2**max_bits``. Built once per bit-width and cached, so the
    per-weight cost of the synthesis hot loop is an array lookup.
    """
    limit = 1 << max_bits
    stages = (
        csd_adder_stages if method == "csd" else binary_adder_stages
    )
    return np.array([stages(m) for m in range(limit)], dtype=np.int64)


def csd_stage_table(max_bits: int, method: str = "csd") -> "np.ndarray":
    """Precomputed adder-stage table for magnitudes ``0 .. 2**max_bits - 1``.

    Args:
        max_bits: magnitude bit-width the table must cover (the maximum
            weight bit-width of the circuit being costed).
        method: ``"csd"`` or ``"binary"``, matching
            :func:`csd_adder_stages` / :func:`binary_adder_stages`.

    Returns a read-only int64 array; callers must not mutate it.
    """
    if max_bits < 1:
        raise ValueError(f"max_bits must be positive, got {max_bits}")
    if method not in ("csd", "binary"):
        raise ValueError(f"method must be 'csd' or 'binary', got '{method}'")
    table = _stage_table(int(max_bits), method)
    table.setflags(write=False)
    return table


def is_power_of_two(value: int) -> bool:
    """True when ``|value|`` is a power of two (multiplication is a pure shift)."""
    magnitude = abs(int(value))
    return magnitude > 0 and (magnitude & (magnitude - 1)) == 0


def coefficient_bit_length(value: int) -> int:
    """Number of magnitude bits needed to represent ``value``."""
    return int(abs(int(value))).bit_length()
