"""Hardware cost records.

Every cost model in :mod:`repro.hardware` and every circuit block in
:mod:`repro.bespoke` returns a :class:`HardwareCost`: area, power, delay and
a gate-count breakdown. Costs compose with ``+`` (parallel composition: areas
and powers add, delays take the max unless combined serially with
:meth:`HardwareCost.serial`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping


@dataclass(frozen=True)
class HardwareCost:
    """Area / power / delay / gate-count bundle.

    Attributes:
        area: silicon (printed foil) area in mm².
        power: total power in µW.
        delay: propagation delay in µs along the block's critical path.
        gate_counts: number of standard-cell instances per cell name.
    """

    area: float = 0.0
    power: float = 0.0
    delay: float = 0.0
    gate_counts: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.area < 0 or self.power < 0 or self.delay < 0:
            raise ValueError(
                f"HardwareCost components must be non-negative, got "
                f"area={self.area}, power={self.power}, delay={self.delay}"
            )
        object.__setattr__(self, "gate_counts", dict(self.gate_counts))

    # -- composition -----------------------------------------------------------

    def __add__(self, other: "HardwareCost") -> "HardwareCost":
        """Parallel composition: areas and powers add, delay is the max."""
        if not isinstance(other, HardwareCost):
            return NotImplemented
        return HardwareCost(
            area=self.area + other.area,
            power=self.power + other.power,
            delay=max(self.delay, other.delay),
            gate_counts=_merge_counts(self.gate_counts, other.gate_counts),
        )

    def __radd__(self, other: object) -> "HardwareCost":
        # Allows ``sum(costs)`` which starts from the int 0.
        if other == 0:
            return self
        return NotImplemented  # pragma: no cover - defensive

    def serial(self, other: "HardwareCost") -> "HardwareCost":
        """Serial composition: areas, powers *and* delays add."""
        return HardwareCost(
            area=self.area + other.area,
            power=self.power + other.power,
            delay=self.delay + other.delay,
            gate_counts=_merge_counts(self.gate_counts, other.gate_counts),
        )

    def scaled(self, factor: float) -> "HardwareCost":
        """Replicate the block ``factor`` times in parallel (delay unchanged)."""
        if factor < 0:
            raise ValueError(f"Scale factor must be non-negative, got {factor}")
        return HardwareCost(
            area=self.area * factor,
            power=self.power * factor,
            delay=self.delay,
            gate_counts={k: int(round(v * factor)) for k, v in self.gate_counts.items()},
        )

    # -- queries ----------------------------------------------------------------

    @property
    def total_gates(self) -> int:
        """Total number of standard-cell instances."""
        return int(sum(self.gate_counts.values()))

    def is_zero(self) -> bool:
        """True when the block contributes no hardware at all."""
        return self.area == 0.0 and self.power == 0.0 and self.total_gates == 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "area": self.area,
            "power": self.power,
            "delay": self.delay,
            "gate_counts": dict(self.gate_counts),
        }

    @staticmethod
    def zero() -> "HardwareCost":
        """The identity element for composition."""
        return HardwareCost()


def _merge_counts(a: Mapping[str, int], b: Mapping[str, int]) -> Dict[str, int]:
    merged = dict(a)
    for key, value in b.items():
        merged[key] = merged.get(key, 0) + value
    return merged
