"""Cluster-count sweeps: the weight-clustering Pareto curve of Figure 1.

The paper produces its clustering Pareto points by "executing the algorithm
[Deep Compression] for a selected range of clusters". Each cluster budget is
evaluated independently from a fresh clone of the trained baseline:
cluster → fine-tune → re-project → measure accuracy → synthesize.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..bespoke.circuit import BespokeConfig
from ..bespoke.synthesis import synthesize
from ..core.results import DesignPoint
from ..datasets.preprocessing import PreparedData
from ..hardware.technology import TechnologyLibrary
from ..nn.network import MLP
from .weight_clustering import cluster_and_finetune

#: Cluster budgets examined by the clustering sweep (per input position).
PAPER_CLUSTER_RANGE: Sequence[int] = (2, 3, 4, 6, 8)


def clustering_sweep(
    model: MLP,
    data: PreparedData,
    cluster_range: Sequence[int] = PAPER_CLUSTER_RANGE,
    input_bits: int = 4,
    weight_bits: int = 8,
    finetune_epochs: int = 15,
    per_position: bool = True,
    tech: Optional[TechnologyLibrary] = None,
    seed: Optional[int] = None,
) -> List[DesignPoint]:
    """Evaluate one clustered design per cluster budget.

    Args:
        model: trained float baseline (cloned per budget).
        data: prepared dataset split.
        cluster_range: cluster budgets per input position.
        input_bits: circuit input bit-width.
        weight_bits: weight bit-width (clustering alone keeps the baseline's
            8-bit precision; only the number of distinct values shrinks).
        finetune_epochs: post-clustering fine-tuning epochs.
        per_position: per-input-position clustering (the paper's scheme).
        tech: technology library for synthesis.
        seed: clustering / fine-tuning seed.
    """
    points: List[DesignPoint] = []
    for n_clusters in cluster_range:
        candidate = model.clone()
        result = cluster_and_finetune(
            candidate,
            data,
            int(n_clusters),
            epochs=finetune_epochs,
            seed=seed,
            per_position=per_position,
        )
        accuracy = candidate.evaluate_accuracy(data.test.features, data.test.labels)
        report = synthesize(
            candidate,
            config=BespokeConfig(input_bits=input_bits, weight_bits=weight_bits),
            tech=tech,
            name=f"{data.train.name}_c{n_clusters}",
        )
        points.append(
            DesignPoint(
                technique="clustering",
                accuracy=float(accuracy),
                area=report.area,
                power=report.power,
                delay=report.delay,
                parameters={
                    "n_clusters": int(n_clusters),
                    "per_position": per_position,
                    "sharing_ratio": result.sharing_ratio(),
                    "weight_bits": weight_bits,
                },
                report=report,
            )
        )
    return points
