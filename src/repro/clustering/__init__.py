"""Weight clustering: 1-D k-means, per-input-position sharing, sweeps."""

from .kmeans import KMeansResult, cluster_and_replace, kmeans_1d
from .sweep import PAPER_CLUSTER_RANGE, clustering_sweep
from .weight_clustering import (
    ClusteringResult,
    LayerClustering,
    cluster_and_finetune,
    cluster_layer_weights,
    cluster_model_weights,
    distinct_products,
    reproject_clusters,
)

__all__ = [
    "ClusteringResult",
    "KMeansResult",
    "LayerClustering",
    "PAPER_CLUSTER_RANGE",
    "cluster_and_finetune",
    "cluster_and_replace",
    "cluster_layer_weights",
    "cluster_model_weights",
    "clustering_sweep",
    "distinct_products",
    "kmeans_1d",
    "reproject_clusters",
]
