"""One-dimensional k-means for weight clustering.

Deep-Compression-style weight clustering only ever clusters scalar weight
values, so a dedicated 1-D Lloyd's algorithm with k-means++ seeding is both
simpler and faster than a general implementation. Cluster counts in printed
MLPs are tiny (2–16), which keeps everything exact and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class KMeansResult:
    """Result of a 1-D k-means run.

    Attributes:
        centroids: sorted cluster centres, shape ``(k,)``.
        assignments: index of the centroid assigned to each input value.
        inertia: sum of squared distances to the assigned centroids.
        n_iterations: Lloyd iterations executed.
    """

    centroids: np.ndarray
    assignments: np.ndarray
    inertia: float
    n_iterations: int


def _kmeans_plus_plus_init(
    values: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding on 1-D data.

    The distance-to-nearest-centroid vector is maintained incrementally
    (one ``minimum`` against each new centroid) instead of re-reducing the
    full distance matrix per step; ``min`` is exact, so the probabilities —
    and therefore the RNG consumption — are unchanged.
    """
    centroids = np.empty(k, dtype=np.float64)
    centroids[0] = values[rng.integers(len(values))]
    distances = np.abs(values - centroids[0])
    for index in range(1, k):
        squared = distances**2
        total = squared.sum()
        if total == 0.0:
            centroids[index:] = centroids[0]
            break
        probabilities = squared / total
        centroids[index] = values[rng.choice(len(values), p=probabilities)]
        np.minimum(distances, np.abs(values - centroids[index]), out=distances)
    return centroids


def _assign(values: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    return np.argmin(np.abs(values.reshape(-1, 1) - centroids.reshape(1, -1)), axis=1)


def kmeans_1d(
    values: np.ndarray,
    n_clusters: int,
    max_iterations: int = 100,
    tolerance: float = 1e-9,
    seed: Optional[int] = None,
    init: str = "kmeans++",
) -> KMeansResult:
    """Cluster scalar values into ``n_clusters`` groups with Lloyd's algorithm.

    Args:
        values: 1-D array of values to cluster.
        n_clusters: number of clusters; clipped to the number of distinct
            values (extra clusters would stay empty).
        max_iterations: Lloyd iteration cap.
        tolerance: convergence threshold on centroid movement.
        seed: RNG seed for the initialization.
        init: ``"kmeans++"`` (default), ``"linear"`` (evenly spaced over the
            value range — the Deep Compression initialization), or
            ``"quantile"`` (evenly spaced quantiles).

    Returns:
        A :class:`KMeansResult` with centroids sorted ascending and
        assignments remapped accordingly.
    """
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if values.size == 0:
        raise ValueError("Cannot cluster an empty array")
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    if init not in ("kmeans++", "linear", "quantile"):
        raise ValueError(f"Unknown init '{init}'")

    distinct = np.unique(values)
    k = min(n_clusters, distinct.size)

    if k == distinct.size:
        centroids = distinct.astype(np.float64).copy()
    elif init == "kmeans++":
        # The generator is built lazily: the exact-codebook branch above
        # consumes no randomness, and constructing an unused generator was a
        # measurable share of the per-position clustering cost.
        centroids = _kmeans_plus_plus_init(values, k, np.random.default_rng(seed))
    elif init == "linear":
        centroids = np.linspace(values.min(), values.max(), k)
    else:  # quantile
        centroids = np.quantile(values, np.linspace(0.0, 1.0, k))

    assignments = _assign(values, centroids)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        counts = np.bincount(assignments, minlength=k)
        if int(counts.max()) < 8:
            # Vectorized centroid update. For fewer than 8 members numpy's
            # reduction is a plain sequential loop, and ``bincount`` sums
            # member values sequentially in the same (original) order, so
            # ``sums/counts`` is bit-identical to the per-cluster
            # ``members.mean()`` below; at >= 8 members numpy switches to an
            # unrolled multi-accumulator sum and only the loop is faithful.
            sums = np.bincount(assignments, weights=values, minlength=k)
            quotients = sums / np.maximum(counts, 1)
            new_centroids = np.where(counts > 0, quotients, centroids)
        else:
            new_centroids = centroids.copy()
            for cluster in range(k):
                members = values[assignments == cluster]
                if members.size:
                    # == members.mean() (same pairwise sum, same divide)
                    # without the ndarray.mean wrapper overhead.
                    new_centroids[cluster] = np.add.reduce(members) / members.size
        movement = float(np.max(np.abs(new_centroids - centroids)))
        centroids = new_centroids
        assignments = _assign(values, centroids)
        if movement < tolerance:
            break

    # Sort centroids and remap assignments for a canonical result.
    order = np.argsort(centroids)
    centroids = centroids[order]
    remap = np.empty_like(order)
    remap[order] = np.arange(k)
    assignments = remap[assignments]

    inertia = float(np.sum((values - centroids[assignments]) ** 2))
    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        inertia=inertia,
        n_iterations=iterations,
    )


def cluster_and_replace(
    values: np.ndarray,
    n_clusters: int,
    seed: Optional[int] = None,
    init: str = "kmeans++",
) -> Tuple[np.ndarray, KMeansResult]:
    """Cluster ``values`` and return them with each value replaced by its centroid."""
    original_shape = np.asarray(values).shape
    result = kmeans_1d(np.asarray(values).reshape(-1), n_clusters, seed=seed, init=init)
    replaced = result.centroids[result.assignments].reshape(original_shape)
    return replaced, result
