"""Per-input-position weight clustering for multiplier sharing.

The paper adapts Deep Compression's weight clustering to bespoke circuits:
"by forcing weights of the same position (i.e., multiplied by the same
input) to the same value, the product can be shared among many operations
and the number of the required multiplier units decreases accordingly."

Concretely, for every Dense layer and every input position ``i`` (row ``i``
of the weight matrix), the weights ``W[i, :]`` across all neurons are
clustered into ``n_clusters`` values. After clustering, input ``i`` needs at
most ``n_clusters`` constant multipliers regardless of how many neurons it
feeds. Zero weights (pruned connections) are kept at exactly zero so
clustering never undoes pruning.

Centroid fine-tuning follows Deep Compression: gradients of weights sharing
a centroid are accumulated and applied to the shared value, implemented here
by re-projecting the weights onto their cluster structure after a standard
fine-tuning pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..datasets.preprocessing import PreparedData
from ..nn.layers import Dense
from ..nn.network import MLP
from ..nn.trainer import finetune
from .kmeans import kmeans_1d


@dataclass
class LayerClustering:
    """Cluster structure of one Dense layer.

    Attributes:
        n_clusters: cluster budget per input position.
        centroids: list (one entry per input position) of centroid arrays.
        assignments: list of per-position assignment arrays (index into the
            position's centroid array), with ``-1`` marking zero weights that
            are excluded from clustering.
    """

    n_clusters: int
    centroids: List[np.ndarray] = field(default_factory=list)
    assignments: List[np.ndarray] = field(default_factory=list)

    def distinct_values_per_position(self) -> List[int]:
        """Number of distinct non-zero weight values at each input position."""
        return [int(np.unique(c).size) if c.size else 0 for c in self.centroids]


@dataclass
class ClusteringResult:
    """Summary of a whole-model clustering application."""

    n_clusters: int
    per_layer: List[LayerClustering]
    total_distinct_products: int
    total_connections: int

    def sharing_ratio(self) -> float:
        """Connections per instantiated multiplier (higher = more sharing)."""
        if self.total_distinct_products == 0:
            return float("inf") if self.total_connections else 1.0
        return self.total_connections / self.total_distinct_products

    def as_dict(self) -> Dict[str, object]:
        return {
            "n_clusters": self.n_clusters,
            "total_distinct_products": self.total_distinct_products,
            "total_connections": self.total_connections,
            "sharing_ratio": self.sharing_ratio(),
        }


def cluster_layer_weights(
    layer: Dense,
    n_clusters: int,
    seed: Optional[int] = None,
    per_position: bool = True,
) -> LayerClustering:
    """Cluster one Dense layer's weights in place.

    Args:
        layer: Dense layer whose weights are replaced by cluster centroids.
        n_clusters: cluster budget (per input position when ``per_position``).
        seed: clustering seed.
        per_position: cluster each input row separately (the paper's scheme,
            which enables product sharing); when False the whole weight
            matrix shares one codebook (plain Deep Compression).
    """
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    weights = layer.weights.copy()
    mask = layer.mask if layer.mask is not None else np.ones_like(weights)
    clustering = LayerClustering(n_clusters=n_clusters)

    if per_position:
        for row_index in range(weights.shape[0]):
            row = weights[row_index]
            keep = mask[row_index] != 0.0
            nonzero = row[keep]
            if nonzero.size == 0:
                clustering.centroids.append(np.array([]))
                clustering.assignments.append(np.full(row.shape, -1, dtype=int))
                continue
            result = kmeans_1d(nonzero, n_clusters, seed=seed)
            assignments = np.full(row.shape, -1, dtype=int)
            assignments[keep] = result.assignments
            row_clustered = row.copy()
            row_clustered[keep] = result.centroids[result.assignments]
            weights[row_index] = row_clustered
            clustering.centroids.append(result.centroids)
            clustering.assignments.append(assignments)
    else:
        keep = mask != 0.0
        nonzero = weights[keep]
        if nonzero.size:
            result = kmeans_1d(nonzero.reshape(-1), n_clusters, seed=seed)
            clustered = weights.copy()
            clustered[keep] = result.centroids[result.assignments]
            weights = clustered
            clustering.centroids.append(result.centroids)
            assignments = np.full(weights.shape, -1, dtype=int)
            assignments[keep] = result.assignments
            clustering.assignments.append(assignments)

    layer.weights = weights * mask
    return clustering


def cluster_model_weights(
    model: MLP,
    n_clusters: Union[int, Sequence[int]],
    seed: Optional[int] = None,
    per_position: bool = True,
) -> ClusteringResult:
    """Cluster every Dense layer of the model in place.

    Args:
        model: network whose weights are replaced by centroids.
        n_clusters: cluster budget; single int or per-layer sequence.
        seed: clustering seed.
        per_position: per-input-position clustering (paper) vs whole-layer.
    """
    dense_layers = model.dense_layers
    if isinstance(n_clusters, int):
        budgets = [n_clusters] * len(dense_layers)
    else:
        budgets = [int(b) for b in n_clusters]
        if len(budgets) != len(dense_layers):
            raise ValueError(
                f"n_clusters has {len(budgets)} entries but the model has "
                f"{len(dense_layers)} Dense layers"
            )

    per_layer: List[LayerClustering] = []
    total_products = 0
    total_connections = 0
    for layer, budget in zip(dense_layers, budgets):
        clustering = cluster_layer_weights(layer, budget, seed=seed, per_position=per_position)
        per_layer.append(clustering)
        effective = layer.effective_weights()
        total_connections += int(np.count_nonzero(effective))
        for row in effective:
            total_products += len(set(abs(float(v)) for v in row if v != 0.0))

    return ClusteringResult(
        n_clusters=max(budgets),
        per_layer=per_layer,
        total_distinct_products=total_products,
        total_connections=total_connections,
    )


def reproject_clusters(model: MLP, result: ClusteringResult) -> None:
    """Re-impose the cluster structure after a fine-tuning pass, in place.

    Weights sharing a cluster are replaced by their mean — this is the
    Deep-Compression centroid update expressed as a projection, and it keeps
    the number of distinct products per input position bounded by the
    cluster budget after fine-tuning has moved individual weights.
    """
    dense_layers = model.dense_layers
    if len(result.per_layer) != len(dense_layers):
        raise ValueError("ClusteringResult does not match the model's layer count")
    for layer, clustering in zip(dense_layers, result.per_layer):
        weights = layer.weights.copy()
        if len(clustering.assignments) == weights.shape[0]:
            # per-position clustering
            for row_index, assignments in enumerate(clustering.assignments):
                row = weights[row_index]
                clusters, counts = np.unique(
                    assignments[assignments >= 0], return_counts=True
                )
                for cluster, count in zip(clusters, counts):
                    if count < 2:
                        continue  # a singleton's mean is itself — nothing to project
                    members = assignments == cluster
                    # == row[members].mean() without the wrapper overhead.
                    selected = row[members]
                    row[members] = np.add.reduce(selected) / selected.size
                weights[row_index] = row
        elif len(clustering.assignments) == 1:
            assignments = clustering.assignments[0]
            for cluster in np.unique(assignments[assignments >= 0]):
                members = assignments == cluster
                selected = weights[members]
                weights[members] = np.add.reduce(selected) / selected.size
        mask = layer.mask if layer.mask is not None else np.ones_like(weights)
        layer.weights = weights * mask


def cluster_and_finetune(
    model: MLP,
    data: PreparedData,
    n_clusters: Union[int, Sequence[int]],
    epochs: int = 15,
    learning_rate: float = 0.002,
    seed: Optional[int] = None,
    per_position: bool = True,
) -> ClusteringResult:
    """Cluster, fine-tune, and re-project — the full clustering flow, in place.

    The cluster structure is re-imposed after every fine-tuning epoch, which
    approximates Deep Compression's tied-centroid training: weights sharing a
    centroid can only move together (their individual updates are averaged by
    the projection), so the final model satisfies the sharing constraint with
    no post-hoc accuracy drop.
    """
    result = cluster_model_weights(model, n_clusters, seed=seed, per_position=per_position)
    for epoch in range(int(epochs)):
        epoch_lr = learning_rate * (0.85**epoch)
        finetune(
            model,
            data.train.features,
            data.train.labels,
            data.validation.features,
            data.validation.labels,
            epochs=1,
            learning_rate=epoch_lr,
            seed=None if seed is None else seed + epoch,
        )
        reproject_clusters(model, result)
    return result


def distinct_products(model: MLP) -> int:
    """Total distinct non-zero |weight| values summed over all input positions."""
    total = 0
    for layer in model.dense_layers:
        for row in layer.effective_weights():
            total += len(set(abs(float(v)) for v in row if v != 0.0))
    return total
