"""Unstructured magnitude pruning.

The paper uses unstructured pruning with sparsity levels between 20 % and
60 %: the smallest-magnitude weights are removed, which in a bespoke circuit
deletes the corresponding constant multiplier and removes one operand from
the neuron's adder tree. Pruning is implemented with binary masks on the
Dense layers so that fine-tuning cannot resurrect removed connections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

import numpy as np

from ..nn.layers import Dense
from ..nn.network import MLP


@dataclass(frozen=True)
class PruningResult:
    """Summary of one pruning application."""

    target_sparsity: float
    achieved_sparsity: float
    per_layer_sparsity: List[float]
    n_pruned: int
    n_total: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "target_sparsity": self.target_sparsity,
            "achieved_sparsity": self.achieved_sparsity,
            "per_layer_sparsity": list(self.per_layer_sparsity),
            "n_pruned": self.n_pruned,
            "n_total": self.n_total,
        }


def _validate_sparsity(sparsity: float) -> float:
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    return float(sparsity)


def prune_layer_by_magnitude(layer: Dense, sparsity: float) -> np.ndarray:
    """Set the layer's mask so the ``sparsity`` fraction of smallest |w| is removed.

    Existing masks are respected: already-pruned weights stay pruned and count
    toward the target. Returns the new mask.
    """
    sparsity = _validate_sparsity(sparsity)
    weights = layer.weights
    existing_mask = layer.mask if layer.mask is not None else np.ones_like(weights)
    magnitudes = np.abs(weights) * existing_mask
    n_total = weights.size
    n_prune = int(round(sparsity * n_total))
    if n_prune == 0:
        layer.mask = existing_mask
        return existing_mask
    # Rank all positions by (masked) magnitude; the n_prune smallest go to zero.
    flat_order = np.argsort(magnitudes, axis=None, kind="stable")
    new_mask = existing_mask.flatten()
    new_mask[flat_order[:n_prune]] = 0.0
    new_mask = new_mask.reshape(weights.shape)
    layer.mask = new_mask
    return new_mask


def prune_by_magnitude(
    model: MLP,
    sparsity: Union[float, Sequence[float]],
    global_ranking: bool = True,
) -> PruningResult:
    """Apply unstructured magnitude pruning to the whole model, in place.

    Args:
        model: network to prune (masks are set on its Dense layers).
        sparsity: overall target sparsity, or a per-layer sequence.
        global_ranking: when a single sparsity is given, rank weights across
            all layers jointly (True, default) or prune each layer to the
            same local sparsity (False).
    """
    dense_layers = model.dense_layers
    if not dense_layers:
        raise ValueError("Model has no Dense layers to prune")

    if not isinstance(sparsity, (int, float)):
        targets = [float(s) for s in sparsity]
        if len(targets) != len(dense_layers):
            raise ValueError(
                f"Got {len(targets)} sparsity values for {len(dense_layers)} Dense layers"
            )
        for layer, target in zip(dense_layers, targets):
            prune_layer_by_magnitude(layer, _validate_sparsity(target))
        overall_target = float(np.mean(targets))
    elif global_ranking:
        overall_target = _validate_sparsity(float(sparsity))
        all_magnitudes = []
        for layer in dense_layers:
            mask = layer.mask if layer.mask is not None else np.ones_like(layer.weights)
            all_magnitudes.append((np.abs(layer.weights) * mask).flatten())
        joined = np.concatenate(all_magnitudes)
        n_prune = int(round(overall_target * joined.size))
        if n_prune > 0:
            threshold = np.partition(joined, n_prune - 1)[n_prune - 1]
            for layer in dense_layers:
                mask = layer.mask if layer.mask is not None else np.ones_like(layer.weights)
                magnitudes = np.abs(layer.weights) * mask
                new_mask = np.where(magnitudes <= threshold, 0.0, mask)
                layer.mask = new_mask
        else:
            for layer in dense_layers:
                if layer.mask is None:
                    layer.mask = np.ones_like(layer.weights)
    else:
        overall_target = _validate_sparsity(float(sparsity))
        for layer in dense_layers:
            prune_layer_by_magnitude(layer, overall_target)

    per_layer = [layer.sparsity() for layer in dense_layers]
    n_total = model.n_connections()
    n_active = model.n_active_connections()
    return PruningResult(
        target_sparsity=overall_target,
        achieved_sparsity=1.0 - n_active / n_total if n_total else 0.0,
        per_layer_sparsity=per_layer,
        n_pruned=n_total - n_active,
        n_total=n_total,
    )


def remove_pruning(model: MLP) -> None:
    """Drop all pruning masks from the model, in place."""
    for layer in model.dense_layers:
        layer.mask = None


def pruning_mask_summary(model: MLP) -> Dict[str, object]:
    """Per-layer mask statistics (used by reports and tests)."""
    layers = []
    for index, layer in enumerate(model.dense_layers):
        mask = layer.mask
        layers.append(
            {
                "layer": index,
                "has_mask": mask is not None,
                "sparsity": layer.sparsity(),
                "pruned": int(mask.size - np.count_nonzero(mask)) if mask is not None else 0,
            }
        )
    return {"layers": layers, "model_sparsity": model.sparsity()}
