"""Pruning schedules: one-shot and gradual magnitude pruning.

The paper's sweep uses one-shot pruning followed by fine-tuning at each
sparsity level. Gradual (iterative) pruning — prune a little, fine-tune,
repeat — usually reaches the same sparsity with less accuracy loss and is
provided for the extension benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


from ..datasets.preprocessing import PreparedData
from ..nn.network import MLP
from ..nn.trainer import finetune
from .magnitude import PruningResult, prune_by_magnitude


@dataclass(frozen=True)
class PruningScheduleConfig:
    """Configuration of :func:`gradual_magnitude_pruning`.

    Attributes:
        target_sparsity: final overall sparsity.
        n_steps: number of prune/fine-tune iterations.
        epochs_per_step: fine-tuning epochs after each pruning step.
        learning_rate: fine-tuning learning rate.
        cubic: use the cubic sparsity ramp of Zhu & Gupta (2018) instead of
            a linear ramp.
    """

    target_sparsity: float
    n_steps: int = 4
    epochs_per_step: int = 8
    learning_rate: float = 0.003
    cubic: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.target_sparsity < 1.0:
            raise ValueError(
                f"target_sparsity must be in [0, 1), got {self.target_sparsity}"
            )
        if self.n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {self.n_steps}")
        if self.epochs_per_step < 0:
            raise ValueError(f"epochs_per_step must be >= 0, got {self.epochs_per_step}")

    def sparsity_at_step(self, step: int) -> float:
        """Sparsity target after ``step`` (1-based) of ``n_steps`` steps."""
        if not 1 <= step <= self.n_steps:
            raise ValueError(f"step must be in [1, {self.n_steps}], got {step}")
        progress = step / self.n_steps
        if self.cubic:
            ramp = 1.0 - (1.0 - progress) ** 3
        else:
            ramp = progress
        return self.target_sparsity * ramp


def one_shot_pruning(
    model: MLP,
    sparsity: float,
    data: Optional[PreparedData] = None,
    finetune_epochs: int = 15,
    learning_rate: float = 0.003,
    seed: Optional[int] = None,
) -> PruningResult:
    """Prune once to ``sparsity`` and (optionally) fine-tune — the paper's flow."""
    result = prune_by_magnitude(model, sparsity)
    if data is not None and finetune_epochs > 0:
        finetune(
            model,
            data.train.features,
            data.train.labels,
            data.validation.features,
            data.validation.labels,
            epochs=finetune_epochs,
            learning_rate=learning_rate,
            seed=seed,
        )
    return result


def gradual_magnitude_pruning(
    model: MLP,
    data: PreparedData,
    config: PruningScheduleConfig,
    seed: Optional[int] = None,
) -> List[PruningResult]:
    """Iteratively prune and fine-tune until the target sparsity is reached.

    Returns the :class:`PruningResult` of each step (the last one reflects
    the final state).
    """
    results: List[PruningResult] = []
    for step in range(1, config.n_steps + 1):
        step_sparsity = config.sparsity_at_step(step)
        result = prune_by_magnitude(model, step_sparsity)
        results.append(result)
        if config.epochs_per_step > 0:
            finetune(
                model,
                data.train.features,
                data.train.labels,
                data.validation.features,
                data.validation.labels,
                epochs=config.epochs_per_step,
                learning_rate=config.learning_rate,
                seed=None if seed is None else seed + step,
            )
    return results


def sparsity_accuracy_curve(
    model: MLP,
    data: PreparedData,
    sparsities: List[float],
    finetune_epochs: int = 15,
    seed: Optional[int] = None,
) -> List[dict]:
    """Accuracy after one-shot pruning + fine-tuning at each sparsity level.

    Each level starts from a fresh clone of the original model (levels are
    independent, matching how the paper's Figure 1 pruning points are built).
    """
    curve = []
    for sparsity in sparsities:
        candidate = model.clone()
        result = one_shot_pruning(
            candidate,
            float(sparsity),
            data=data,
            finetune_epochs=finetune_epochs,
            seed=seed,
        )
        accuracy = candidate.evaluate_accuracy(data.test.features, data.test.labels)
        curve.append(
            {
                "target_sparsity": float(sparsity),
                "achieved_sparsity": result.achieved_sparsity,
                "accuracy": float(accuracy),
            }
        )
    return curve
