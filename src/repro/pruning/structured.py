"""Structured (neuron-level) pruning.

The paper prefers unstructured pruning for bespoke circuits (every removed
connection directly removes hardware), but discusses structured pruning as
the conventional alternative. Structured pruning is implemented here for the
comparison/ablation benchmarks: whole hidden neurons are removed by zeroing
their incoming and outgoing connections, which in a bespoke mapping removes
the neuron's entire adder tree and all multipliers attached to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..nn.network import MLP


@dataclass(frozen=True)
class StructuredPruningResult:
    """Summary of one structured pruning application."""

    removed_neurons_per_layer: List[int]
    total_removed: int
    achieved_sparsity: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "removed_neurons_per_layer": list(self.removed_neurons_per_layer),
            "total_removed": self.total_removed,
            "achieved_sparsity": self.achieved_sparsity,
        }


def neuron_importance(model: MLP, layer_index: int) -> np.ndarray:
    """Importance score of each neuron in a hidden Dense layer.

    The score is the L1 norm of the neuron's incoming weights times the L1
    norm of its outgoing weights — a standard saliency proxy for how much
    the neuron contributes to the next layer.
    """
    dense = model.dense_layers
    if not 0 <= layer_index < len(dense) - 1:
        raise ValueError(
            f"layer_index must identify a hidden layer (0..{len(dense) - 2}), got {layer_index}"
        )
    layer = dense[layer_index]
    next_layer = dense[layer_index + 1]
    incoming = np.sum(np.abs(layer.effective_weights()), axis=0)
    outgoing = np.sum(np.abs(next_layer.effective_weights()), axis=1)
    return incoming * outgoing


def prune_neurons(
    model: MLP,
    fraction: float,
    min_remaining: int = 1,
) -> StructuredPruningResult:
    """Remove the least important ``fraction`` of neurons in every hidden layer.

    Removal is implemented by zeroing the neuron's row/column in the masks of
    the adjacent layers, so topology objects stay intact and fine-tuning can
    proceed on the remaining connections.

    Args:
        model: network to prune in place.
        fraction: fraction of each hidden layer's neurons to remove.
        min_remaining: never reduce a hidden layer below this many neurons.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    dense = model.dense_layers
    if len(dense) < 2:
        raise ValueError("Structured pruning needs at least one hidden layer")

    removed_per_layer: List[int] = []
    for layer_index in range(len(dense) - 1):
        layer = dense[layer_index]
        next_layer = dense[layer_index + 1]
        importance = neuron_importance(model, layer_index)
        n_neurons = layer.n_outputs
        n_remove = int(round(fraction * n_neurons))
        n_remove = min(n_remove, max(n_neurons - min_remaining, 0))
        removed_per_layer.append(n_remove)
        if n_remove == 0:
            continue
        victims = np.argsort(importance, kind="stable")[:n_remove]

        mask = layer.mask if layer.mask is not None else np.ones_like(layer.weights)
        mask = mask.copy()
        mask[:, victims] = 0.0
        layer.mask = mask

        next_mask = (
            next_layer.mask if next_layer.mask is not None else np.ones_like(next_layer.weights)
        )
        next_mask = next_mask.copy()
        next_mask[victims, :] = 0.0
        next_layer.mask = next_mask

        # Zero the bias of removed neurons so they contribute nothing.
        layer.bias[victims] = 0.0

    return StructuredPruningResult(
        removed_neurons_per_layer=removed_per_layer,
        total_removed=int(sum(removed_per_layer)),
        achieved_sparsity=model.sparsity(),
    )


def active_neurons_per_layer(model: MLP) -> List[int]:
    """Number of neurons with at least one non-zero incoming weight, per layer."""
    counts = []
    for layer in model.dense_layers:
        effective = layer.effective_weights()
        counts.append(int(np.sum(np.any(effective != 0.0, axis=0))))
    return counts
