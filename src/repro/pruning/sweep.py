"""Sparsity sweeps: the pruning Pareto curve of Figure 1.

The paper examines unstructured pruning with sparsity between 20 % and 60 %.
Each sparsity level is evaluated independently: clone the trained baseline,
prune, fine-tune, measure test accuracy, and synthesize the bespoke circuit
(pruned connections produce no multipliers and shrink the adder trees).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..bespoke.circuit import BespokeConfig
from ..bespoke.synthesis import synthesize
from ..core.results import DesignPoint
from ..datasets.preprocessing import PreparedData
from ..hardware.technology import TechnologyLibrary
from ..nn.network import MLP
from .magnitude import prune_by_magnitude
from .schedules import one_shot_pruning

#: Sparsity levels examined by the paper's pruning sweep (20 % .. 60 %).
PAPER_SPARSITY_RANGE: Sequence[float] = (0.2, 0.3, 0.4, 0.5, 0.6)


def pruning_sweep(
    model: MLP,
    data: PreparedData,
    sparsity_range: Sequence[float] = PAPER_SPARSITY_RANGE,
    input_bits: int = 4,
    weight_bits: int = 8,
    finetune_epochs: int = 15,
    tech: Optional[TechnologyLibrary] = None,
    seed: Optional[int] = None,
) -> List[DesignPoint]:
    """Evaluate one pruned design per sparsity level.

    Args:
        model: trained float baseline (cloned per level).
        data: prepared dataset split.
        sparsity_range: unstructured sparsity levels (paper: 0.2..0.6).
        input_bits: circuit input bit-width.
        weight_bits: weight bit-width of the pruned design (the baseline's
            8 bits — pruning alone does not change precision).
        finetune_epochs: post-pruning fine-tuning epochs.
        tech: technology library for synthesis.
        seed: fine-tuning seed.
    """
    points: List[DesignPoint] = []
    for sparsity in sparsity_range:
        candidate = model.clone()
        if finetune_epochs > 0:
            result = one_shot_pruning(
                candidate,
                float(sparsity),
                data=data,
                finetune_epochs=finetune_epochs,
                seed=seed,
            )
        else:
            result = prune_by_magnitude(candidate, float(sparsity))
        accuracy = candidate.evaluate_accuracy(data.test.features, data.test.labels)
        report = synthesize(
            candidate,
            config=BespokeConfig(input_bits=input_bits, weight_bits=weight_bits),
            tech=tech,
            name=f"{data.train.name}_p{int(round(sparsity * 100))}",
        )
        points.append(
            DesignPoint(
                technique="pruning",
                accuracy=float(accuracy),
                area=report.area,
                power=report.power,
                delay=report.delay,
                parameters={
                    "target_sparsity": float(sparsity),
                    "achieved_sparsity": result.achieved_sparsity,
                    "weight_bits": weight_bits,
                },
                report=report,
            )
        )
    return points
