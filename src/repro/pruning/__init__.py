"""Pruning: unstructured magnitude pruning, structured neuron pruning, schedules, sweeps."""

from .magnitude import (
    PruningResult,
    prune_by_magnitude,
    prune_layer_by_magnitude,
    pruning_mask_summary,
    remove_pruning,
)
from .schedules import (
    PruningScheduleConfig,
    gradual_magnitude_pruning,
    one_shot_pruning,
    sparsity_accuracy_curve,
)
from .structured import (
    StructuredPruningResult,
    active_neurons_per_layer,
    neuron_importance,
    prune_neurons,
)
from .sweep import PAPER_SPARSITY_RANGE, pruning_sweep

__all__ = [
    "PAPER_SPARSITY_RANGE",
    "PruningResult",
    "PruningScheduleConfig",
    "StructuredPruningResult",
    "active_neurons_per_layer",
    "gradual_magnitude_pruning",
    "neuron_importance",
    "one_shot_pruning",
    "prune_by_magnitude",
    "prune_layer_by_magnitude",
    "prune_neurons",
    "pruning_mask_summary",
    "pruning_sweep",
    "remove_pruning",
    "sparsity_accuracy_curve",
]
