"""Saving and loading MLP models.

Models are stored as a JSON header (topology, activations, hook metadata)
plus the weight arrays, in a single ``.npz`` file. This is enough to round-
trip the trained/minimized classifiers used by the experiments and to ship
example artefacts without pickling arbitrary objects.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from .layers import ActivationLayer, Dense, Dropout
from .network import MLP


def _architecture(model: MLP) -> List[Dict[str, object]]:
    """Describe the layer stack as JSON-serializable dictionaries."""
    arch: List[Dict[str, object]] = []
    for layer in model.layers:
        if isinstance(layer, Dense):
            arch.append(
                {
                    "type": "dense",
                    "n_inputs": layer.n_inputs,
                    "n_outputs": layer.n_outputs,
                    "use_bias": layer.use_bias,
                    "has_mask": layer.mask is not None,
                }
            )
        elif isinstance(layer, ActivationLayer):
            arch.append({"type": "activation", "name": layer.activation.name})
        elif isinstance(layer, Dropout):
            arch.append({"type": "dropout", "rate": layer.rate})
        else:
            raise TypeError(
                f"Cannot serialize layer of type {type(layer).__name__}"
            )
    return arch


def save_model(model: MLP, path: Union[str, Path]) -> Path:
    """Serialize ``model`` to ``path`` (``.npz`` appended if missing).

    Pruning masks are stored; quantizer hooks are *not* (they are plain
    callables) — re-attach them after loading via
    :func:`repro.quantization.qat.attach_quantizers`.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)

    arrays: Dict[str, np.ndarray] = {}
    dense_index = 0
    for layer in model.layers:
        if isinstance(layer, Dense):
            arrays[f"dense_{dense_index}_weights"] = layer.weights
            arrays[f"dense_{dense_index}_bias"] = layer.bias
            if layer.mask is not None:
                arrays[f"dense_{dense_index}_mask"] = layer.mask
            dense_index += 1

    header = json.dumps({"format_version": 1, "architecture": _architecture(model)})
    arrays["__header__"] = np.frombuffer(header.encode("utf-8"), dtype=np.uint8)
    np.savez(path, **arrays)
    return path


def load_model(path: Union[str, Path]) -> MLP:
    """Load a model previously written by :func:`save_model`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"No model file at {path}")
    with np.load(path) as data:
        header_bytes = bytes(data["__header__"].tobytes())
        header = json.loads(header_bytes.decode("utf-8"))
        if header.get("format_version") != 1:
            raise ValueError(
                f"Unsupported model format version: {header.get('format_version')}"
            )
        model = MLP()
        dense_index = 0
        for entry in header["architecture"]:
            layer_type = entry["type"]
            if layer_type == "dense":
                layer = Dense(
                    int(entry["n_inputs"]),
                    int(entry["n_outputs"]),
                    use_bias=bool(entry["use_bias"]),
                )
                layer.weights = np.array(data[f"dense_{dense_index}_weights"], dtype=np.float64)
                layer.bias = np.array(data[f"dense_{dense_index}_bias"], dtype=np.float64)
                if entry.get("has_mask"):
                    layer.mask = np.array(data[f"dense_{dense_index}_mask"], dtype=np.float64)
                model.add(layer)
                dense_index += 1
            elif layer_type == "activation":
                model.add(ActivationLayer(str(entry["name"])))
            elif layer_type == "dropout":
                model.add(Dropout(float(entry["rate"])))
            else:
                raise ValueError(f"Unknown layer type in model file: {layer_type}")
    return model
