"""The MLP container: a sequential stack of layers with a Keras-like API.

An :class:`MLP` is the single object every other package operates on:

* the trainer fits it,
* the quantization / pruning / clustering packages mutate its Dense layers'
  hooks (quantizers, masks) or weights,
* the bespoke package reads :meth:`MLP.dense_layers` and their
  ``effective_weights()`` to build the hard-wired circuit.

The convenience constructor :func:`build_mlp` creates the single-hidden-layer
ReLU topologies used by the printed-classifier literature.
"""

from __future__ import annotations

import copy
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from .layers import ActivationLayer, Dense, Dropout, Layer, layer_summary
from .metrics import accuracy


class MLP:
    """A sequential multilayer perceptron.

    Args:
        layers: ordered layers. The final Dense layer is interpreted as the
            classifier head whose argmax gives the predicted class.
    """

    def __init__(self, layers: Optional[Iterable[Layer]] = None) -> None:
        self.layers: List[Layer] = list(layers) if layers is not None else []

    # -- construction ----------------------------------------------------------

    def add(self, layer: Layer) -> "MLP":
        """Append a layer and return ``self`` for chaining."""
        self.layers.append(layer)
        return self

    # -- inference -------------------------------------------------------------

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the full stack; returns raw output scores (logits)."""
        out = np.asarray(inputs, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate through the stack (requires a prior training forward)."""
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Return predicted class indices (argmax of the output scores)."""
        scores = self.forward(inputs, training=False)
        return np.argmax(scores, axis=-1)

    def predict_scores(self, inputs: np.ndarray) -> np.ndarray:
        """Return the raw per-class scores (no softmax)."""
        return self.forward(inputs, training=False)

    def evaluate_accuracy(self, inputs: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy on ``(inputs, labels)``; labels may be one-hot."""
        return accuracy(labels, self.predict(inputs))

    def __call__(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(inputs, training=training)

    # -- parameters ------------------------------------------------------------

    @property
    def parameters(self) -> List[np.ndarray]:
        """All trainable parameter arrays, in layer order."""
        params: List[np.ndarray] = []
        for layer in self.layers:
            params.extend(layer.parameters)
        return params

    @property
    def gradients(self) -> List[np.ndarray]:
        """All gradient arrays, aligned with :attr:`parameters`."""
        grads: List[np.ndarray] = []
        for layer in self.layers:
            grads.extend(layer.gradients)
        return grads

    @property
    def dense_layers(self) -> List[Dense]:
        """The Dense layers only, in order (what minimization acts upon)."""
        return [layer for layer in self.layers if isinstance(layer, Dense)]

    def n_parameters(self) -> int:
        """Total number of trainable scalars."""
        return int(sum(p.size for p in self.parameters))

    def n_connections(self) -> int:
        """Number of weight connections (excluding biases)."""
        return int(sum(layer.weights.size for layer in self.dense_layers))

    def n_active_connections(self) -> int:
        """Number of connections whose effective weight is non-zero."""
        return int(
            sum(np.count_nonzero(layer.effective_weights()) for layer in self.dense_layers)
        )

    def sparsity(self) -> float:
        """Overall fraction of zero effective weights."""
        total = self.n_connections()
        if total == 0:
            return 0.0
        return 1.0 - self.n_active_connections() / total

    def topology(self) -> List[int]:
        """Layer widths ``[n_inputs, hidden..., n_outputs]`` of the Dense stack."""
        dense = self.dense_layers
        if not dense:
            return []
        sizes = [dense[0].n_inputs]
        sizes.extend(layer.n_outputs for layer in dense)
        return sizes

    # -- utilities ---------------------------------------------------------------

    def clone(self) -> "MLP":
        """Deep copy of the network (weights, masks and quantizer hooks included)."""
        return copy.deepcopy(self)

    def get_weights(self) -> List[Dict[str, np.ndarray]]:
        """Return ``[{'weights': W, 'bias': b}, ...]`` copies for the Dense layers."""
        return [
            {"weights": layer.weights.copy(), "bias": layer.bias.copy()}
            for layer in self.dense_layers
        ]

    def set_weights(self, weight_dicts: Sequence[Dict[str, np.ndarray]]) -> None:
        """Load weights produced by :meth:`get_weights` (order must match)."""
        dense = self.dense_layers
        if len(weight_dicts) != len(dense):
            raise ValueError(
                f"Expected weights for {len(dense)} Dense layers, got {len(weight_dicts)}"
            )
        for layer, entry in zip(dense, weight_dicts):
            layer.set_weights(entry["weights"], entry.get("bias"))

    def summary(self) -> List[Dict[str, object]]:
        """Per-layer description dictionaries (type, shape, sparsity...)."""
        return [layer_summary(layer) for layer in self.layers]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        topo = "-".join(str(n) for n in self.topology())
        return f"MLP(topology={topo}, params={self.n_parameters()})"


def build_mlp(
    n_inputs: int,
    hidden_layers: Sequence[int],
    n_outputs: int,
    hidden_activation: str = "relu",
    dropout: float = 0.0,
    use_bias: bool = True,
    weight_initializer: str = "glorot_uniform",
    seed: Optional[int] = None,
) -> MLP:
    """Build a standard printed-classifier MLP.

    The resulting stack is ``[Dense, Activation]`` per hidden layer followed
    by a linear Dense output layer (argmax is applied at prediction time, and
    in hardware by a comparator tree).

    Args:
        n_inputs: number of input features.
        hidden_layers: widths of the hidden layers (may be empty for a
            single-layer perceptron).
        n_outputs: number of classes.
        hidden_activation: registered activation name for hidden layers.
        dropout: dropout rate applied after every hidden activation.
        use_bias: whether Dense layers carry biases.
        weight_initializer: initializer name for all Dense layers.
        seed: seed for reproducible initialization.
    """
    if n_inputs <= 0 or n_outputs <= 0:
        raise ValueError("n_inputs and n_outputs must be positive")
    rng = np.random.default_rng(seed)
    mlp = MLP()
    previous = n_inputs
    for width in hidden_layers:
        if width <= 0:
            raise ValueError(f"Hidden layer width must be positive, got {width}")
        mlp.add(
            Dense(
                previous,
                width,
                use_bias=use_bias,
                weight_initializer=weight_initializer,
                rng=rng,
            )
        )
        mlp.add(ActivationLayer(hidden_activation))
        if dropout > 0.0:
            mlp.add(Dropout(dropout, rng=rng))
        previous = width
    mlp.add(
        Dense(
            previous,
            n_outputs,
            use_bias=use_bias,
            weight_initializer=weight_initializer,
            rng=rng,
        )
    )
    return mlp
