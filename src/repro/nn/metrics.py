"""Classification metrics used throughout the reproduction.

The paper reports only top-1 accuracy; the additional metrics here support
the extended analysis in ``EXPERIMENTS.md`` (per-class behaviour when pruning
aggressively, confusion structure of the wine classifiers, etc.).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


def _to_labels(y: np.ndarray) -> np.ndarray:
    """Accept either class indices or one-hot/probability rows."""
    y = np.asarray(y)
    if y.ndim == 2 and y.shape[1] > 1:
        return np.argmax(y, axis=1)
    return y.reshape(-1).astype(int)


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Top-1 accuracy. Inputs may be labels, one-hot rows, or probabilities."""
    true_labels = _to_labels(y_true)
    pred_labels = _to_labels(y_pred)
    if true_labels.shape != pred_labels.shape:
        raise ValueError(
            f"Shape mismatch: {true_labels.shape} vs {pred_labels.shape}"
        )
    if true_labels.size == 0:
        raise ValueError("Cannot compute accuracy of empty arrays")
    return float(np.mean(true_labels == pred_labels))


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: Optional[int] = None
) -> np.ndarray:
    """Confusion matrix with rows = true class, columns = predicted class."""
    true_labels = _to_labels(y_true)
    pred_labels = _to_labels(y_pred)
    if n_classes is None:
        n_classes = int(max(true_labels.max(), pred_labels.max())) + 1
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    for t, p in zip(true_labels, pred_labels):
        matrix[t, p] += 1
    return matrix


def per_class_accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """Recall of every class (NaN for classes absent from ``y_true``)."""
    matrix = confusion_matrix(y_true, y_pred)
    totals = matrix.sum(axis=1).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(totals > 0, np.diag(matrix) / totals, np.nan)


def precision_recall_f1(
    y_true: np.ndarray, y_pred: np.ndarray, average: str = "macro"
) -> Dict[str, float]:
    """Macro- or micro-averaged precision, recall and F1.

    Args:
        average: ``"macro"`` (unweighted class mean) or ``"micro"``
            (global counts; equals accuracy for single-label problems).
    """
    if average not in ("macro", "micro"):
        raise ValueError(f"average must be 'macro' or 'micro', got '{average}'")
    matrix = confusion_matrix(y_true, y_pred).astype(np.float64)
    tp = np.diag(matrix)
    fp = matrix.sum(axis=0) - tp
    fn = matrix.sum(axis=1) - tp

    if average == "micro":
        tp_sum, fp_sum, fn_sum = tp.sum(), fp.sum(), fn.sum()
        precision = tp_sum / (tp_sum + fp_sum) if (tp_sum + fp_sum) > 0 else 0.0
        recall = tp_sum / (tp_sum + fn_sum) if (tp_sum + fn_sum) > 0 else 0.0
    else:
        with np.errstate(divide="ignore", invalid="ignore"):
            class_precision = np.where(tp + fp > 0, tp / (tp + fp), 0.0)
            class_recall = np.where(tp + fn > 0, tp / (tp + fn), 0.0)
        precision = float(np.mean(class_precision))
        recall = float(np.mean(class_recall))

    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) > 0 else 0.0
    return {"precision": float(precision), "recall": float(recall), "f1": float(f1)}


def top_k_accuracy(y_true: np.ndarray, scores: np.ndarray, k: int = 2) -> float:
    """Fraction of samples whose true class is within the top ``k`` scores."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError("scores must be a 2-D array of per-class scores")
    true_labels = _to_labels(y_true)
    k = min(k, scores.shape[1])
    top_k = np.argsort(-scores, axis=1)[:, :k]
    hits = np.any(top_k == true_labels.reshape(-1, 1), axis=1)
    return float(np.mean(hits))


def accuracy_drop(baseline_accuracy: float, accuracy_value: float) -> float:
    """Absolute accuracy loss relative to a baseline (positive = worse).

    This is the x-axis of the paper's Figures 1 and 2 once normalized: the
    paper's "5 % accuracy loss" threshold is ``accuracy_drop <= 0.05``.
    """
    return float(baseline_accuracy - accuracy_value)
