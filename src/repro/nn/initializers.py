"""Weight initializers for the NumPy MLP framework.

Printed bespoke MLPs are tiny (tens of neurons), so initialization still
matters for reproducibility: every initializer takes an explicit
``numpy.random.Generator`` so experiments are bit-exact given a seed.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

InitializerFn = Callable[[Tuple[int, int], np.random.Generator], np.ndarray]


def zeros(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Return an all-zero array of ``shape`` (``rng`` is unused)."""
    del rng
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Return an all-one array of ``shape`` (``rng`` is unused)."""
    del rng
    return np.ones(shape, dtype=np.float64)


def uniform(
    shape: Tuple[int, ...],
    rng: np.random.Generator,
    low: float = -0.5,
    high: float = 0.5,
) -> np.ndarray:
    """Sample uniformly from ``[low, high)``."""
    return rng.uniform(low, high, size=shape)


def normal(
    shape: Tuple[int, ...],
    rng: np.random.Generator,
    mean: float = 0.0,
    std: float = 0.1,
) -> np.ndarray:
    """Sample from a normal distribution with ``mean`` and ``std``."""
    return rng.normal(mean, std, size=shape)


def glorot_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization.

    Bounds are ``sqrt(6 / (fan_in + fan_out))``; the default for the Dense
    layers here, matching what QKeras/Keras would have used in the paper's
    original training setup.
    """
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def glorot_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initialization (std ``sqrt(2/(fan_in+fan_out))``)."""
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialization, suited to ReLU hidden layers."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal initialization (std ``sqrt(2/fan_in)``)."""
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a weight tensor shape."""
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[0] * receptive, shape[1] * receptive


_REGISTRY: Dict[str, InitializerFn] = {
    "zeros": zeros,
    "ones": ones,
    "uniform": uniform,
    "normal": normal,
    "glorot_uniform": glorot_uniform,
    "glorot_normal": glorot_normal,
    "he_uniform": he_uniform,
    "he_normal": he_normal,
}


def get_initializer(name: str) -> InitializerFn:
    """Look up an initializer by name.

    Raises:
        KeyError: if ``name`` is not a registered initializer.
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"Unknown initializer '{name}'. Available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key]


def available_initializers() -> Tuple[str, ...]:
    """Return the names of all registered initializers."""
    return tuple(sorted(_REGISTRY))
