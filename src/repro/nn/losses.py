"""Loss functions for training printed-MLP classifiers.

Classification in the paper is plain categorical cross-entropy (via Keras /
QKeras); regression losses are included because they are useful for the
clustering fine-tuning utilities and for property tests of the optimizers.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

import numpy as np

_EPS = 1e-12


class Loss:
    """Base class: ``forward`` returns a scalar, ``backward`` the gradient."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)


class MeanSquaredError(Loss):
    """Mean squared error averaged over all elements."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        diff = np.asarray(predictions, dtype=np.float64) - np.asarray(
            targets, dtype=np.float64
        )
        return float(np.mean(diff * diff))

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        return 2.0 * (predictions - targets) / predictions.size


class MeanAbsoluteError(Loss):
    """Mean absolute error averaged over all elements."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        diff = np.asarray(predictions, dtype=np.float64) - np.asarray(
            targets, dtype=np.float64
        )
        return float(np.mean(np.abs(diff)))

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        return np.sign(predictions - targets) / predictions.size


class CategoricalCrossEntropy(Loss):
    """Cross-entropy over probability vectors (expects softmax outputs).

    ``targets`` must be one-hot encoded with the same shape as
    ``predictions``; rows are averaged.
    """

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions = np.clip(np.asarray(predictions, dtype=np.float64), _EPS, 1.0)
        targets = np.asarray(targets, dtype=np.float64)
        per_sample = -np.sum(targets * np.log(predictions), axis=-1)
        return float(np.mean(per_sample))

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions = np.clip(np.asarray(predictions, dtype=np.float64), _EPS, 1.0)
        targets = np.asarray(targets, dtype=np.float64)
        n = predictions.shape[0] if predictions.ndim > 1 else 1
        return -(targets / predictions) / n


class SoftmaxCrossEntropy(Loss):
    """Fused softmax + cross-entropy on raw logits.

    Numerically stabler than chaining :class:`~repro.nn.activations.Softmax`
    with :class:`CategoricalCrossEntropy`, and the gradient collapses to the
    familiar ``softmax(logits) - targets``.
    """

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        shifted = logits - np.max(logits, axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / np.sum(exp, axis=-1, keepdims=True)

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        logits = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        probs = np.clip(self._softmax(logits), _EPS, 1.0)
        per_sample = -np.sum(targets * np.log(probs), axis=-1)
        return float(np.mean(per_sample))

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        logits = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        probs = self._softmax(logits)
        n = logits.shape[0] if logits.ndim > 1 else 1
        return (probs - targets) / n


class HingeLoss(Loss):
    """Multi-class hinge (Crammer-Singer style) on raw scores.

    Included as an alternative classification loss for robustness
    experiments; not used by the main reproduction pipeline.
    """

    def __init__(self, margin: float = 1.0) -> None:
        if margin <= 0:
            raise ValueError(f"margin must be positive, got {margin}")
        self.margin = float(margin)

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        scores = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        correct = np.sum(scores * targets, axis=-1, keepdims=True)
        margins = np.maximum(0.0, scores - correct + self.margin)
        margins = margins * (1.0 - targets)
        return float(np.mean(np.sum(margins, axis=-1)))

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        scores = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        correct = np.sum(scores * targets, axis=-1, keepdims=True)
        margins = (scores - correct + self.margin) > 0.0
        margins = margins & (targets == 0.0)
        grad = margins.astype(np.float64)
        grad -= targets * np.sum(margins, axis=-1, keepdims=True)
        n = scores.shape[0] if scores.ndim > 1 else 1
        return grad / n


_REGISTRY: Dict[str, Type[Loss]] = {
    "mse": MeanSquaredError,
    "mean_squared_error": MeanSquaredError,
    "mae": MeanAbsoluteError,
    "mean_absolute_error": MeanAbsoluteError,
    "categorical_crossentropy": CategoricalCrossEntropy,
    "softmax_crossentropy": SoftmaxCrossEntropy,
    "hinge": HingeLoss,
}


def get_loss(name: str) -> Loss:
    """Instantiate a loss by name.

    Raises:
        KeyError: if ``name`` is not a registered loss.
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"Unknown loss '{name}'. Available: {sorted(_REGISTRY)}")
    return _REGISTRY[key]()


def available_losses() -> Tuple[str, ...]:
    """Return the names of all registered losses."""
    return tuple(sorted(_REGISTRY))
