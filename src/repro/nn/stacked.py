"""Population-level stacked training: fused QAT for G genomes at once.

The per-genome evaluation hot path fine-tunes one small MLP per genome; a
whole NSGA-II generation is G such fine-tunings over the *same* data with
the *same* schedule, differing only in per-genome weights, pruning masks,
quantizer bit-widths and RNG seeds. :class:`StackedTrainer` runs all of them
as one set of ``(G, ...)`` tensor ops — every numpy dispatch is amortized
over the population instead of being paid per genome, which is where the
residual single-genome overhead lives (see ``docs/performance.md``).

Bit-identity contract
---------------------

Stacked training is *numerically invisible*: genome ``g`` of a stack evolves
through exactly the float operations the serial
:class:`~repro.nn.trainer.Trainer` fast path would apply to it alone.

* Batched ``matmul`` over a ``(G, ...)`` stack executes the same GEMM per
  2-D slice as the serial call; every other op is element-wise or a
  per-genome-row reduction, so per-element float sequences are unchanged.
* Each genome keeps its own ``default_rng(seed)`` whose only consumer is the
  per-epoch shuffle — the same consumption pattern as the serial trainer.
* Per-genome early stopping evicts finished genomes from the stack (the
  survivors' arrays are compacted, which copies values verbatim), so active
  genomes always step in lockstep and the shared Adam step count ``t``
  matches every serial trajectory.
* Per-genome learning-rate decay is a ``(G, 1)`` broadcast column in
  :class:`~repro.nn.optimizers.StackedAdam`.

``tests/test_stacked_trainer.py`` asserts exact byte equality of weights and
training histories against the serial path, including heterogeneous
early-stopping populations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.backend import ArrayBackend, resolve_backend
from .layers import ActivationLayer, Dense
from .network import MLP
from .optimizers import StackedAdam
from .trainer import TrainerConfig, TrainingHistory, _one_hot


def _layer_signature(model: MLP) -> Tuple:
    """Architecture fingerprint two models must share to be stackable."""
    signature = []
    for layer in model.layers:
        if isinstance(layer, Dense):
            signature.append(("dense", layer.n_inputs, layer.n_outputs, layer.use_bias))
        elif isinstance(layer, ActivationLayer):
            activation = layer.activation
            signature.append(
                ("activation", type(activation).__name__, getattr(activation, "alpha", None))
            )
        else:
            signature.append(("unsupported", type(layer).__name__))
    return tuple(signature)


def _quantizer_pattern(model: MLP) -> Optional[Tuple]:
    """Which parameter tensors carry a SymmetricQuantizer (None = unstackable)."""
    from ..quantization.quantizers import SymmetricQuantizer

    pattern = []
    for layer in model.dense_layers:
        for attribute, _array, quantizer, _mask in layer.quantizable_tensors():
            if attribute == "bias" and not layer.use_bias:
                continue
            if quantizer is None:
                pattern.append(False)
            elif type(quantizer) is SymmetricQuantizer:
                if quantizer.scale is not None:
                    return None  # frozen scales are a deployment concern, not QAT
                pattern.append(True)
            else:
                return None
    return tuple(pattern)


def supports_stacking(models: Sequence[MLP]) -> bool:
    """Whether :class:`StackedTrainer` can train these models as one stack.

    Requires: at least one model, identical Dense/Activation architectures
    (no Dropout or custom layers — same restriction as the serial fused
    path), and a shared quantizer pattern where every quantized tensor uses
    a dynamic-scale :class:`~repro.quantization.SymmetricQuantizer`.
    Pruning masks and bit-widths may differ freely per model.
    """
    if not models:
        return False
    first = models[0]
    if not first.dense_layers:
        return False
    signature = _layer_signature(first)
    if any(entry[0] == "unsupported" for entry in signature):
        return False
    pattern = _quantizer_pattern(first)
    if pattern is None:
        return False
    for model in models[1:]:
        if _layer_signature(model) != signature:
            return False
        if _quantizer_pattern(model) != pattern:
            return False
    return True


class StackedTrainer:
    """Trains G same-architecture MLPs as one stacked tensor program.

    Args:
        models: the population's models (modified in place at the end of
            :meth:`fit`, exactly as the serial trainer leaves its model).
        learning_rate: initial learning rate, shared by every genome (each
            genome then decays its own copy independently).
        config: training hyper-parameters, shared by the population.
        seeds: per-genome shuffle seeds (``None`` entries mean unseeded).
        backend: array backend for the stacked tensor ops (name, instance,
            or ``None`` = resolve via :func:`repro.core.backend.resolve_backend`).
            The numpy backend reproduces the serial trainer byte for byte;
            see ``docs/backends.md`` for other backends' guarantees.

    Use :func:`supports_stacking` first; construction raises ``ValueError``
    for unstackable populations.
    """

    def __init__(
        self,
        models: Sequence[MLP],
        learning_rate: float,
        config: Optional[TrainerConfig] = None,
        seeds: Optional[Sequence[Optional[int]]] = None,
        backend: Optional[Union[str, ArrayBackend]] = None,
    ) -> None:
        if not supports_stacking(models):
            raise ValueError(
                "Models cannot be trained stacked (architecture/quantizer mismatch); "
                "check supports_stacking() first and fall back to serial training"
            )
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.models = list(models)
        self.config = config if config is not None else TrainerConfig()
        self.learning_rate = float(learning_rate)
        if seeds is None:
            seeds = [None] * len(self.models)
        if len(seeds) != len(self.models):
            raise ValueError(f"Got {len(seeds)} seeds for {len(self.models)} models")
        self.seeds = list(seeds)
        self.ops = resolve_backend(backend)
        self._plan = self._build_plan(self.models[0])
        self._segments = self._build_segments(self.models[0])
        self._flat_size = self._segments[-1]["slice"].stop if self._segments else 0
        n_dense = len(self.models[0].dense_layers)
        self._dense_segments: List[Tuple[dict, Optional[dict]]] = [
            self._segments_for(index) for index in range(n_dense)
        ]

    # -- stack layout -------------------------------------------------------------

    @staticmethod
    def _build_plan(model: MLP) -> List[tuple]:
        """Per-layer dispatch plan: ``(is_dense, dense_index, activation)``."""
        plan = []
        dense_index = 0
        for layer in model.layers:
            if isinstance(layer, Dense):
                plan.append((True, dense_index, None))
                dense_index += 1
            else:
                plan.append((False, -1, layer.activation))
        return plan

    @staticmethod
    def _build_segments(model: MLP) -> List[dict]:
        """Flat-buffer layout: one segment per parameter tensor, in the
        ``model.parameters`` order the fused optimizer uses (weights, then
        bias, per Dense layer)."""
        segments: List[dict] = []
        offset = 0
        for dense_index, layer in enumerate(model.dense_layers):
            for attribute, array, quantizer, _mask in layer.quantizable_tensors():
                if attribute == "bias" and not layer.use_bias:
                    continue
                size = array.size
                segments.append(
                    {
                        "dense_index": dense_index,
                        "attribute": attribute,
                        "shape": array.shape,
                        "slice": slice(offset, offset + size),
                        "quantized": quantizer is not None,
                    }
                )
                offset += size
        return segments

    def _gather_stack(self) -> np.ndarray:
        """Collect every model's parameters into the ``(G, P)`` raw matrix."""
        params = np.empty((len(self.models), self._flat_size))
        for row, model in enumerate(self.models):
            dense = model.dense_layers
            for segment in self._segments:
                array = getattr(dense[segment["dense_index"]], segment["attribute"])
                params[row, segment["slice"]] = array.reshape(-1)
        return params

    def _build_pack(self) -> dict:
        """Stacked analogue of the serial trainer's per-step quant pack."""
        n_models = len(self.models)
        total = self._flat_size
        mask = np.ones((n_models, total))
        pos_level = np.zeros((n_models, total))
        max_levels = np.ones((n_models, len(self._segments)))
        for row, model in enumerate(self.models):
            dense = model.dense_layers
            for seg_index, segment in enumerate(self._segments):
                layer = dense[segment["dense_index"]]
                if segment["attribute"] == "weights" and layer.mask is not None:
                    mask[row, segment["slice"]] = layer.mask.reshape(-1)
                if segment["quantized"]:
                    quantizer = (
                        layer.weight_quantizer
                        if segment["attribute"] == "weights"
                        else layer.bias_quantizer
                    )
                    level = float(quantizer._max_level)
                    pos_level[row, segment["slice"]] = level
                    max_levels[row, seg_index] = level
        # Segment geometry for the packed scale computation: contiguous
        # ``reduceat`` boundaries plus an element -> segment index map that
        # broadcasts per-segment scales back over the flat axis in one take.
        seg_starts = np.array(
            [segment["slice"].start for segment in self._segments], dtype=np.intp
        )
        seg_map = np.empty(total, dtype=np.intp)
        for seg_index, segment in enumerate(self._segments):
            seg_map[segment["slice"]] = seg_index
        return {
            "mask": mask,
            "pos_level": pos_level,
            "neg_level": -pos_level,
            "max_levels": max_levels,
            "seg_starts": seg_starts,
            "seg_map": seg_map,
            "masked": np.empty((n_models, total)),
            "abs": np.empty((n_models, total)),
            "scale": np.empty((n_models, total)),
            "effective": np.empty((n_models, total)),
        }

    def _apply_pack(self, pack: dict, params: np.ndarray) -> np.ndarray:
        """One stacked fake-quantization pass: raw params -> effective params.

        Per-element float sequence identical to the serial trainer's
        ``_apply_quant_pack`` (mask multiply, |.|, per-segment scale via
        :func:`~repro.hardware.fixed_point.derive_scale`, divide / rint /
        clip / renormalize / rescale) applied row-wise over the population.
        Unquantized segments are copied through as masked values, matching
        the serial generic ``effective_weights()`` path.
        """
        masked = pack["masked"]
        abs_buf = pack["abs"]
        scale = pack["scale"]
        effective = pack["effective"]
        np.multiply(params, pack["mask"], out=masked)
        np.abs(masked, out=abs_buf)
        # One contiguous-span reduce for every (genome, segment) max — max is
        # exact, so how it is reduced cannot change the derived scale.
        seg_max = self.ops.segment_max(abs_buf, pack["seg_starts"])
        # derive_scale vectorized: same IEEE divide, same degenerate-tensor
        # fallbacks (all-zero -> 1.0, underflow-to-zero -> 1.0).
        seg_scale = np.where(seg_max > 0, seg_max / pack["max_levels"], 1.0)
        seg_scale = np.where(seg_scale == 0.0, 1.0, seg_scale)
        self.ops.take(seg_scale, pack["seg_map"], out=scale)
        self.ops.quantize(
            masked, scale, pack["neg_level"], pack["pos_level"], out=effective
        )
        for segment in self._segments:
            if not segment["quantized"]:
                sl = segment["slice"]
                effective[:, sl] = masked[:, sl]
        return effective

    def _layer_views(self, flat: np.ndarray) -> List[dict]:
        """Per-Dense-layer ``(G, in, out)`` / ``(G, out)`` views of a flat stack."""
        views: List[dict] = []
        for segment in self._segments:
            if segment["attribute"] == "weights":
                views.append(
                    {
                        "weights": flat[:, segment["slice"]].reshape(
                            (flat.shape[0],) + segment["shape"]
                        ),
                        "bias": None,
                    }
                )
            else:
                views[-1]["bias"] = flat[:, segment["slice"]]
        return views

    # -- training -----------------------------------------------------------------

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
    ) -> List[TrainingHistory]:
        """Train the whole population; returns per-genome histories.

        Mirrors :meth:`repro.nn.trainer.Trainer.fit` epoch for epoch: the
        monitored metric, LR decay, early stopping and best-weight
        restoration are tracked per genome, and a genome whose patience runs
        out is evicted from the stack (its serial counterpart would have
        broken out of the epoch loop at the same point).
        """
        cfg = self.config
        x_train = np.asarray(x_train, dtype=np.float64)
        y_train = np.asarray(y_train).reshape(-1).astype(int)
        if x_train.shape[0] != y_train.shape[0]:
            raise ValueError(
                f"x_train has {x_train.shape[0]} rows but y_train has {y_train.shape[0]}"
            )
        n_classes = self.models[0].topology()[-1]
        targets = _one_hot(y_train, n_classes)
        has_val = x_val is not None and y_val is not None
        if has_val:
            x_val = np.asarray(x_val, dtype=np.float64)
            y_val = np.asarray(y_val).reshape(-1).astype(int)
            val_targets = _one_hot(y_val, n_classes)

        n_models = len(self.models)
        n_samples = x_train.shape[0]
        params = self._gather_stack()
        pack = self._build_pack()
        grad_flat = np.empty_like(params)
        optimizer = StackedAdam([self.learning_rate] * n_models, backend=self.ops)
        rngs = [np.random.default_rng(seed) for seed in self.seeds]

        # Per-genome bookkeeping, indexed by ORIGINAL genome position.
        histories = [TrainingHistory() for _ in range(n_models)]
        best_metric = [-np.inf] * n_models
        best_params: List[Optional[np.ndarray]] = [None] * n_models
        final_params: List[Optional[np.ndarray]] = [None] * n_models
        without_improvement = [0] * n_models
        #: active[i] = original genome index of stack row i.
        active = list(range(n_models))

        # Layer views into the shared effective-parameter buffer; stable
        # until a compaction swaps the buffer out.
        views = self._layer_views(pack["effective"])
        for _epoch in range(cfg.epochs):
            if not active:
                break
            self._run_epoch(
                params, grad_flat, pack, views, optimizer, rngs, active,
                x_train, targets, n_samples, histories,
            )
            # Post-epoch evaluation on the freshly re-quantized parameters.
            train_scores = self._forward(x_train, views)
            train_predictions = self.ops.argmax(train_scores)
            train_accuracies = (train_predictions == y_train).mean(axis=-1)
            if has_val:
                val_scores = self._forward(x_val, views)
                val_losses = _softmax_cross_entropy_rows(val_scores, val_targets)
                val_accuracies = (self.ops.argmax(val_scores) == y_val).mean(axis=-1)

            stopped_rows: List[int] = []
            for row, genome in enumerate(active):
                history = histories[genome]
                train_acc = float(train_accuracies[row])
                history.train_accuracy.append(train_acc)
                if has_val:
                    val_loss = float(val_losses[row])
                    val_acc = float(val_accuracies[row])
                    history.val_loss.append(val_loss)
                    history.val_accuracy.append(val_acc)
                    monitored = val_acc if cfg.monitor == "val_accuracy" else -val_loss
                else:
                    monitored = (
                        train_acc
                        if cfg.monitor == "val_accuracy"
                        else -history.train_loss[-1]
                    )
                if monitored > best_metric[genome] + 1e-9:
                    best_metric[genome] = monitored
                    without_improvement[genome] = 0
                    if cfg.restore_best_weights:
                        best_params[genome] = params[row].copy()
                else:
                    without_improvement[genome] += 1
                    self._maybe_decay_learning_rate(
                        optimizer, row, without_improvement[genome]
                    )
                    if (
                        cfg.early_stopping_patience is not None
                        and without_improvement[genome] >= cfg.early_stopping_patience
                    ):
                        stopped_rows.append(row)

            if stopped_rows:
                for row in stopped_rows:
                    final_params[active[row]] = params[row].copy()
                keep = np.array(
                    [row for row in range(len(active)) if row not in set(stopped_rows)],
                    dtype=np.intp,
                )
                active = [active[row] for row in keep]
                params = params[keep]
                grad_flat = np.empty_like(params)
                optimizer.compact(keep)
                self._compact_pack(pack, keep)
                views = self._layer_views(pack["effective"])
                rngs = [rngs[row] for row in keep]

        for row, genome in enumerate(active):
            final_params[genome] = params[row].copy()
        self._write_back(final_params, best_params)
        return histories

    def _run_epoch(
        self,
        params: np.ndarray,
        grad_flat: np.ndarray,
        pack: dict,
        views: List[dict],
        optimizer: StackedAdam,
        rngs: List[np.random.Generator],
        active: List[int],
        x_train: np.ndarray,
        targets: np.ndarray,
        n_samples: int,
        histories: List[TrainingHistory],
    ) -> np.ndarray:
        """One stacked epoch; returns the post-epoch effective parameters."""
        cfg = self.config
        orders = np.empty((len(active), n_samples), dtype=np.intp)
        base = np.arange(n_samples)
        for row in range(len(active)):
            order = base.copy()
            if cfg.shuffle:
                rngs[row].shuffle(order)
            orders[row] = order
        x_all = x_train[orders]
        y_all = targets[orders]

        total_loss = np.zeros(len(active))
        n_batches = 0
        for start in range(0, n_samples, cfg.batch_size):
            x_batch = x_all[:, start : start + cfg.batch_size]
            y_batch = y_all[:, start : start + cfg.batch_size]
            self._apply_pack(pack, params)

            # Forward, remembering each layer's input.
            layer_inputs = []
            out = x_batch
            for is_dense, dense_index, activation in self._plan:
                layer_inputs.append(out)
                if is_dense:
                    view = views[dense_index]
                    out = self.ops.matmul(out, view["weights"])
                    if view["bias"] is not None:
                        out = out + view["bias"][:, None, :]
                else:
                    out = activation.forward(out)

            # Fused softmax cross-entropy, row-wise over the population.
            shifted = out - out.max(axis=-1, keepdims=True)
            exp = np.exp(shifted, out=shifted)
            probs = exp / exp.sum(axis=-1, keepdims=True)
            clipped = np.minimum(np.maximum(probs, 1e-12), 1.0)
            total_loss += (-(y_batch * np.log(clipped)).sum(axis=-1)).mean(axis=-1)
            grad = (probs - y_batch) / out.shape[1]

            # Backward; per-tensor gradients scattered into the flat stack.
            # The input gradient of the model's literal first layer is dead
            # by definition and never computed (same skip as the serial
            # fused step).
            for plan_index in range(len(self._plan) - 1, -1, -1):
                is_dense, dense_index, activation = self._plan[plan_index]
                layer_input = layer_inputs[plan_index]
                if is_dense:
                    view = views[dense_index]
                    grad_weights = self.ops.matmul(layer_input.transpose(0, 2, 1), grad)
                    weight_segment, bias_segment = self._dense_segments[dense_index]
                    grad_weights *= pack["mask"][:, weight_segment["slice"]].reshape(
                        grad_weights.shape
                    )
                    grad_flat[:, weight_segment["slice"]] = grad_weights.reshape(
                        grad_weights.shape[0], -1
                    )
                    if bias_segment is not None:
                        grad_flat[:, bias_segment["slice"]] = grad.sum(axis=1)
                    if plan_index != 0:
                        grad = self.ops.matmul(grad, view["weights"].transpose(0, 2, 1))
                else:
                    grad = activation.backward(layer_input, grad)

            optimizer.update(params, grad_flat)
            n_batches += 1

        per_genome_loss = total_loss / max(n_batches, 1)
        for row, genome in enumerate(active):
            histories[genome].train_loss.append(float(per_genome_loss[row]))
        # Re-quantize once for the post-epoch metrics (the serial path's
        # effective-weight cache recompute after the last optimizer step).
        return self._apply_pack(pack, params)

    def _segments_for(self, dense_index: int) -> Tuple[dict, Optional[dict]]:
        weight_segment = None
        bias_segment = None
        for segment in self._segments:
            if segment["dense_index"] == dense_index:
                if segment["attribute"] == "weights":
                    weight_segment = segment
                else:
                    bias_segment = segment
        return weight_segment, bias_segment

    def _forward(self, features: np.ndarray, views: List[dict]) -> np.ndarray:
        """Inference over the whole population: ``(G, N, n_classes)`` scores."""
        out = features
        for is_dense, dense_index, activation in self._plan:
            if is_dense:
                view = views[dense_index]
                out = self.ops.matmul(out, view["weights"])
                if view["bias"] is not None:
                    out = out + view["bias"][:, None, :]
            else:
                out = activation.forward(out)
        return out

    def _maybe_decay_learning_rate(
        self, optimizer: StackedAdam, row: int, epochs_without_improvement: int
    ) -> None:
        cfg = self.config
        if cfg.lr_decay_factor >= 1.0 or cfg.early_stopping_patience is None:
            return
        if epochs_without_improvement == max(cfg.early_stopping_patience // 2, 1):
            current = float(optimizer.learning_rates[row, 0])
            optimizer.learning_rates[row, 0] = max(
                current * cfg.lr_decay_factor, cfg.min_learning_rate
            )

    def _compact_pack(self, pack: dict, keep: np.ndarray) -> None:
        for key in ("mask", "pos_level", "neg_level", "max_levels"):
            pack[key] = pack[key][keep]
        for key in ("masked", "abs", "scale", "effective"):
            pack[key] = np.empty((keep.size, pack[key].shape[1]))

    def _write_back(
        self,
        final_params: List[Optional[np.ndarray]],
        best_params: List[Optional[np.ndarray]],
    ) -> None:
        """Publish trained parameters into the models (best weights restored)."""
        cfg = self.config
        for genome, model in enumerate(self.models):
            flat = final_params[genome]
            if cfg.restore_best_weights and best_params[genome] is not None:
                flat = best_params[genome]
            if flat is None:  # cfg.epochs exhausted before the genome ran (unreachable)
                continue
            dense = model.dense_layers
            for segment in self._segments:
                layer = dense[segment["dense_index"]]
                values = flat[segment["slice"]].reshape(segment["shape"]).copy()
                if segment["attribute"] == "weights":
                    layer.weights = values
                else:
                    layer.bias = values


def _softmax_cross_entropy_rows(scores: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Per-genome SoftmaxCrossEntropy.forward over ``(G, N, C)`` scores.

    Replicates :meth:`repro.nn.losses.SoftmaxCrossEntropy.forward` (including
    its ``np.clip``) per population row; returns a ``(G,)`` loss vector.
    """
    shifted = scores - np.max(scores, axis=-1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / np.sum(exp, axis=-1, keepdims=True)
    probs = np.clip(probs, 1e-12, 1.0)
    per_sample = -np.sum(targets * np.log(probs), axis=-1)
    return np.mean(per_sample, axis=-1)


def finetune_stacked(
    models: Sequence[MLP],
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: Optional[np.ndarray] = None,
    y_val: Optional[np.ndarray] = None,
    epochs: int = 20,
    learning_rate: float = 0.003,
    batch_size: int = 32,
    seeds: Optional[Sequence[Optional[int]]] = None,
    backend: Optional[Union[str, ArrayBackend]] = None,
) -> List[TrainingHistory]:
    """Population counterpart of :func:`repro.nn.trainer.finetune`.

    Same hyper-parameter derivation (aggressive early stopping, small LR),
    one stacked trainer instead of G serial ones. Genome ``g`` ends with
    byte-identical weights to ``finetune(models[g], ..., seed=seeds[g])``
    on the (default) numpy backend.
    """
    config = TrainerConfig(
        epochs=epochs,
        batch_size=batch_size,
        early_stopping_patience=max(3, epochs // 3),
        verbose=False,
    )
    trainer = StackedTrainer(
        models, learning_rate, config=config, seeds=seeds, backend=backend
    )
    return trainer.fit(x_train, y_train, x_val, y_val)


def predict_stacked(
    models: Sequence[MLP],
    features: np.ndarray,
    backend: Optional[Union[str, ArrayBackend]] = None,
) -> np.ndarray:
    """Batched class predictions for a population of same-topology models.

    Stacks each model's *effective* (masked + quantized) parameters — built
    per model with the exact serial ``effective_weights()`` path — and runs
    one batched forward pass; returns ``(G, n_samples)`` predicted classes,
    byte-identical to calling ``model.predict`` per model on the (default)
    numpy backend.
    """
    if not models:
        raise ValueError("Cannot predict with an empty population")
    ops = resolve_backend(backend)
    features = np.asarray(features, dtype=np.float64)
    out = features
    n_layers = len(models[0].layers)
    for index in range(n_layers):
        layer = models[0].layers[index]
        if isinstance(layer, Dense):
            weights = np.stack(
                [model.layers[index].effective_weights() for model in models]
            )
            out = ops.matmul(out, weights)
            if layer.use_bias:
                bias = np.stack(
                    [model.layers[index].effective_bias() for model in models]
                )
                out = out + bias[:, None, :]
        elif isinstance(layer, ActivationLayer):
            out = layer.activation.forward(out)
        else:
            raise ValueError(f"Unsupported layer for stacked inference: {layer!r}")
    return ops.argmax(out)
