"""Activation functions and their derivatives.

Each activation is a small class with ``forward`` and ``backward`` methods so
it can be used both by the training framework (float math) and referenced by
the bespoke circuit generator (which maps activation *names* to hardware
blocks: ReLU becomes a sign-check + mask, the output layer's softmax/argmax
becomes a comparator tree).
"""

from __future__ import annotations

from typing import Dict, Type

import numpy as np


class Activation:
    """Base class for activations.

    Subclasses implement :meth:`forward`; :meth:`backward` receives the
    upstream gradient and the *input* that was given to forward.
    """

    #: Name used by the bespoke circuit generator to pick a hardware block.
    name: str = "identity"

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the activation element-wise."""
        raise NotImplementedError

    def backward(self, x: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
        """Return d(loss)/d(x) given d(loss)/d(forward(x))."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Identity(Activation):
    """Pass-through activation (used for the pre-argmax output layer)."""

    name = "identity"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, x: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
        del x
        return grad_output


class ReLU(Activation):
    """Rectified linear unit; the hidden-layer activation of printed MLPs.

    In the bespoke circuit a ReLU is essentially free: it is the sign bit of
    the neuron's sum gating the output bus, so the area model charges only a
    row of AND gates.
    """

    name = "relu"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def backward(self, x: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * (x > 0.0)


class LeakyReLU(Activation):
    """Leaky ReLU with configurable negative slope."""

    name = "leaky_relu"

    def __init__(self, alpha: float = 0.01) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = float(alpha)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.where(x > 0.0, x, self.alpha * x)

    def backward(self, x: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * np.where(x > 0.0, 1.0, self.alpha)


class Sigmoid(Activation):
    """Logistic sigmoid (kept for completeness; not used in bespoke MLPs)."""

    name = "sigmoid"

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.empty_like(x, dtype=np.float64)
        positive = x >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
        exp_x = np.exp(x[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)
        return out

    def backward(self, x: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
        s = self.forward(x)
        return grad_output * s * (1.0 - s)


class Tanh(Activation):
    """Hyperbolic tangent."""

    name = "tanh"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def backward(self, x: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
        t = np.tanh(x)
        return grad_output * (1.0 - t * t)


class Softmax(Activation):
    """Numerically stable softmax over the last axis.

    Used only during training (paired with cross-entropy); the hardware
    implementation replaces it with an argmax comparator tree since only the
    winning class index is needed for classification.
    """

    name = "softmax"

    def forward(self, x: np.ndarray) -> np.ndarray:
        shifted = x - np.max(x, axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / np.sum(exp, axis=-1, keepdims=True)

    def backward(self, x: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
        s = self.forward(x)
        dot = np.sum(grad_output * s, axis=-1, keepdims=True)
        return s * (grad_output - dot)


_REGISTRY: Dict[str, Type[Activation]] = {
    "identity": Identity,
    "linear": Identity,
    "relu": ReLU,
    "leaky_relu": LeakyReLU,
    "sigmoid": Sigmoid,
    "tanh": Tanh,
    "softmax": Softmax,
}


def get_activation(name: str) -> Activation:
    """Instantiate an activation by name.

    Raises:
        KeyError: if ``name`` is not a registered activation.
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"Unknown activation '{name}'. Available: {sorted(_REGISTRY)}")
    return _REGISTRY[key]()


def available_activations() -> tuple:
    """Return the names of all registered activations."""
    return tuple(sorted(_REGISTRY))
