"""Mini-batch trainer with early stopping and learning-rate scheduling.

Training in this reproduction happens in three places, all through this
module: the initial float training of each baseline classifier, the
quantization-aware (re)training after fake-quantizers are attached, and the
short fine-tuning passes after pruning or clustering. They differ only in the
number of epochs and whether hooks are present on the Dense layers, so one
trainer covers all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..hardware.fixed_point import derive_scale
from .layers import ActivationLayer, Dense
from .losses import Loss, SoftmaxCrossEntropy, get_loss
from .metrics import accuracy
from .network import MLP
from .optimizers import Adam, Optimizer, get_optimizer


@dataclass
class TrainingHistory:
    """Per-epoch record of losses and accuracies."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)

    @property
    def epochs_run(self) -> int:
        return len(self.train_loss)

    @property
    def best_val_accuracy(self) -> float:
        return max(self.val_accuracy) if self.val_accuracy else float("nan")

    def as_dict(self) -> Dict[str, List[float]]:
        return {
            "train_loss": list(self.train_loss),
            "train_accuracy": list(self.train_accuracy),
            "val_loss": list(self.val_loss),
            "val_accuracy": list(self.val_accuracy),
        }


@dataclass
class TrainerConfig:
    """Hyper-parameters controlling :class:`Trainer.fit`."""

    epochs: int = 100
    batch_size: int = 32
    shuffle: bool = True
    #: Stop if the monitored quantity has not improved for this many epochs.
    early_stopping_patience: Optional[int] = 15
    #: ``"val_accuracy"`` or ``"val_loss"`` (falls back to train metrics when
    #: no validation data is supplied).
    monitor: str = "val_accuracy"
    #: Multiply the learning rate by this factor when patience/2 epochs pass
    #: without improvement (set to 1.0 to disable).
    lr_decay_factor: float = 0.5
    min_learning_rate: float = 1e-5
    #: Restore the best-seen weights at the end of training.
    restore_best_weights: bool = True
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive, got {self.epochs}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.monitor not in ("val_accuracy", "val_loss"):
            raise ValueError(f"monitor must be 'val_accuracy' or 'val_loss', got {self.monitor}")
        if not 0.0 < self.lr_decay_factor <= 1.0:
            raise ValueError("lr_decay_factor must be in (0, 1]")


def _one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    labels = np.asarray(labels).reshape(-1).astype(int)
    out = np.zeros((labels.size, n_classes), dtype=np.float64)
    out[np.arange(labels.size), labels] = 1.0
    return out


class Trainer:
    """Fits an :class:`~repro.nn.network.MLP` on labelled data.

    Args:
        model: the network to train (modified in place).
        optimizer: optimizer instance or registered name (default Adam).
        loss: loss instance or registered name (default fused softmax
            cross-entropy on logits).
        config: training hyper-parameters.
        seed: seed for the shuffling generator.
        fast_path: use the fused QAT training step when the model/loss shape
            allows it (plain Dense/Activation stack, softmax cross-entropy).
            The fast path executes the same float operations as the layerwise
            loop — effective weights are cached per optimizer step, the
            softmax is shared between the loss value and its gradient, and
            the dead input-gradient matmul of the first layer is skipped —
            so trajectories are bit-identical (property-tested). Set to
            ``False`` to force the layerwise reference path.
    """

    def __init__(
        self,
        model: MLP,
        optimizer: "Optimizer | str | None" = None,
        loss: "Loss | str | None" = None,
        config: Optional[TrainerConfig] = None,
        seed: Optional[int] = None,
        fast_path: bool = True,
    ) -> None:
        self.model = model
        if optimizer is None:
            optimizer = Adam(learning_rate=0.01)
        elif isinstance(optimizer, str):
            optimizer = get_optimizer(optimizer)
        self.optimizer = optimizer
        if loss is None:
            loss = SoftmaxCrossEntropy()
        elif isinstance(loss, str):
            loss = get_loss(loss)
        self.loss = loss
        self.config = config if config is not None else TrainerConfig()
        self.fast_path = bool(fast_path)
        self._quant_pack: "dict | None" = None
        self._rng = np.random.default_rng(seed)

    # -- main loop ------------------------------------------------------------

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
    ) -> TrainingHistory:
        """Train the model; returns the per-epoch history.

        ``y_train`` / ``y_val`` are integer class labels; they are one-hot
        encoded internally against the model's output width.
        """
        x_train = np.asarray(x_train, dtype=np.float64)
        y_train = np.asarray(y_train).reshape(-1).astype(int)
        if x_train.shape[0] != y_train.shape[0]:
            raise ValueError(
                f"x_train has {x_train.shape[0]} rows but y_train has {y_train.shape[0]}"
            )
        n_classes = self.model.topology()[-1]
        targets = _one_hot(y_train, n_classes)

        has_val = x_val is not None and y_val is not None
        if has_val:
            x_val = np.asarray(x_val, dtype=np.float64)
            y_val = np.asarray(y_val).reshape(-1).astype(int)
            val_targets = _one_hot(y_val, n_classes)

        history = TrainingHistory()
        cfg = self.config
        best_metric = -np.inf
        best_weights = None
        epochs_without_improvement = 0
        dense_layers = self.model.dense_layers
        if self._supports_fused_epoch():
            run_epoch = self._run_epoch_fused
            self._quant_pack = self._build_quant_pack(dense_layers)
        else:
            run_epoch = self._run_epoch
            self._quant_pack = None
        for layer in dense_layers:
            layer.set_effective_cache(True)
        try:
            for epoch in range(cfg.epochs):
                train_loss = run_epoch(x_train, targets)
                train_acc = self.model.evaluate_accuracy(x_train, y_train)
                history.train_loss.append(train_loss)
                history.train_accuracy.append(train_acc)

                if has_val:
                    val_scores = self.model.predict_scores(x_val)
                    val_loss = self.loss.forward(val_scores, val_targets)
                    val_acc = accuracy(y_val, np.argmax(val_scores, axis=-1))
                    history.val_loss.append(val_loss)
                    history.val_accuracy.append(val_acc)
                    monitored = val_acc if cfg.monitor == "val_accuracy" else -val_loss
                else:
                    monitored = train_acc if cfg.monitor == "val_accuracy" else -train_loss

                if cfg.verbose:  # pragma: no cover - console output
                    msg = f"epoch {epoch + 1}/{cfg.epochs} loss={train_loss:.4f} acc={train_acc:.4f}"
                    if has_val:
                        msg += f" val_acc={history.val_accuracy[-1]:.4f}"
                    print(msg)

                if monitored > best_metric + 1e-9:
                    best_metric = monitored
                    epochs_without_improvement = 0
                    if cfg.restore_best_weights:
                        best_weights = self.model.get_weights()
                else:
                    epochs_without_improvement += 1
                    self._maybe_decay_learning_rate(epochs_without_improvement)
                    if (
                        cfg.early_stopping_patience is not None
                        and epochs_without_improvement >= cfg.early_stopping_patience
                    ):
                        break
        finally:
            for layer in dense_layers:
                layer.set_effective_cache(False)

        if cfg.restore_best_weights and best_weights is not None:
            self.model.set_weights(best_weights)
        return history

    def _supports_fused_epoch(self) -> bool:
        """Whether the model/loss pair fits the fused QAT training step.

        The fused step handles the printed-classifier shape: a stack of
        Dense and Activation layers trained against softmax cross-entropy.
        Anything else (Dropout, custom layers, other losses) falls back to
        the layerwise reference loop, which stays bit-identical thanks to
        the per-step effective-weight cache.
        """
        if not self.fast_path:
            return False
        if type(self.loss) is not SoftmaxCrossEntropy:
            return False
        if not self.model.dense_layers:
            return False
        return all(
            isinstance(layer, (Dense, ActivationLayer)) for layer in self.model.layers
        )

    def _run_epoch(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """Layerwise reference epoch (used when the fused step does not apply)."""
        cfg = self.config
        n_samples = inputs.shape[0]
        order = np.arange(n_samples)
        if cfg.shuffle:
            self._rng.shuffle(order)
        dense_layers = self.model.dense_layers
        total_loss = 0.0
        n_batches = 0
        for start in range(0, n_samples, cfg.batch_size):
            batch_idx = order[start : start + cfg.batch_size]
            x_batch = inputs[batch_idx]
            y_batch = targets[batch_idx]
            scores = self.model.forward(x_batch, training=True)
            total_loss += self.loss.forward(scores, y_batch)
            grad = self.loss.backward(scores, y_batch)
            self.model.backward(grad)
            self.optimizer.update(self.model.parameters, self.model.gradients)
            for layer in dense_layers:
                layer.invalidate_effective_cache()
            n_batches += 1
        return total_loss / max(n_batches, 1)

    def _build_quant_pack(self, dense_layers: "List[Dense]") -> "dict | None":
        """Plan the packed per-step fake-quantization of all parameters.

        During QAT every Dense layer re-derives a fixed-point format and
        requantizes its weights and bias once per optimizer step. All those
        tensors can share one flattened pipeline — one mask multiply, one
        divide/rint/clip/rescale pass over a single buffer with per-segment
        scale and level vectors — because every operation is element-wise
        and the per-tensor scales are plain broadcast values. The float
        sequence per element is exactly the one
        :meth:`~repro.quantization.SymmetricQuantizer.__call__` applies, so
        packed and per-tensor quantization are bit-identical.

        Only :class:`~repro.quantization.SymmetricQuantizer` hooks are
        packable; tensors with other (or no) quantizers stay on the generic
        ``effective_weights()`` path. Returns ``None`` when nothing is
        packable.
        """
        # Deferred import: repro.quantization imports repro.nn for QAT.
        from ..quantization.quantizers import SymmetricQuantizer

        segments = []
        for layer in dense_layers:
            for attribute, array, quantizer, mask in layer.quantizable_tensors():
                if type(quantizer) is not SymmetricQuantizer:
                    continue
                segments.append(
                    {
                        "layer": layer,
                        "attribute": attribute,
                        "array": array,
                        "shape": array.shape,
                        "mask": mask,
                        "max_level": float(quantizer._max_level),
                        "quantizer": quantizer,
                    }
                )
        if not segments:
            return None
        offset = 0
        for segment in segments:
            size = segment["array"].size
            segment["slice"] = slice(offset, offset + size)
            offset += size
        total = offset
        flat_mask = np.ones(total)
        level_vec = np.empty(total)
        for segment in segments:
            if segment["mask"] is not None:
                flat_mask[segment["slice"]] = segment["mask"].reshape(-1)
            level_vec[segment["slice"]] = segment["max_level"]
        return {
            "segments": segments,
            "mask": flat_mask,
            "pos_level": level_vec,
            "neg_level": -level_vec,
            "raw": np.empty(total),
            "masked": np.empty(total),
            "abs": np.empty(total),
            "scale": np.empty(total),
            "effective": np.empty(total),
        }

    @staticmethod
    def _apply_quant_pack(pack: dict) -> None:
        """One packed fake-quantization step; publishes per-layer cache views."""
        raw = pack["raw"]
        masked = pack["masked"]
        abs_buf = pack["abs"]
        scale = pack["scale"]
        effective = pack["effective"]
        segments = pack["segments"]
        for segment in segments:
            raw[segment["slice"]] = segment["array"].reshape(-1)
        np.multiply(raw, pack["mask"], out=masked)
        np.abs(masked, out=abs_buf)
        for segment in segments:
            fixed = segment["quantizer"].scale
            if fixed is None:
                max_abs = float(abs_buf[segment["slice"]].max()) if segment["array"].size else 0.0
                fixed = derive_scale(max_abs, segment["max_level"])
            scale[segment["slice"]] = fixed
        np.divide(masked, scale, out=effective)
        np.rint(effective, out=effective)
        np.maximum(effective, pack["neg_level"], out=effective)
        np.minimum(effective, pack["pos_level"], out=effective)
        effective += 0.0
        effective *= scale
        for segment in segments:
            view = effective[segment["slice"]].reshape(segment["shape"])
            if segment["attribute"] == "weights":
                segment["layer"]._cached_effective_weights = view
            else:
                segment["layer"]._cached_effective_bias = view

    def _run_epoch_fused(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """Fused QAT training step over one epoch.

        Numerically identical to :meth:`_run_epoch` with less per-batch
        Python/numpy overhead:

        * the epoch's shuffled sample matrix is gathered once instead of
          fancy-indexing every batch (the shuffle consumes the RNG exactly
          like the reference loop);
        * effective (masked + fake-quantized) weights are computed once per
          optimizer step and shared by forward and backward, so the
          quantizer derives its fixed-point format once per step;
        * the softmax is computed once and shared between the loss value and
          its gradient (the reference loss recomputes it from the same
          logits, which yields the same floats);
        * the first Dense layer's input gradient — discarded by definition —
          is never computed;
        * parameter/gradient lists are assembled locally and handed to the
          (fused) optimizer in the same order as ``model.parameters``.
        """
        cfg = self.config
        model = self.model
        n_samples = inputs.shape[0]
        order = np.arange(n_samples)
        if cfg.shuffle:
            self._rng.shuffle(order)
        x_all = inputs[order]
        y_all = targets[order]

        dense_layers = model.dense_layers
        # The input gradient is dead only for the model's *first* layer; a
        # Dense preceded by an activation must still propagate to it.
        first_layer = model.layers[0]
        optimizer = self.optimizer
        # Per-layer dispatch plan, resolved once per epoch: (is_dense, layer,
        # activation-or-None). Parameter arrays are updated in place, so the
        # list is stable for the whole epoch.
        plan = [
            (isinstance(layer, Dense), layer, getattr(layer, "activation", None))
            for layer in model.layers
        ]
        parameters = []
        for layer in dense_layers:
            parameters.append(layer.weights)
            if layer.use_bias:
                parameters.append(layer.bias)
        quant_pack = self._quant_pack
        total_loss = 0.0
        n_batches = 0
        for start in range(0, n_samples, cfg.batch_size):
            x_batch = x_all[start : start + cfg.batch_size]
            y_batch = y_all[start : start + cfg.batch_size]

            if quant_pack is not None:
                self._apply_quant_pack(quant_pack)

            # Forward, remembering each layer's input.
            layer_inputs = []
            out = x_batch
            for is_dense, layer, activation in plan:
                layer_inputs.append(out)
                if is_dense:
                    out = out @ layer.effective_weights()
                    if layer.use_bias:
                        out = out + layer.effective_bias()
                else:
                    out = activation.forward(out)

            # Fused softmax cross-entropy: one softmax for value + gradient,
            # ufunc-method calls in place of the np.* dispatch wrappers
            # (identical floats; clip == minimum(maximum())).
            shifted = out - out.max(axis=-1, keepdims=True)
            exp = np.exp(shifted)
            probs = exp / exp.sum(axis=-1, keepdims=True)
            clipped = np.minimum(np.maximum(probs, 1e-12), 1.0)
            total_loss += float((-(y_batch * np.log(clipped)).sum(axis=-1)).mean())
            grad = (probs - y_batch) / out.shape[0]

            # Backward; gradients collected in model.parameters order.
            gradients = []
            for (is_dense, layer, activation), layer_input in zip(
                reversed(plan), reversed(layer_inputs)
            ):
                if is_dense:
                    grad_weights = layer_input.T @ grad
                    if layer.mask is not None:
                        grad_weights = grad_weights * layer.mask
                    layer.grad_weights = grad_weights
                    if layer.use_bias:
                        layer.grad_bias = grad.sum(axis=0)
                        gradients.append(layer.grad_bias)
                    gradients.append(grad_weights)
                    if layer is not first_layer:
                        grad = grad @ layer.effective_weights().T
                else:
                    grad = activation.backward(layer_input, grad)
            gradients.reverse()
            optimizer.update(parameters, gradients)
            for layer in dense_layers:
                layer.invalidate_effective_cache()
            n_batches += 1
        return total_loss / max(n_batches, 1)

    def _maybe_decay_learning_rate(self, epochs_without_improvement: int) -> None:
        cfg = self.config
        if cfg.lr_decay_factor >= 1.0 or cfg.early_stopping_patience is None:
            return
        if epochs_without_improvement == max(cfg.early_stopping_patience // 2, 1):
            new_lr = max(
                self.optimizer.learning_rate * cfg.lr_decay_factor,
                cfg.min_learning_rate,
            )
            self.optimizer.learning_rate = new_lr


def train_classifier(
    model: MLP,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: Optional[np.ndarray] = None,
    y_val: Optional[np.ndarray] = None,
    epochs: int = 100,
    batch_size: int = 32,
    learning_rate: float = 0.01,
    patience: Optional[int] = 15,
    seed: Optional[int] = None,
    verbose: bool = False,
) -> TrainingHistory:
    """One-call convenience wrapper used by examples and experiments."""
    config = TrainerConfig(
        epochs=epochs,
        batch_size=batch_size,
        early_stopping_patience=patience,
        verbose=verbose,
    )
    trainer = Trainer(
        model,
        optimizer=Adam(learning_rate=learning_rate),
        config=config,
        seed=seed,
    )
    return trainer.fit(x_train, y_train, x_val, y_val)


def finetune(
    model: MLP,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: Optional[np.ndarray] = None,
    y_val: Optional[np.ndarray] = None,
    epochs: int = 20,
    learning_rate: float = 0.003,
    batch_size: int = 32,
    seed: Optional[int] = None,
) -> TrainingHistory:
    """Short retraining pass after a minimization step (QAT / pruning / clustering).

    Uses a smaller learning rate and fewer epochs than initial training, and
    keeps early stopping aggressive — matching how QAT retraining is applied
    in the paper's QKeras flow.
    """
    config = TrainerConfig(
        epochs=epochs,
        batch_size=batch_size,
        early_stopping_patience=max(3, epochs // 3),
        verbose=False,
    )
    trainer = Trainer(
        model,
        optimizer=Adam(learning_rate=learning_rate),
        config=config,
        seed=seed,
    )
    return trainer.fit(x_train, y_train, x_val, y_val)
