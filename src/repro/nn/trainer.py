"""Mini-batch trainer with early stopping and learning-rate scheduling.

Training in this reproduction happens in three places, all through this
module: the initial float training of each baseline classifier, the
quantization-aware (re)training after fake-quantizers are attached, and the
short fine-tuning passes after pruning or clustering. They differ only in the
number of epochs and whether hooks are present on the Dense layers, so one
trainer covers all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .losses import Loss, SoftmaxCrossEntropy, get_loss
from .metrics import accuracy
from .network import MLP
from .optimizers import Adam, Optimizer, get_optimizer


@dataclass
class TrainingHistory:
    """Per-epoch record of losses and accuracies."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)

    @property
    def epochs_run(self) -> int:
        return len(self.train_loss)

    @property
    def best_val_accuracy(self) -> float:
        return max(self.val_accuracy) if self.val_accuracy else float("nan")

    def as_dict(self) -> Dict[str, List[float]]:
        return {
            "train_loss": list(self.train_loss),
            "train_accuracy": list(self.train_accuracy),
            "val_loss": list(self.val_loss),
            "val_accuracy": list(self.val_accuracy),
        }


@dataclass
class TrainerConfig:
    """Hyper-parameters controlling :class:`Trainer.fit`."""

    epochs: int = 100
    batch_size: int = 32
    shuffle: bool = True
    #: Stop if the monitored quantity has not improved for this many epochs.
    early_stopping_patience: Optional[int] = 15
    #: ``"val_accuracy"`` or ``"val_loss"`` (falls back to train metrics when
    #: no validation data is supplied).
    monitor: str = "val_accuracy"
    #: Multiply the learning rate by this factor when patience/2 epochs pass
    #: without improvement (set to 1.0 to disable).
    lr_decay_factor: float = 0.5
    min_learning_rate: float = 1e-5
    #: Restore the best-seen weights at the end of training.
    restore_best_weights: bool = True
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive, got {self.epochs}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.monitor not in ("val_accuracy", "val_loss"):
            raise ValueError(f"monitor must be 'val_accuracy' or 'val_loss', got {self.monitor}")
        if not 0.0 < self.lr_decay_factor <= 1.0:
            raise ValueError("lr_decay_factor must be in (0, 1]")


def _one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    labels = np.asarray(labels).reshape(-1).astype(int)
    out = np.zeros((labels.size, n_classes), dtype=np.float64)
    out[np.arange(labels.size), labels] = 1.0
    return out


class Trainer:
    """Fits an :class:`~repro.nn.network.MLP` on labelled data.

    Args:
        model: the network to train (modified in place).
        optimizer: optimizer instance or registered name (default Adam).
        loss: loss instance or registered name (default fused softmax
            cross-entropy on logits).
        config: training hyper-parameters.
        seed: seed for the shuffling generator.
    """

    def __init__(
        self,
        model: MLP,
        optimizer: "Optimizer | str | None" = None,
        loss: "Loss | str | None" = None,
        config: Optional[TrainerConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.model = model
        if optimizer is None:
            optimizer = Adam(learning_rate=0.01)
        elif isinstance(optimizer, str):
            optimizer = get_optimizer(optimizer)
        self.optimizer = optimizer
        if loss is None:
            loss = SoftmaxCrossEntropy()
        elif isinstance(loss, str):
            loss = get_loss(loss)
        self.loss = loss
        self.config = config if config is not None else TrainerConfig()
        self._rng = np.random.default_rng(seed)

    # -- main loop ------------------------------------------------------------

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
    ) -> TrainingHistory:
        """Train the model; returns the per-epoch history.

        ``y_train`` / ``y_val`` are integer class labels; they are one-hot
        encoded internally against the model's output width.
        """
        x_train = np.asarray(x_train, dtype=np.float64)
        y_train = np.asarray(y_train).reshape(-1).astype(int)
        if x_train.shape[0] != y_train.shape[0]:
            raise ValueError(
                f"x_train has {x_train.shape[0]} rows but y_train has {y_train.shape[0]}"
            )
        n_classes = self.model.topology()[-1]
        targets = _one_hot(y_train, n_classes)

        has_val = x_val is not None and y_val is not None
        if has_val:
            x_val = np.asarray(x_val, dtype=np.float64)
            y_val = np.asarray(y_val).reshape(-1).astype(int)

        history = TrainingHistory()
        cfg = self.config
        best_metric = -np.inf
        best_weights = None
        epochs_without_improvement = 0

        for epoch in range(cfg.epochs):
            train_loss = self._run_epoch(x_train, targets)
            train_acc = self.model.evaluate_accuracy(x_train, y_train)
            history.train_loss.append(train_loss)
            history.train_accuracy.append(train_acc)

            if has_val:
                val_scores = self.model.predict_scores(x_val)
                val_loss = self.loss.forward(val_scores, _one_hot(y_val, n_classes))
                val_acc = accuracy(y_val, np.argmax(val_scores, axis=-1))
                history.val_loss.append(val_loss)
                history.val_accuracy.append(val_acc)
                monitored = val_acc if cfg.monitor == "val_accuracy" else -val_loss
            else:
                monitored = train_acc if cfg.monitor == "val_accuracy" else -train_loss

            if cfg.verbose:  # pragma: no cover - console output
                msg = f"epoch {epoch + 1}/{cfg.epochs} loss={train_loss:.4f} acc={train_acc:.4f}"
                if has_val:
                    msg += f" val_acc={history.val_accuracy[-1]:.4f}"
                print(msg)

            if monitored > best_metric + 1e-9:
                best_metric = monitored
                epochs_without_improvement = 0
                if cfg.restore_best_weights:
                    best_weights = self.model.get_weights()
            else:
                epochs_without_improvement += 1
                self._maybe_decay_learning_rate(epochs_without_improvement)
                if (
                    cfg.early_stopping_patience is not None
                    and epochs_without_improvement >= cfg.early_stopping_patience
                ):
                    break

        if cfg.restore_best_weights and best_weights is not None:
            self.model.set_weights(best_weights)
        return history

    def _run_epoch(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        cfg = self.config
        n_samples = inputs.shape[0]
        order = np.arange(n_samples)
        if cfg.shuffle:
            self._rng.shuffle(order)
        total_loss = 0.0
        n_batches = 0
        for start in range(0, n_samples, cfg.batch_size):
            batch_idx = order[start : start + cfg.batch_size]
            x_batch = inputs[batch_idx]
            y_batch = targets[batch_idx]
            scores = self.model.forward(x_batch, training=True)
            total_loss += self.loss.forward(scores, y_batch)
            grad = self.loss.backward(scores, y_batch)
            self.model.backward(grad)
            self.optimizer.update(self.model.parameters, self.model.gradients)
            n_batches += 1
        return total_loss / max(n_batches, 1)

    def _maybe_decay_learning_rate(self, epochs_without_improvement: int) -> None:
        cfg = self.config
        if cfg.lr_decay_factor >= 1.0 or cfg.early_stopping_patience is None:
            return
        if epochs_without_improvement == max(cfg.early_stopping_patience // 2, 1):
            new_lr = max(
                self.optimizer.learning_rate * cfg.lr_decay_factor,
                cfg.min_learning_rate,
            )
            self.optimizer.learning_rate = new_lr


def train_classifier(
    model: MLP,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: Optional[np.ndarray] = None,
    y_val: Optional[np.ndarray] = None,
    epochs: int = 100,
    batch_size: int = 32,
    learning_rate: float = 0.01,
    patience: Optional[int] = 15,
    seed: Optional[int] = None,
    verbose: bool = False,
) -> TrainingHistory:
    """One-call convenience wrapper used by examples and experiments."""
    config = TrainerConfig(
        epochs=epochs,
        batch_size=batch_size,
        early_stopping_patience=patience,
        verbose=verbose,
    )
    trainer = Trainer(
        model,
        optimizer=Adam(learning_rate=learning_rate),
        config=config,
        seed=seed,
    )
    return trainer.fit(x_train, y_train, x_val, y_val)


def finetune(
    model: MLP,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: Optional[np.ndarray] = None,
    y_val: Optional[np.ndarray] = None,
    epochs: int = 20,
    learning_rate: float = 0.003,
    batch_size: int = 32,
    seed: Optional[int] = None,
) -> TrainingHistory:
    """Short retraining pass after a minimization step (QAT / pruning / clustering).

    Uses a smaller learning rate and fewer epochs than initial training, and
    keeps early stopping aggressive — matching how QAT retraining is applied
    in the paper's QKeras flow.
    """
    config = TrainerConfig(
        epochs=epochs,
        batch_size=batch_size,
        early_stopping_patience=max(3, epochs // 3),
        verbose=False,
    )
    trainer = Trainer(
        model,
        optimizer=Adam(learning_rate=learning_rate),
        config=config,
        seed=seed,
    )
    return trainer.fit(x_train, y_train, x_val, y_val)
