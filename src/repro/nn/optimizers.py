"""Gradient-descent optimizers.

The optimizers operate on lists of parameter/gradient array pairs, which is
how :class:`repro.nn.network.MLP` exposes its layers. Updates are in-place so
that layer hooks (masks, quantizers) keep pointing at the same arrays.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from ..core.backend import resolve_backend


class Optimizer:
    """Base optimizer: subclasses implement :meth:`update`."""

    def __init__(self, learning_rate: float = 0.01) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = float(learning_rate)

    def update(
        self, parameters: Sequence[np.ndarray], gradients: Sequence[np.ndarray]
    ) -> None:
        """Apply one update step in place."""
        raise NotImplementedError

    def reset_state(self) -> None:
        """Clear any accumulated state (momentum buffers etc.)."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        learning_rate: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = bool(nesterov)
        self._velocities: Dict[int, np.ndarray] = {}

    def update(
        self, parameters: Sequence[np.ndarray], gradients: Sequence[np.ndarray]
    ) -> None:
        _check_aligned(parameters, gradients)
        for param, grad in zip(parameters, gradients):
            grad = grad + self.weight_decay * param if self.weight_decay else grad
            if self.momentum > 0.0:
                key = id(param)
                velocity = self._velocities.get(key)
                if velocity is None or velocity.shape != param.shape:
                    velocity = np.zeros_like(param)
                velocity = self.momentum * velocity + grad
                self._velocities[key] = velocity
                step = (grad + self.momentum * velocity) if self.nesterov else velocity
            else:
                step = grad
            param -= self.learning_rate * step

    def reset_state(self) -> None:
        self._velocities.clear()


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction.

    When the same parameter list is passed on every call (the trainer's
    usage), the update is fused across one flattened buffer: moments live in
    two flat arrays and the whole step is a handful of in-place vector ops
    instead of per-parameter numpy round-trips. Adam is element-wise, so the
    fused step applies the exact float operation sequence of the per-array
    loop and the trajectories are bit-identical (see
    ``tests/test_perf_fastpaths.py``). Pass ``fused=False`` to force the
    historical per-parameter loop.
    """

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
        fused: bool = True,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0:
            raise ValueError(f"beta1 must be in [0, 1), got {beta1}")
        if not 0.0 <= beta2 < 1.0:
            raise ValueError(f"beta2 must be in [0, 1), got {beta2}")
        if epsilon <= 0.0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if weight_decay < 0.0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self.weight_decay = float(weight_decay)
        self.fused = bool(fused)
        self._state: Dict[int, Tuple[np.ndarray, np.ndarray, int]] = {}
        self._flat: "dict | None" = None

    def update(
        self, parameters: Sequence[np.ndarray], gradients: Sequence[np.ndarray]
    ) -> None:
        _check_aligned(parameters, gradients)
        if self.fused:
            flat = self._flat
            if (
                flat is not None
                and len(parameters) == len(flat["params"])
                # Identity against the arrays the flat state was built for
                # (held strongly in the state, so a freed array's id can
                # never be recycled into a false match).
                and all(p is q for p, q in zip(parameters, flat["params"]))
            ):
                self._update_fused(flat, parameters, gradients)
                return
            if flat is None and not any(id(p) in self._state for p in parameters):
                self._flat = self._init_flat(parameters)
                self._update_fused(self._flat, parameters, gradients)
                return
            # The parameter list changed mid-stream: fold the fused moments
            # back into the per-parameter store and continue on the legacy
            # path, which handles arbitrary call patterns.
            if flat is not None:
                self._defuse(flat)
        self._update_legacy(parameters, gradients)

    def _update_legacy(
        self, parameters: Sequence[np.ndarray], gradients: Sequence[np.ndarray]
    ) -> None:
        for param, grad in zip(parameters, gradients):
            grad = grad + self.weight_decay * param if self.weight_decay else grad
            key = id(param)
            m, v, t = self._state.get(
                key, (np.zeros_like(param), np.zeros_like(param), 0)
            )
            if m.shape != param.shape:
                m, v, t = np.zeros_like(param), np.zeros_like(param), 0
            t += 1
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * (grad * grad)
            self._state[key] = (m, v, t)
            m_hat = m / (1.0 - self.beta1**t)
            v_hat = v / (1.0 - self.beta2**t)
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    @staticmethod
    def _init_flat(parameters: Sequence[np.ndarray]) -> dict:
        sizes = [p.size for p in parameters]
        total = int(sum(sizes))
        offsets = []
        offset = 0
        for size in sizes:
            offsets.append(offset)
            offset += size
        return {
            "params": list(parameters),
            "shapes": [p.shape for p in parameters],
            "slices": [
                slice(o, o + s) for o, s in zip(offsets, sizes)
            ],
            "m": np.zeros(total),
            "v": np.zeros(total),
            "t": 0,
            "grad": np.empty(total),
            "sq": np.empty(total),
            "step": np.empty(total),
            "denom": np.empty(total),
        }

    def _update_fused(
        self,
        flat: dict,
        parameters: Sequence[np.ndarray],
        gradients: Sequence[np.ndarray],
    ) -> None:
        g = flat["grad"]
        for sl, grad in zip(flat["slices"], gradients):
            g[sl] = grad.reshape(-1)
        if self.weight_decay:
            for sl, param in zip(flat["slices"], parameters):
                g[sl] += self.weight_decay * param.reshape(-1)
        flat["t"] = t = flat["t"] + 1
        m, v, sq = flat["m"], flat["v"], flat["sq"]
        step, denom = flat["step"], flat["denom"]
        # Same per-element float sequence as the legacy loop, staged through
        # preallocated buffers: m = beta1*m + (1-beta1)*g ; v = beta2*v + (1-beta2)*g*g
        np.multiply(g, 1.0 - self.beta1, out=step)
        m *= self.beta1
        m += step
        np.multiply(g, g, out=sq)
        sq *= 1.0 - self.beta2
        v *= self.beta2
        v += sq
        # param -= (lr * (m / c1)) / (sqrt(v / c2) + eps), evaluated in the
        # legacy expression's order.
        np.divide(m, 1.0 - self.beta1**t, out=step)
        step *= self.learning_rate
        np.divide(v, 1.0 - self.beta2**t, out=denom)
        np.sqrt(denom, out=denom)
        denom += self.epsilon
        step /= denom
        for sl, param, shape in zip(flat["slices"], parameters, flat["shapes"]):
            param -= step[sl].reshape(shape)

    def _defuse(self, flat: dict) -> None:
        """Move fused moments into the per-parameter store, preserving steps."""
        for param, sl, shape in zip(flat["params"], flat["slices"], flat["shapes"]):
            self._state[id(param)] = (
                flat["m"][sl].reshape(shape).copy(),
                flat["v"][sl].reshape(shape).copy(),
                flat["t"],
            )
        self._flat = None

    def reset_state(self) -> None:
        self._state.clear()
        self._flat = None


class StackedAdam:
    """Adam over a population axis: one ``(G, P)`` buffer updates G models at once.

    The stacked population trainer (:mod:`repro.nn.stacked`) keeps every
    genome's parameters flattened into one row of a ``(G, P)`` matrix. This
    optimizer applies :class:`Adam`'s fused update to the whole matrix with
    the exact per-element float sequence of the single-model fused path, so
    row ``g`` evolves bit-identically to a fresh ``Adam`` updating genome
    ``g`` alone — provided all rows step in lockstep (which the stacked
    trainer guarantees by evicting early-stopped genomes from the stack).

    Per-genome learning rates are supported (the trainer's per-genome LR
    decay) as a ``(G, 1)`` column broadcast: multiplying a row by its scalar
    learning rate is the same IEEE operation the scalar path performs.

    Args:
        learning_rates: per-genome learning rates, shape ``(G,)``.
        beta1 / beta2 / epsilon: Adam hyper-parameters (shared by all rows).
        backend: array backend for the fused step (name, instance, or
            ``None`` = resolve via :func:`repro.core.backend.resolve_backend`).
            The bit-identity statement above is for the numpy backend.
    """

    def __init__(
        self,
        learning_rates: Sequence[float],
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        backend=None,
    ) -> None:
        rates = np.asarray(learning_rates, dtype=np.float64).reshape(-1, 1)
        if rates.size == 0 or np.any(rates <= 0):
            raise ValueError("learning_rates must be a non-empty positive vector")
        if not 0.0 <= beta1 < 1.0:
            raise ValueError(f"beta1 must be in [0, 1), got {beta1}")
        if not 0.0 <= beta2 < 1.0:
            raise ValueError(f"beta2 must be in [0, 1), got {beta2}")
        if epsilon <= 0.0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.learning_rates = rates
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self.ops = resolve_backend(backend)
        self.t = 0
        self._m: Optional[np.ndarray] = None
        self._v: Optional[np.ndarray] = None
        self._step: Optional[np.ndarray] = None
        self._sq: Optional[np.ndarray] = None
        self._denom: Optional[np.ndarray] = None

    def update(self, parameters: np.ndarray, gradients: np.ndarray) -> None:
        """One in-place Adam step on the stacked ``(G, P)`` parameter matrix."""
        if parameters.shape != gradients.shape or parameters.ndim != 2:
            raise ValueError(
                f"parameters/gradients must be matching 2-D stacks, got "
                f"{parameters.shape} vs {gradients.shape}"
            )
        if parameters.shape[0] != self.learning_rates.shape[0]:
            raise ValueError(
                f"Stack has {parameters.shape[0]} rows but "
                f"{self.learning_rates.shape[0]} learning rates"
            )
        if self._m is None or self._m.shape != parameters.shape:
            self._m = np.zeros_like(parameters)
            self._v = np.zeros_like(parameters)
            self._step = np.empty_like(parameters)
            self._sq = np.empty_like(parameters)
            self._denom = np.empty_like(parameters)
        self.t += 1
        # Identical per-element float sequence to Adam._update_fused.
        self.ops.adam_step(
            parameters,
            gradients,
            self._m,
            self._v,
            self._step,
            self._sq,
            self._denom,
            self.learning_rates,
            self.beta1,
            self.beta2,
            self.epsilon,
            self.t,
        )

    def compact(self, keep: np.ndarray) -> None:
        """Drop state rows of evicted genomes (``keep`` indexes surviving rows)."""
        self.learning_rates = self.learning_rates[keep]
        if self._m is not None:
            self._m = self._m[keep]
            self._v = self._v[keep]
            self._step = np.empty_like(self._m)
            self._sq = np.empty_like(self._m)
            self._denom = np.empty_like(self._m)


class RMSProp(Optimizer):
    """RMSProp with exponentially decaying average of squared gradients."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        decay: float = 0.9,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= decay < 1.0:
            raise ValueError(f"decay must be in [0, 1), got {decay}")
        if epsilon <= 0.0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.decay = float(decay)
        self.epsilon = float(epsilon)
        self._cache: Dict[int, np.ndarray] = {}

    def update(
        self, parameters: Sequence[np.ndarray], gradients: Sequence[np.ndarray]
    ) -> None:
        _check_aligned(parameters, gradients)
        for param, grad in zip(parameters, gradients):
            key = id(param)
            cache = self._cache.get(key)
            if cache is None or cache.shape != param.shape:
                cache = np.zeros_like(param)
            cache = self.decay * cache + (1.0 - self.decay) * (grad * grad)
            self._cache[key] = cache
            param -= self.learning_rate * grad / (np.sqrt(cache) + self.epsilon)

    def reset_state(self) -> None:
        self._cache.clear()


def _check_aligned(
    parameters: Sequence[np.ndarray], gradients: Sequence[np.ndarray]
) -> None:
    if len(parameters) != len(gradients):
        raise ValueError(
            f"Got {len(parameters)} parameters but {len(gradients)} gradients"
        )
    for param, grad in zip(parameters, gradients):
        if param.shape != grad.shape:
            raise ValueError(
                f"Parameter/gradient shape mismatch: {param.shape} vs {grad.shape}"
            )


_REGISTRY: Dict[str, Type[Optimizer]] = {
    "sgd": SGD,
    "adam": Adam,
    "rmsprop": RMSProp,
}


def get_optimizer(name: str, **kwargs) -> Optimizer:
    """Instantiate an optimizer by name with keyword overrides.

    Raises:
        KeyError: if ``name`` is not a registered optimizer.
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"Unknown optimizer '{name}'. Available: {sorted(_REGISTRY)}")
    return _REGISTRY[key](**kwargs)


def available_optimizers() -> List[str]:
    """Return the names of all registered optimizers."""
    return sorted(_REGISTRY)
