"""NumPy MLP training substrate.

This package replaces the Keras/QKeras training stack of the original paper
with a small, dependency-free framework: layers, activations, losses,
optimizers, a mini-batch trainer and model (de)serialization. See
``DESIGN.md`` section 3 for how it fits into the reproduction.
"""

from .activations import (
    Activation,
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
    available_activations,
    get_activation,
)
from .initializers import available_initializers, get_initializer
from .layers import ActivationLayer, Dense, Dropout, Layer
from .losses import (
    CategoricalCrossEntropy,
    HingeLoss,
    Loss,
    MeanAbsoluteError,
    MeanSquaredError,
    SoftmaxCrossEntropy,
    available_losses,
    get_loss,
)
from .metrics import (
    accuracy,
    accuracy_drop,
    confusion_matrix,
    per_class_accuracy,
    precision_recall_f1,
    top_k_accuracy,
)
from .network import MLP, build_mlp
from .optimizers import (
    SGD,
    Adam,
    Optimizer,
    RMSProp,
    StackedAdam,
    available_optimizers,
    get_optimizer,
)
from .serialization import load_model, save_model
from .stacked import (
    StackedTrainer,
    finetune_stacked,
    predict_stacked,
    supports_stacking,
)
from .trainer import (
    Trainer,
    TrainerConfig,
    TrainingHistory,
    finetune,
    train_classifier,
)

__all__ = [
    "Activation",
    "ActivationLayer",
    "Adam",
    "CategoricalCrossEntropy",
    "Dense",
    "Dropout",
    "HingeLoss",
    "Identity",
    "Layer",
    "LeakyReLU",
    "Loss",
    "MLP",
    "MeanAbsoluteError",
    "MeanSquaredError",
    "Optimizer",
    "RMSProp",
    "ReLU",
    "SGD",
    "Sigmoid",
    "Softmax",
    "SoftmaxCrossEntropy",
    "StackedAdam",
    "StackedTrainer",
    "Tanh",
    "Trainer",
    "TrainerConfig",
    "TrainingHistory",
    "accuracy",
    "accuracy_drop",
    "available_activations",
    "available_initializers",
    "available_losses",
    "available_optimizers",
    "build_mlp",
    "confusion_matrix",
    "finetune",
    "finetune_stacked",
    "get_activation",
    "get_initializer",
    "get_loss",
    "get_optimizer",
    "load_model",
    "per_class_accuracy",
    "precision_recall_f1",
    "predict_stacked",
    "save_model",
    "supports_stacking",
    "top_k_accuracy",
    "train_classifier",
]
