"""Layers for the NumPy MLP framework.

The only layer that matters for bespoke printed MLPs is :class:`Dense`;
:class:`ActivationLayer` and :class:`Dropout` exist so training pipelines can
be expressed as a flat list of layers, Keras-style.

:class:`Dense` carries two optional hooks that the minimization packages use:

* ``mask`` — a binary array the same shape as the weights; pruned connections
  are zeros in the mask. It is applied both in the forward pass and to the
  weight gradient, so fine-tuning never resurrects a pruned connection.
* ``weight_quantizer`` — a callable mapping the float weights to their
  fake-quantized values. During QAT the forward pass uses the quantized
  weights while gradients flow to the full-precision shadow weights
  (straight-through estimator).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from .activations import Activation, get_activation
from .initializers import get_initializer


class Layer:
    """Base layer interface (forward / backward / parameter access)."""

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def parameters(self) -> List[np.ndarray]:
        """Trainable parameter arrays (may be empty)."""
        return []

    @property
    def gradients(self) -> List[np.ndarray]:
        """Gradient arrays aligned with :attr:`parameters`."""
        return []

    def __call__(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(inputs, training=training)


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``.

    Weights are stored as ``(n_inputs, n_outputs)`` so that row ``i`` holds
    every weight multiplied by input ``i`` — the "same position" grouping the
    paper's weight-clustering technique operates on.

    Args:
        n_inputs: number of input features.
        n_outputs: number of neurons.
        use_bias: whether to add a bias term. Bespoke implementations keep
            the bias (it is a hard-wired constant adder input).
        weight_initializer: registered initializer name for the weights.
        bias_initializer: registered initializer name for the bias.
        rng: generator used for initialization (a fresh default generator is
            created when omitted, which makes the layer non-reproducible).
    """

    def __init__(
        self,
        n_inputs: int,
        n_outputs: int,
        use_bias: bool = True,
        weight_initializer: str = "glorot_uniform",
        bias_initializer: str = "zeros",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_inputs <= 0 or n_outputs <= 0:
            raise ValueError(
                f"Dense layer dimensions must be positive, got ({n_inputs}, {n_outputs})"
            )
        rng = rng if rng is not None else np.random.default_rng()
        self.n_inputs = int(n_inputs)
        self.n_outputs = int(n_outputs)
        self.use_bias = bool(use_bias)

        self.weights = get_initializer(weight_initializer)((n_inputs, n_outputs), rng)
        self.bias = get_initializer(bias_initializer)((n_outputs,), rng)

        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)

        #: Binary pruning mask (1 = kept, 0 = pruned); ``None`` means no mask.
        self.mask: Optional[np.ndarray] = None
        #: Fake-quantization hook applied to the weights in the forward pass.
        self.weight_quantizer: Optional[Callable[[np.ndarray], np.ndarray]] = None
        #: Fake-quantization hook applied to the bias in the forward pass.
        self.bias_quantizer: Optional[Callable[[np.ndarray], np.ndarray]] = None

        self._last_input: Optional[np.ndarray] = None
        # Opt-in cache of the effective (masked + fake-quantized) parameters.
        # ``effective_weights()`` is a pure function of the weights/mask/
        # quantizer, but the training loop calls it several times per
        # optimizer step (forward, backward, per-epoch evaluation) while the
        # weights only change at ``optimizer.update()``. The trainer enables
        # the cache for the duration of ``fit()`` and invalidates it after
        # every update, so cached and uncached runs are bit-identical.
        self._effective_cache_enabled = False
        self._cached_effective_weights: Optional[np.ndarray] = None
        self._cached_effective_bias: Optional[np.ndarray] = None

    # -- effective parameters -------------------------------------------------

    def set_effective_cache(self, enabled: bool) -> None:
        """Enable/disable caching of the effective parameters (cleared either way).

        Whoever enables the cache owns invalidation: call
        :meth:`invalidate_effective_cache` after every in-place weight
        update. Outside a training loop the cache must stay disabled —
        pruning, clustering and direct weight edits do not invalidate it.
        """
        self._effective_cache_enabled = bool(enabled)
        self._cached_effective_weights = None
        self._cached_effective_bias = None

    def invalidate_effective_cache(self) -> None:
        """Drop cached effective parameters (after an optimizer step)."""
        self._cached_effective_weights = None
        self._cached_effective_bias = None

    def effective_weights(self) -> np.ndarray:
        """Weights as seen by the forward pass (mask and quantizer applied).

        This is also what the bespoke circuit generator hard-wires, so the
        area model and the accuracy evaluation always agree on the
        coefficients.
        """
        if self._effective_cache_enabled and self._cached_effective_weights is not None:
            return self._cached_effective_weights
        w = self.weights
        if self.mask is not None:
            w = w * self.mask
        if self.weight_quantizer is not None:
            w = self.weight_quantizer(w)
        if self._effective_cache_enabled:
            self._cached_effective_weights = w
        return w

    def effective_bias(self) -> np.ndarray:
        """Bias as seen by the forward pass (quantizer applied)."""
        if self._effective_cache_enabled and self._cached_effective_bias is not None:
            return self._cached_effective_bias
        b = self.bias
        if self.bias_quantizer is not None:
            b = self.bias_quantizer(b)
        if self._effective_cache_enabled:
            self._cached_effective_bias = b
        return b

    def quantizable_tensors(self):
        """The layer's parameter tensors with their fake-quantization hooks.

        Returns ``(attribute, array, quantizer, mask)`` tuples in the packing
        order shared by the trainer's per-step quant pack and the stacked
        population trainer — weights (with the pruning mask) first, then the
        bias. Both consumers derive their flat-buffer layout from this, so
        the packed pipelines can never disagree about segment order.
        """
        return (
            ("weights", self.weights, self.weight_quantizer, self.mask),
            ("bias", self.bias, self.bias_quantizer, None),
        )

    # -- forward / backward ---------------------------------------------------

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim == 1:
            inputs = inputs.reshape(1, -1)
        if inputs.shape[-1] != self.n_inputs:
            raise ValueError(
                f"Expected {self.n_inputs} input features, got {inputs.shape[-1]}"
            )
        if training:
            self._last_input = inputs
        out = inputs @ self.effective_weights()
        if self.use_bias:
            out = out + self.effective_bias()
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_input is None:
            raise RuntimeError(
                "backward() called before forward(training=True) on Dense layer"
            )
        grad_output = np.asarray(grad_output, dtype=np.float64)
        # Straight-through estimator: gradients are computed w.r.t. the
        # effective (quantized/masked) weights but applied to the shadow
        # weights, so the quantizer is treated as identity for the gradient.
        self.grad_weights = self._last_input.T @ grad_output
        if self.mask is not None:
            self.grad_weights = self.grad_weights * self.mask
        if self.use_bias:
            self.grad_bias = np.sum(grad_output, axis=0)
        return grad_output @ self.effective_weights().T

    # -- parameter access ------------------------------------------------------

    @property
    def parameters(self) -> List[np.ndarray]:
        if self.use_bias:
            return [self.weights, self.bias]
        return [self.weights]

    @property
    def gradients(self) -> List[np.ndarray]:
        if self.use_bias:
            return [self.grad_weights, self.grad_bias]
        return [self.grad_weights]

    def set_weights(self, weights: np.ndarray, bias: Optional[np.ndarray] = None) -> None:
        """Overwrite the layer parameters (shapes are validated)."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != self.weights.shape:
            raise ValueError(
                f"Weight shape mismatch: expected {self.weights.shape}, got {weights.shape}"
            )
        self.weights = weights.copy()
        if bias is not None:
            bias = np.asarray(bias, dtype=np.float64)
            if bias.shape != self.bias.shape:
                raise ValueError(
                    f"Bias shape mismatch: expected {self.bias.shape}, got {bias.shape}"
                )
            self.bias = bias.copy()

    def sparsity(self) -> float:
        """Fraction of *effective* weights that are exactly zero."""
        w = self.effective_weights()
        if w.size == 0:
            return 0.0
        return float(np.mean(w == 0.0))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dense({self.n_inputs} -> {self.n_outputs}, bias={self.use_bias})"


class ActivationLayer(Layer):
    """Wraps an :class:`~repro.nn.activations.Activation` as a layer."""

    def __init__(self, activation: "Activation | str") -> None:
        if isinstance(activation, str):
            activation = get_activation(activation)
        self.activation = activation
        self._last_input: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if training:
            self._last_input = inputs
        return self.activation.forward(inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_input is None:
            raise RuntimeError(
                "backward() called before forward(training=True) on ActivationLayer"
            )
        return self.activation.backward(self._last_input, grad_output)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ActivationLayer({self.activation.name})"


class Dropout(Layer):
    """Inverted dropout; active only when ``training=True``."""

    def __init__(self, rate: float, rng: Optional[np.random.Generator] = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"Dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._last_mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if not training or self.rate == 0.0:
            self._last_mask = None
            return inputs
        keep = 1.0 - self.rate
        mask = (self._rng.random(inputs.shape) < keep) / keep
        self._last_mask = mask
        return inputs * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_mask is None:
            return grad_output
        return grad_output * self._last_mask

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dropout({self.rate})"


def layer_summary(layer: Layer) -> Dict[str, object]:
    """Return a small description dict used by :func:`repro.nn.network.MLP.summary`."""
    info: Dict[str, object] = {"type": type(layer).__name__}
    if isinstance(layer, Dense):
        info.update(
            {
                "n_inputs": layer.n_inputs,
                "n_outputs": layer.n_outputs,
                "parameters": int(sum(p.size for p in layer.parameters)),
                "sparsity": layer.sparsity(),
            }
        )
    elif isinstance(layer, ActivationLayer):
        info["activation"] = layer.activation.name
    elif isinstance(layer, Dropout):
        info["rate"] = layer.rate
    return info
