"""Command-line interface for the reproduction.

Installed as the ``repro`` console script (see ``pyproject.toml``); every
experiment of the paper can be run without writing Python:

* ``repro baseline --dataset whitewine`` — train and synthesize the
  un-minimized bespoke baseline of one (or all) datasets.
* ``repro figure1 --dataset seeds --fast`` — standalone-technique sweeps
  (Figure 1 panels), optionally exported to a results directory.
* ``repro figure2 --dataset whitewine`` — the hardware-aware GA (Figure 2).
* ``repro ablations`` — the DESIGN.md §7 ablation studies.
* ``repro synth --dataset seeds --weight-bits 4 --verilog out.v`` — train,
  quantize, synthesize and optionally export structural Verilog plus a
  functional-verification verdict from the fixed-point simulator.
* ``repro campaign run|resume|status|report`` — declarative multi-dataset
  search campaigns with journaling and kill-safe resume (see
  ``docs/campaigns.md``).
* ``repro serve --campaign out/`` — HTTP design-space query service over
  campaign report fronts (see ``docs/serving.md``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .analysis import export_sweep, gains_table, sweep_plot, sweep_table
from .bespoke import BespokeConfig, FixedPointSimulator, export_verilog, synthesize
from .campaign import (
    CampaignRunner,
    CampaignSpec,
    build_report,
    campaign_status,
    format_report,
    format_status,
    load_spec,
    read_json,
    write_report,
)
from .campaign.journal import CampaignJournal
from .core import MinimizationPipeline, PipelineConfig, fast_config, profiling
from .core.backend import registered_backends
from .datasets import resolve_dataset_names
from .experiments import (
    PAPER_HEADLINE_GAINS,
    baseline_for,
    run_all_ablations,
    run_figure1_panel,
    run_figure2,
)
from .quantization import QATConfig, quantize_aware_train
from .search import GAConfig


def _pipeline_config(
    dataset: str,
    fast: bool,
    seed: int,
    workers: int = 1,
    backend: Optional[str] = None,
) -> PipelineConfig:
    if fast:
        return fast_config(dataset, seed=seed, n_workers=workers, backend=backend)
    return PipelineConfig(dataset=dataset, seed=seed, n_workers=workers, backend=backend)


def _cache_size_argument(value: str) -> int:
    size = int(value)
    if size < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {size}")
    return size


def _workers_argument(value: str) -> int:
    workers = int(value)
    if workers < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (1 = serial, 0 = all cores), got {workers}"
        )
    return workers


def _fault_rate_argument(value: str) -> float:
    rate = float(value)
    if not 0.0 <= rate <= 1.0:
        raise argparse.ArgumentTypeError(f"must be in [0, 1], got {rate}")
    return rate


def _fault_trials_argument(value: str) -> int:
    trials = int(value)
    if trials < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {trials}")
    return trials


def _surrogate_prefilter_argument(value: str) -> float:
    fraction = float(value)
    if not 0.0 < fraction <= 1.0:
        raise argparse.ArgumentTypeError(f"must be in (0, 1], got {fraction}")
    return fraction


def _surrogate_candidates_argument(value: str) -> int:
    multiplier = int(value)
    if multiplier < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {multiplier}")
    return multiplier


def _halving_budgets_argument(value: str) -> Tuple[int, ...]:
    """Comma-separated ascending epoch budgets, e.g. ``1,2,4``."""
    try:
        budgets = tuple(int(part) for part in value.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"must be comma-separated integers, got '{value}'")
    if not budgets or any(b < 1 for b in budgets):
        raise argparse.ArgumentTypeError(f"budgets must be positive integers, got '{value}'")
    if any(a >= b for a, b in zip(budgets, budgets[1:])):
        raise argparse.ArgumentTypeError(f"budgets must be strictly increasing, got '{value}'")
    return budgets


def _datasets_argument(value: Optional[str]) -> List[str]:
    try:
        return list(resolve_dataset_names(value))
    except KeyError as error:
        # Clean two-line exit instead of a KeyError traceback.
        raise SystemExit(f"error: {error.args[0]}") from None


# -- sub-command implementations -----------------------------------------------------


def _cmd_baseline(args: argparse.Namespace) -> int:
    for dataset in _datasets_argument(args.dataset):
        row = baseline_for(
            dataset,
            config=_pipeline_config(
                dataset, args.fast, args.seed, args.workers, args.backend
            ),
        )
        print(row.format())
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    gains_by_dataset = {}
    for dataset in _datasets_argument(args.dataset):
        config = _pipeline_config(
            dataset, args.fast, args.seed, args.workers, args.backend
        )
        panel = run_figure1_panel(dataset, config=config)
        gains_by_dataset[dataset] = panel.area_gains
        print()
        print(sweep_table(panel.sweep, pareto_only=True))
        if args.plot:
            print()
            print(sweep_plot(panel.sweep))
        if args.output:
            paths = export_sweep(panel.sweep, args.output)
            print(f"\nexported {dataset} artefacts to {Path(args.output).resolve()}: "
                  f"{', '.join(sorted(p.name for p in paths.values()))}")
    print()
    print(gains_table(gains_by_dataset, paper_values=PAPER_HEADLINE_GAINS))
    return 0


def _cmd_figure2(args: argparse.Namespace) -> int:
    config = _pipeline_config(
        args.dataset, args.fast, args.seed, args.workers, args.backend
    )
    ga_config = GAConfig(
        population_size=args.population,
        n_generations=args.generations,
        finetune_epochs=args.finetune_epochs,
        seed=args.seed,
        n_workers=args.workers,
        stacked=not args.no_stacked,
        cache_size=args.cache_size,
        fault_rate=args.fault_rate,
        n_fault_trials=args.fault_trials,
        fault_model=args.fault_model,
        surrogate=args.surrogate,
        surrogate_candidates=args.surrogate_candidates,
        surrogate_prefilter=args.surrogate_prefilter,
        halving_budgets=args.halving_budgets,
    )
    result = run_figure2(args.dataset, config=config, ga_config=ga_config)
    for row in result.format_rows():
        print(row)
    if args.plot:
        print()
        print(sweep_plot(result.sweep))
    if args.output:
        export_sweep(result.sweep, args.output)
        print(f"\nexported artefacts to {Path(args.output).resolve()}")
    return 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    for result in run_all_ablations(args.dataset, fast=args.fast):
        print()
        for row in result.format_rows():
            print(row)
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    config = _pipeline_config(
        args.dataset, args.fast, args.seed, args.workers, args.backend
    )
    pipeline = MinimizationPipeline(config)
    prepared = pipeline.prepare()
    model = prepared.baseline_model.clone()

    weight_bits = args.weight_bits
    if weight_bits is not None and weight_bits != config.baseline_weight_bits:
        quantize_aware_train(
            model,
            prepared.data,
            QATConfig(weight_bits=weight_bits, epochs=args.finetune_epochs),
            seed=args.seed,
        )
    else:
        weight_bits = config.baseline_weight_bits

    bespoke_config = BespokeConfig(input_bits=config.input_bits, weight_bits=weight_bits)
    report = synthesize(model, config=bespoke_config, name=f"{args.dataset}_w{weight_bits}")
    baseline_report = prepared.baseline_point.report
    print(report.format_summary(baseline_report))
    accuracy = model.evaluate_accuracy(
        prepared.data.test.features, prepared.data.test.labels
    )
    print(f"test accuracy     : {accuracy:.3f} (baseline {prepared.baseline_accuracy:.3f})")

    simulator = FixedPointSimulator(model, bespoke_config)
    agreement = simulator.agreement_with_model(model, prepared.data.test.features)
    print(f"circuit/model agreement (fixed-point simulation): {agreement:.3f}")

    if args.verilog:
        source = export_verilog(model, bespoke_config, module_name=f"{args.dataset}_mlp")
        Path(args.verilog).write_text(source)
        print(f"structural Verilog written to {Path(args.verilog).resolve()}")
    return 0


# -- campaign sub-commands --------------------------------------------------------------


def _print_run_summary(summary) -> int:
    for outcome in summary.outcomes:
        if outcome.status == "completed":
            print(
                f"[completed] {outcome.job_id}  "
                f"({outcome.n_evaluations} evaluations, front {outcome.front_size}, "
                f"{outcome.wall_s:.1f}s)"
            )
        else:
            print(f"[   failed] {outcome.job_id}  {outcome.error}")
    print(
        f"{summary.completed_before + summary.completed}/{summary.total_jobs} jobs "
        f"completed, {summary.failed} failed this run, {summary.remaining} remaining"
    )
    return 0 if summary.failed == 0 else 1


def _run_campaign(spec, args: argparse.Namespace) -> int:
    """Construct and drain a campaign runner, reporting expected errors cleanly."""
    try:
        runner = CampaignRunner(
            spec,
            args.out,
            max_workers=args.max_workers,
            use_cache=not args.no_cache,
            shard=args.shard,
        )
        summary = runner.run(max_jobs=args.max_jobs)
    except ValueError as error:  # bad shard selector, spec fingerprint mismatch
        print(f"error: {error}")
        return 1
    return _print_run_summary(summary)


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    try:
        spec = load_spec(args.spec)
    except FileNotFoundError:
        print(f"error: campaign spec not found: {args.spec}")
        return 1
    except (ValueError, KeyError, RuntimeError) as error:  # invalid spec / no YAML
        print(f"error: invalid campaign spec '{args.spec}': {error}")
        return 1
    return _run_campaign(spec, args)


def _cmd_campaign_resume(args: argparse.Namespace) -> int:
    spec_path = CampaignJournal(args.out).spec_path
    if not spec_path.exists():
        print(f"no campaign found at {Path(args.out).resolve()} (missing spec.json)")
        return 1
    spec = CampaignSpec.from_dict(read_json(spec_path))
    return _run_campaign(spec, args)


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    try:
        status = campaign_status(args.out)
    except FileNotFoundError as error:
        print(error)
        return 1
    print(format_status(status))
    return 0


def _retry_policy_from_args(args: argparse.Namespace):
    """Build a RetryPolicy from the CLI's ``--max-attempts`` (None = default)."""
    from .campaign import RetryPolicy

    if getattr(args, "max_attempts", None) is None:
        return None
    return RetryPolicy(max_attempts=max(1, int(args.max_attempts)))


def _cmd_campaign_coordinate(args: argparse.Namespace) -> int:
    from .campaign import FabricCoordinator

    try:
        spec = load_spec(args.spec)
    except FileNotFoundError:
        print(f"error: campaign spec not found: {args.spec}")
        return 1
    except (ValueError, KeyError, RuntimeError) as error:  # invalid spec / no YAML
        print(f"error: invalid campaign spec '{args.spec}': {error}")
        return 1
    try:
        coordinator = FabricCoordinator(
            spec,
            args.out,
            lease_ttl=args.lease_ttl,
            worker_timeout=args.worker_timeout,
            max_requeues=args.max_requeues,
            use_cache=not args.no_cache,
            retry=_retry_policy_from_args(args),
        )
        summary = coordinator.run(
            poll_interval=args.poll_interval,
            max_wall_s=args.max_wall,
            serial_fallback=not args.no_serial_fallback,
        )
    except ValueError as error:  # spec fingerprint mismatch, bad bounds
        print(f"error: {error}")
        return 1
    status = summary.status
    print(
        f"{status.completed}/{status.total} jobs completed, "
        f"{status.failed} failed, {status.quarantined} quarantined "
        f"({summary.requeues} requeues"
        + (", serial fallback engaged" if summary.serial_fallback else "")
        + ")"
    )
    return 0 if summary.ok else 1


def _cmd_campaign_work(args: argparse.Namespace) -> int:
    from .campaign import FabricWorker

    out = Path(args.out)
    if not out.is_dir():
        print(f"error: campaign directory not found: {out.resolve()}")
        return 1
    worker = FabricWorker(
        out,
        worker_id=args.worker_id,
        lease_ttl=args.lease_ttl,
        use_cache=not args.no_cache,
        retry=_retry_policy_from_args(args),
    )
    summary = worker.run(
        poll_interval=args.poll_interval,
        max_idle_s=args.max_idle,
        max_jobs=args.max_jobs,
    )
    print(
        f"worker {summary.worker_id}: {summary.completed} completed, "
        f"{summary.failed} failed"
    )
    return 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    try:
        report = build_report(args.out)
    except FileNotFoundError:
        print(f"no campaign found at {Path(args.out).resolve()} (missing spec.json)")
        return 1
    print(format_report(report))
    paths = write_report(args.out, report)
    print(f"\nreport artefacts written to {Path(args.out, 'report').resolve()}: "
          f"{', '.join(sorted(paths))}")
    return 0


# -- serve ------------------------------------------------------------------------------


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serving import serve

    campaigns = [Path(c) for c in args.campaign]
    missing = [c for c in campaigns if not c.is_dir()]
    if missing:
        print(f"error: campaign directory not found: {missing[0].resolve()}")
        return 1
    try:
        serve(
            campaigns,
            host=args.host,
            port=args.port,
            max_entries=args.cache_size,
            backend=args.backend,
            enqueue_misses=args.enqueue_misses,
            refresh_seconds=args.refresh,
            refresh_reports=args.refresh_reports,
        )
    except ValueError as error:  # no report dirs / bad cache bound
        print(f"error: {error}")
        return 1
    except OSError as error:  # port in use, bind failure
        print(f"error: cannot bind {args.host}:{args.port}: {error}")
        return 1
    return 0


# -- argument parsing -------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hardware-aware neural minimization for printed MLPs (DATE 2023 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser, default_dataset: Optional[str]) -> None:
        if default_dataset is None:
            sub.add_argument("--dataset", default="all",
                             help="dataset name or 'all' (default: all)")
        else:
            sub.add_argument("--dataset", default=default_dataset)
        sub.add_argument("--fast", action="store_true",
                         help="reduced-cost settings (smaller data, fewer epochs)")
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument("--workers", type=_workers_argument, default=1,
                         help="worker processes for search fitness evaluation "
                              "(1 = serial, 0 = all cores); used by figure2's "
                              "GA — other subcommands only carry it in their "
                              "pipeline config. Results are bit-identical at "
                              "any worker count")
        sub.add_argument("--backend", default=None,
                         choices=sorted(registered_backends()),
                         help="array backend for the population tensor engine "
                              "(default: numpy, or REPRO_BACKEND if set). The "
                              "numpy backend is the bit-exact reference; torch "
                              "requires the 'torch' extra")
        sub.add_argument("--profile", action="store_true",
                         help="print a stage-timing breakdown after the run: "
                              "the search stages (ga_selection / ga_sort / "
                              "ga_evaluate, plus surrogate_fit / "
                              "surrogate_rank / halving when --surrogate is "
                              "on) plus the per-genome stages "
                              "(evaluate_genome, finetune, synthesize, ...); "
                              "profiles the driver process only, so combine "
                              "with serial evaluation (--workers 1) for the "
                              "evaluation breakdown")

    baseline = subparsers.add_parser("baseline", help="train + synthesize the bespoke baselines")
    add_common(baseline, None)
    baseline.set_defaults(func=_cmd_baseline)

    figure1 = subparsers.add_parser("figure1", help="standalone-technique sweeps (Figure 1)")
    add_common(figure1, None)
    figure1.add_argument("--plot", action="store_true", help="print ASCII accuracy/area plots")
    figure1.add_argument("--output", help="directory to export JSON/CSV/markdown artefacts")
    figure1.set_defaults(func=_cmd_figure1)

    figure2 = subparsers.add_parser("figure2", help="hardware-aware GA (Figure 2)")
    add_common(figure2, "whitewine")
    figure2.add_argument("--population", type=int, default=16)
    figure2.add_argument("--generations", type=int, default=8)
    figure2.add_argument("--finetune-epochs", type=int, default=6)
    figure2.add_argument("--no-stacked", action="store_true",
                         help="evaluate genomes one at a time instead of "
                              "batching each generation through the stacked "
                              "tensor path (results are byte-identical "
                              "either way; stacked is faster)")
    figure2.add_argument("--cache-size", type=_cache_size_argument, default=None,
                         help="LRU bound on the genome evaluation cache "
                              "(default: unbounded). Bounding trades "
                              "occasional re-evaluation of evicted genomes "
                              "for a memory ceiling on long searches")
    figure2.add_argument("--fault-rate", type=_fault_rate_argument, default=None,
                         help="enable robustness-aware search: fraction of "
                              "hard-wired connections hit per Monte-Carlo "
                              "fault-injection trial (combine with "
                              "--fault-trials; adds fault tolerance as a "
                              "third NSGA-II objective and "
                              "robust_accuracy/accuracy_std per design)")
    figure2.add_argument("--fault-trials", type=_fault_trials_argument, default=None,
                         help="Monte-Carlo trials per design point "
                              "(default 0 = robustness off)")
    figure2.add_argument("--fault-model", default=None,
                         choices=["open", "short", "level_shift"],
                         help="defect mechanism injected per trial "
                              "(default: open)")
    figure2.add_argument("--surrogate", default=None,
                         choices=["ridge", "mlp"],
                         help="enable surrogate-assisted search: an "
                              "online-trained predictor prefilters offspring "
                              "so only promising genomes get real "
                              "evaluations (fronts still contain only "
                              "measured points; off by default — off runs "
                              "are byte-identical to builds without the "
                              "surrogate)")
    figure2.add_argument("--surrogate-candidates",
                         type=_surrogate_candidates_argument, default=None,
                         help="candidate-pool multiplier: the surrogate "
                              "scores this many times --population offspring "
                              "per generation (default 4)")
    figure2.add_argument("--surrogate-prefilter",
                         type=_surrogate_prefilter_argument, default=None,
                         help="fraction of the population size evaluated "
                              "for real per generation, in (0, 1] "
                              "(default 0.25)")
    figure2.add_argument("--halving-budgets",
                         type=_halving_budgets_argument, default=None,
                         metavar="E1,E2,...",
                         help="successive-halving rungs: ascending short "
                              "fine-tuning budgets (epochs) racing surrogate "
                              "survivors before full evaluation, e.g. '1,2' "
                              "(default: no halving)")
    figure2.add_argument("--plot", action="store_true")
    figure2.add_argument("--output", help="directory to export artefacts")
    figure2.set_defaults(func=_cmd_figure2)

    ablations = subparsers.add_parser("ablations", help="DESIGN.md section 7 ablation studies")
    add_common(ablations, "whitewine")
    ablations.set_defaults(func=_cmd_ablations)

    synth = subparsers.add_parser(
        "synth", help="train, (optionally) quantize, synthesize and export one classifier"
    )
    add_common(synth, "seeds")
    synth.add_argument("--weight-bits", type=int, default=None,
                       help="quantize to this weight bit-width with QAT before synthesis")
    synth.add_argument("--finetune-epochs", type=int, default=15)
    synth.add_argument("--verilog", help="write structural Verilog to this path")
    synth.set_defaults(func=_cmd_synth)

    campaign = subparsers.add_parser(
        "campaign",
        help="declarative multi-dataset search campaigns "
             "(run/resume/coordinate/work/status/report)",
        description="Resumable multi-dataset search campaigns: a YAML/JSON "
                    "spec expands into {dataset x search x seed} jobs whose "
                    "state is journaled so a killed campaign resumes "
                    "bit-identically. Single host: run/resume. Multi-worker "
                    "fabric: coordinate + work. See docs/campaigns.md and "
                    "docs/fabric.md.",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    def add_campaign_run_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--out", required=True,
                         help="campaign directory (journal, cache, job artefacts)")
        sub.add_argument("--max-workers", type=int, default=1,
                         help="jobs to run concurrently (each job may also "
                              "fan its evaluations out via the spec's "
                              "pipeline.n_workers)")
        sub.add_argument("--max-jobs", type=int, default=None,
                         help="stop after this many pending jobs (the rest "
                              "stay pending for a later resume)")
        sub.add_argument("--shard", default=None,
                         help="'i/n': run only this runner's share of the "
                              "job grid (round-robin split across n "
                              "cooperating runners)")
        sub.add_argument("--no-cache", action="store_true",
                         help="disable the persistent on-disk evaluation "
                              "cache (mid-job resume then re-evaluates "
                              "from scratch; results are unchanged)")

    campaign_run = campaign_sub.add_parser("run", help="run a campaign spec")
    campaign_run.add_argument("--spec", required=True,
                              help="campaign spec file (YAML or JSON)")
    add_campaign_run_args(campaign_run)
    campaign_run.set_defaults(func=_cmd_campaign_run)

    campaign_resume = campaign_sub.add_parser(
        "resume", help="resume a (killed or partial) campaign directory"
    )
    add_campaign_run_args(campaign_resume)
    campaign_resume.set_defaults(func=_cmd_campaign_resume)

    campaign_coordinate = campaign_sub.add_parser(
        "coordinate",
        help="coordinate a campaign over the multi-worker fabric "
             "(publish jobs, merge worker journals, requeue expired leases)",
        description="Publish the spec's job grid to <out>/fabric/queue and "
                    "supervise elastic `repro campaign work` processes: merge "
                    "their journals into the manifest, requeue jobs whose "
                    "lease expired, quarantine poison jobs, and fall back to "
                    "serial in-process execution when no workers show up. "
                    "See docs/fabric.md.",
    )
    campaign_coordinate.add_argument("--spec", required=True,
                                     help="campaign spec file (YAML or JSON)")
    campaign_coordinate.add_argument("--out", required=True, help="campaign directory")
    campaign_coordinate.add_argument("--lease-ttl", type=float, default=30.0,
                                     help="lease lifetime in seconds; a job whose "
                                          "lease is this stale is requeued")
    campaign_coordinate.add_argument("--worker-timeout", type=float, default=10.0,
                                     help="seconds to wait for a worker heartbeat "
                                          "before degrading to serial execution")
    campaign_coordinate.add_argument("--max-requeues", type=int, default=2,
                                     help="requeue cap per job before quarantine")
    campaign_coordinate.add_argument("--poll-interval", type=float, default=0.2,
                                     help="coordination pass interval in seconds")
    campaign_coordinate.add_argument("--max-wall", type=float, default=None,
                                     help="optional wall-clock bound in seconds")
    campaign_coordinate.add_argument("--max-attempts", type=int, default=None,
                                     help="retry budget for transient job failures "
                                          "(inline fallback worker)")
    campaign_coordinate.add_argument("--no-serial-fallback", action="store_true",
                                     help="never execute jobs in-process; wait for "
                                          "workers indefinitely")
    campaign_coordinate.add_argument("--no-cache", action="store_true",
                                     help="disable the persistent evaluation cache")
    campaign_coordinate.set_defaults(func=_cmd_campaign_coordinate)

    campaign_work = campaign_sub.add_parser(
        "work",
        help="join a coordinated campaign as an elastic worker",
        description="Lease jobs from <out>/fabric/queue, execute them, "
                    "heartbeat the lease, and journal results for the "
                    "coordinator to merge. Any number of workers may join or "
                    "leave at any time. See docs/fabric.md.",
    )
    campaign_work.add_argument("--out", required=True, help="campaign directory")
    campaign_work.add_argument("--worker-id", default=None,
                               help="stable worker identity (default: w<pid>)")
    campaign_work.add_argument("--lease-ttl", type=float, default=30.0,
                               help="lease lifetime in seconds (must match the "
                                    "coordinator's)")
    campaign_work.add_argument("--poll-interval", type=float, default=0.5,
                               help="idle poll interval in seconds")
    campaign_work.add_argument("--max-idle", type=float, default=300.0,
                               help="exit after this many idle seconds")
    campaign_work.add_argument("--max-jobs", type=int, default=None,
                               help="stop after executing this many jobs")
    campaign_work.add_argument("--max-attempts", type=int, default=None,
                               help="retry budget for transient job failures")
    campaign_work.add_argument("--no-cache", action="store_true",
                               help="disable the persistent evaluation cache")
    campaign_work.set_defaults(func=_cmd_campaign_work)

    campaign_status_cmd = campaign_sub.add_parser(
        "status", help="show per-job completion state of a campaign directory"
    )
    campaign_status_cmd.add_argument("--out", required=True, help="campaign directory")
    campaign_status_cmd.set_defaults(func=_cmd_campaign_status)

    campaign_report = campaign_sub.add_parser(
        "report", help="aggregate completed jobs into combined per-dataset fronts"
    )
    campaign_report.add_argument("--out", required=True, help="campaign directory")
    campaign_report.set_defaults(func=_cmd_campaign_report)

    serve_cmd = subparsers.add_parser(
        "serve",
        help="HTTP design-space query service over campaign report fronts",
        description="Index one or more campaign report directories and "
                    "answer constraint/top-k/nearest queries over their "
                    "Pareto fronts via a threaded stdlib HTTP API "
                    "(GET /datasets, GET /fronts/<ds>, POST /query, "
                    "GET /healthz, GET /metrics). See docs/serving.md.",
    )
    serve_cmd.add_argument("--campaign", action="append", required=True,
                           help="campaign directory to index (repeat for a "
                                "multi-campaign union store)")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8000)
    serve_cmd.add_argument("--cache-size", type=_cache_size_argument, default=None,
                           help="LRU bound on deserialized front views "
                                "(default: unbounded; mirrors the evaluator "
                                "cache's bound semantics)")
    serve_cmd.add_argument("--backend", default=None,
                           choices=sorted(registered_backends()),
                           help="array backend for query filtering/ranking")
    serve_cmd.add_argument("--enqueue-misses", action="store_true",
                           help="publish a campaign job into the first "
                                "campaign's fabric queue when a query misses "
                                "a dataset (one entry per distinct miss)")
    serve_cmd.add_argument("--refresh", type=float, default=None,
                           help="re-index interval in seconds (default: no "
                                "periodic refresh; views still revalidate "
                                "against file mtimes on every access)")
    serve_cmd.add_argument("--refresh-reports", action="store_true",
                           help="during periodic --refresh, rebuild campaign "
                                "reports that lag their completed jobs — "
                                "closes the miss loop: enqueued jobs drained "
                                "by 'repro campaign work' get folded into the "
                                "served fronts")
    serve_cmd.set_defaults(func=_cmd_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "profile", False):
        profiling.reset()
        profiling.enable(True)
        try:
            exit_code = int(args.func(args))
        finally:
            profiling.enable(False)
        print()
        print(profiling.format_report())
        return exit_code
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
