"""Design-space query service over campaign report fronts.

Turns the static artifacts of ``repro campaign report`` into a serving
layer: :class:`FrontStore` indexes report directories with an LRU of
deserialized fronts, :class:`QueryEngine` answers typed constraint /
top-k / nearest-trade-off queries over the columnar views, and
:func:`start_server` / ``repro serve`` expose both over a stdlib
threaded HTTP API with metrics and on-miss campaign enqueue.
"""

from .http import (
    FrontServer,
    MissEnqueuer,
    ServingMetrics,
    serve,
    start_server,
)
from .query import (
    FrontQuery,
    QueryEngine,
    QueryResult,
    QueryValidationError,
)
from .store import (
    FRONT_COLUMNS,
    FrontCache,
    FrontStore,
    FrontView,
    UnknownDatasetError,
    build_columns,
    combine_fingerprints,
    is_safe_dataset_name,
)

__all__ = [
    "FRONT_COLUMNS",
    "FrontCache",
    "FrontQuery",
    "FrontServer",
    "FrontStore",
    "FrontView",
    "MissEnqueuer",
    "QueryEngine",
    "QueryResult",
    "QueryValidationError",
    "ServingMetrics",
    "UnknownDatasetError",
    "build_columns",
    "combine_fingerprints",
    "is_safe_dataset_name",
    "serve",
    "start_server",
]
