"""Indexed in-memory store over campaign report directories.

The campaign layer ends at static files: ``repro campaign report`` writes
``report/front_<dataset>.json`` (plus ``summary.json``) and stops. This
module turns those files into something a query service can hit thousands
of times per second:

* :class:`FrontStore` indexes one or more campaign directories. Each
  dataset's front document is loaded once into a :class:`FrontView` —
  the exact raw bytes (pinned by golden byte-identity tests) plus a
  *columnar* view (read-only ``float64`` arrays per objective) that the
  query engine filters and sorts without touching Python objects on the
  hot path. When the report wrote a ``front_<dataset>.npz`` sibling
  (:mod:`repro.campaign.columnar`), the columns come from an mmap-backed
  zero-copy load — no JSON decode, no per-row ``DesignPoint``
  construction, no Pareto merge — validated against the JSON bytes via
  the embedded SHA-256 and falling back to the byte-identical JSON path
  on any mismatch. Design points materialize lazily, row by row, only
  when a query actually returns them.
* Deserialized views live in a :class:`FrontCache` — an LRU with exactly
  the bound semantics of :class:`repro.search.evaluator.EvaluationCache`
  (``max_entries >= 1``, recency refresh on hit, least-recently-used
  eviction, ``hits``/``misses``/``evictions`` counters), so the serving
  layer's memory ceiling is tuned the same way the evaluator's is.
* Every access revalidates the cached view against the file's stat
  signature (mtime + size) and the campaign's report fingerprint from
  ``summary.json`` — rewriting a report invalidates exactly the views it
  changed, with no restart. ``report.py`` writes atomically, so a reader
  sees the old document or the new one, never a torn mix; a *corrupt*
  front file (external damage) is skipped, not served.
* Multi-campaign stores answer with the union front: per-campaign points
  are concatenated in campaign order and merged with the exact Pareto
  logic of :func:`repro.campaign.report.build_report` (robust third axis
  when every point carries ``robust_accuracy``), so querying two campaign
  directories equals querying the report built over both.

Thread-safety: all public methods may be called concurrently with each
other and with :meth:`FrontStore.refresh` (the HTTP layer does exactly
that). Views are immutable snapshots; the internal LRU is lock-guarded.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..campaign.columnar import (
    FRONT_COLUMNS,
    ColumnarFront,
    build_columns,
    front_npz_path,
    load_front_npz,
)
from ..campaign.journal import REPORT_DIR
from ..core.backend import ArrayBackend, resolve_backend
from ..core.pareto import pareto_front, pareto_front_indices
from ..core.results import DesignPoint

_FRONT_PREFIX = "front_"
_FRONT_SUFFIX = ".json"
_SUMMARY_NAME = "summary.json"

#: Dataset names are embedded in file names (``front_<ds>.json``, fabric
#: queue entries), so only plain tokens are legal: leading alphanumeric,
#: then alphanumerics, ``_``, ``.`` and ``-`` — no separators, no way to
#: climb out of a directory.
_DATASET_NAME_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9_.-]*")


def is_safe_dataset_name(dataset: str) -> bool:
    """Whether ``dataset`` is a file-name-safe token (see `_DATASET_NAME_RE`).

    Request-derived dataset strings must pass this before they touch any
    path construction — the query layer rejects offenders as invalid
    queries, and the miss enqueuer refuses to publish jobs for them.
    """
    return isinstance(dataset, str) and _DATASET_NAME_RE.fullmatch(dataset) is not None


class UnknownDatasetError(KeyError):
    """Raised when no indexed campaign serves a front for the dataset.

    The HTTP layer maps this to a 404 — and, when configured, to the
    enqueue of a campaign job covering the missed dataset.
    """

    def __init__(self, dataset: str) -> None:
        """Record the missed dataset name (``.dataset``)."""
        super().__init__(dataset)
        self.dataset = str(dataset)


def combine_fingerprints(views: Sequence["FrontView"]) -> str:
    """One fingerprint over an ordered sequence of views (the HTTP ETag).

    A single view answers with its own fingerprint — the SHA-256 of the
    exact bytes the HTTP layer serves. Unions hash the per-view
    fingerprints in campaign order, so the combined tag changes exactly
    when any contributing front document changes.
    """
    if len(views) == 1:
        return views[0].fingerprint
    digest = hashlib.sha256()
    for view in views:
        digest.update(view.fingerprint.encode("ascii"))
        digest.update(b"|")
    return digest.hexdigest()


class FrontView:
    """One campaign's front for one dataset (immutable snapshot, lazy rows).

    The always-present state is columnar: the exact raw JSON bytes, the
    read-only objective arrays, and the precomputed Pareto index. Design
    points, the decoded document and the Pareto column slices materialize
    lazily and are cached — an npz-backed view answers constraint/top-k
    queries without ever constructing a :class:`DesignPoint` for rows the
    response doesn't include.

    Attributes:
        dataset: the dataset the front belongs to.
        campaign: the campaign directory the document came from.
        raw: the exact bytes of ``report/front_<dataset>.json`` — what the
            HTTP layer returns for single-campaign stores (byte-identical
            to the file, pinned by golden tests).
        robust: whether every point carries ``robust_accuracy`` (the
            condition under which the union merge uses the third axis).
        fault_rate: the campaign's fault-injection rate, recovered from
            ``spec.json`` (``None`` when the campaign ran without
            robustness or without a readable spec) — the selector behind
            "... at fault_rate 0.05" queries.
        columns: read-only columnar arrays (see
            :func:`repro.campaign.columnar.build_columns`), zero-copy
            views over the npz mapping when the load came from there.
        pareto_index: ``int64`` indices of the non-dominated subset of the
            front, in front order (what queries see unless they opt into
            dominated points).
        fingerprint: SHA-256 hex of ``raw`` — the view's ETag component.
        source: ``"npz"`` (mmap-backed columnar load) or ``"json"``
            (decoded document fallback).
        signature: cache-invalidation token: ``(mtime_ns, size,
            fingerprint)`` of the backing file + campaign report.
    """

    def __init__(
        self,
        *,
        dataset: str,
        campaign: Path,
        raw: bytes,
        robust: bool,
        fault_rate: Optional[float],
        columns: Mapping[str, np.ndarray],
        pareto_index: np.ndarray,
        fingerprint: str,
        source: str,
        signature: Tuple[object, ...],
        document: Optional[Mapping[str, object]] = None,
        points: Optional[Tuple[DesignPoint, ...]] = None,
        columnar: Optional[ColumnarFront] = None,
    ) -> None:
        self.dataset = dataset
        self.campaign = campaign
        self.raw = raw
        self.robust = robust
        self.fault_rate = fault_rate
        self.columns = columns
        self.pareto_index = pareto_index
        self.fingerprint = fingerprint
        self.source = source
        self.signature = signature
        self._document = document
        self._points = points
        self._columnar = columnar
        self._point_cache: Dict[int, DesignPoint] = {}
        self._pareto_points: Optional[Tuple[DesignPoint, ...]] = None
        self._pareto_columns: Optional[Mapping[str, np.ndarray]] = None

    @property
    def n_points(self) -> int:
        """Number of rows in the front (dominated rows included)."""
        return int(self.columns["accuracy"].shape[0])

    @property
    def document(self) -> Mapping[str, object]:
        """The decoded front document (lazy for npz-backed views)."""
        if self._document is None:
            self._document = json.loads(self.raw.decode("utf-8"))
        return self._document

    @property
    def baseline(self) -> Optional[Mapping[str, object]]:
        """The front's baseline document (``None`` for mixed jobs)."""
        baseline = self.document.get("baseline")
        return baseline if isinstance(baseline, dict) else None

    def point(self, row: int) -> DesignPoint:
        """Materialize one front row (cached; npz rows decode on demand)."""
        if self._points is not None:
            return self._points[row]
        cached = self._point_cache.get(row)
        if cached is None:
            assert self._columnar is not None
            cached = self._columnar.point(row)
            self._point_cache[row] = cached
        return cached

    @property
    def points(self) -> Tuple[DesignPoint, ...]:
        """Every front row as design points, in document order."""
        if self._points is None:
            self._points = tuple(self.point(row) for row in range(self.n_points))
        return self._points

    @property
    def pareto_points(self) -> Tuple[DesignPoint, ...]:
        """The non-dominated subset of :attr:`points`, in front order."""
        if self._pareto_points is None:
            self._pareto_points = tuple(
                self.point(int(row)) for row in self.pareto_index
            )
        return self._pareto_points

    @property
    def pareto_columns(self) -> Mapping[str, np.ndarray]:
        """Columnar arrays over the non-dominated subset (read-only)."""
        if self._pareto_columns is None:
            sliced: Dict[str, np.ndarray] = {}
            for name, values in self.columns.items():
                column = values[self.pareto_index]
                column.flags.writeable = False
                sliced[name] = column
            self._pareto_columns = sliced
        return self._pareto_columns


class FrontCache:
    """LRU of deserialized front views, mirroring ``EvaluationCache`` bounds.

    Args:
        max_entries: optional LRU bound. When set, a lookup refreshes the
            entry's recency and inserting beyond the bound evicts the
            least recently used view (counted in :attr:`evictions`) —
            exactly the semantics of
            :class:`repro.search.evaluator.EvaluationCache`, applied to
            ``(campaign, dataset)`` keys instead of genomes. Evicted views
            are re-deserialized from disk on the next access; results are
            unchanged, only latency is affected.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._views: "OrderedDict[Tuple[str, str], FrontView]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        """Number of cached views."""
        return len(self._views)

    def get(self, key: Tuple[str, str]) -> Optional[FrontView]:
        """Cached view for ``key``, or ``None`` (refreshes LRU recency)."""
        view = self._views.get(key)
        if view is not None and self.max_entries is not None:
            self._views.move_to_end(key)
        return view

    def put(self, key: Tuple[str, str], view: FrontView) -> None:
        """Insert (or refresh) a view, evicting LRU overflow."""
        self._views[key] = view
        if self.max_entries is not None:
            self._views.move_to_end(key)
            while len(self._views) > self.max_entries:
                self._views.popitem(last=False)
                self.evictions += 1

    def invalidate(self, key: Tuple[str, str]) -> None:
        """Drop one view if cached."""
        self._views.pop(key, None)

    def clear(self) -> None:
        """Drop every cached view (counters are preserved)."""
        self._views.clear()


def _spec_fault_rate(campaign: Path) -> Optional[float]:
    """The campaign's fault-injection rate, recovered from ``spec.json``.

    Search-level ``fault_rate`` overrides win over the pipeline-level knob
    (matching :func:`repro.search.settings.resolve_evaluation_settings`
    precedence); an unreadable or absent spec yields ``None``, as does a
    campaign that never enabled robustness (rate 0.0).
    """
    try:
        spec = json.loads((campaign / "spec.json").read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(spec, dict):
        return None
    rate: Optional[float] = None
    for search in spec.get("searches") or []:
        if isinstance(search, dict) and search.get("fault_rate") is not None:
            try:
                rate = float(search["fault_rate"])  # type: ignore[arg-type]
            except (TypeError, ValueError):
                continue
            break
    if rate is None:
        pipeline = spec.get("pipeline")
        if isinstance(pipeline, dict) and pipeline.get("fault_rate") is not None:
            try:
                rate = float(pipeline["fault_rate"])  # type: ignore[arg-type]
            except (TypeError, ValueError):
                rate = None
    if rate is None or rate == 0.0:
        return None
    return rate


def _report_fingerprint(campaign: Path) -> Optional[str]:
    """The report's campaign fingerprint from ``summary.json`` (tolerant)."""
    try:
        summary = json.loads((campaign / REPORT_DIR / _SUMMARY_NAME).read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if isinstance(summary, dict) and isinstance(summary.get("fingerprint"), str):
        return summary["fingerprint"]
    return None


class FrontStore:
    """Queryable index over the fronts of one or more campaign directories.

    Args:
        campaigns: campaign directory, or sequence of directories. Multi-
            campaign stores serve the union Pareto front per dataset,
            merged with the ``report.py`` logic.
        max_entries: optional LRU bound on deserialized front views
            (mirrors ``EvaluationCache``; ``None`` = unbounded).
        backend: array backend resolved once and handed to the query
            engine (name, instance or ``None`` for the configured default).
    """

    def __init__(
        self,
        campaigns: Union[str, Path, Sequence[Union[str, Path]]],
        max_entries: Optional[int] = None,
        backend: Optional[Union[str, ArrayBackend]] = None,
    ) -> None:
        if isinstance(campaigns, (str, Path)):
            campaigns = [campaigns]
        self.campaigns: Tuple[Path, ...] = tuple(Path(c) for c in campaigns)
        if not self.campaigns:
            raise ValueError("FrontStore needs at least one campaign directory")
        self.backend = resolve_backend(backend)
        self._cache = FrontCache(max_entries)
        self._lock = threading.RLock()
        self._fault_rates: Dict[Path, Optional[float]] = {}
        self._fingerprints: Dict[Path, Optional[str]] = {
            campaign: _report_fingerprint(campaign) for campaign in self.campaigns
        }
        self._npz_loads = 0
        self._json_loads = 0

    # -- paths and discovery -----------------------------------------------------

    @staticmethod
    def front_path(campaign: Union[str, Path], dataset: str) -> Path:
        """Path of one dataset's front document inside one campaign."""
        return Path(campaign) / REPORT_DIR / f"{_FRONT_PREFIX}{dataset}{_FRONT_SUFFIX}"

    def datasets(self) -> List[str]:
        """Sorted union of datasets served by the indexed campaigns."""
        names = set()
        for campaign in self.campaigns:
            report_dir = campaign / REPORT_DIR
            if not report_dir.is_dir():
                continue
            for path in report_dir.glob(f"{_FRONT_PREFIX}*{_FRONT_SUFFIX}"):
                names.add(path.name[len(_FRONT_PREFIX) : -len(_FRONT_SUFFIX)])
        return sorted(names)

    # -- loading and invalidation ------------------------------------------------

    def _signature(self, campaign: Path, dataset: str) -> Optional[Tuple[object, ...]]:
        """Current invalidation token of one front file (``None`` if absent)."""
        try:
            stat = self.front_path(campaign, dataset).stat()
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size, self._fingerprints.get(campaign))

    def _load_view(self, campaign: Path, dataset: str) -> Optional[FrontView]:
        """Load one front; ``None`` if missing or corrupt.

        Prefers the columnar ``front_<dataset>.npz`` sibling when its
        embedded SHA-256 matches the JSON bytes about to be served — an
        mmap-backed load that skips JSON decode, point construction and
        the Pareto merge entirely. Any mismatch (stale npz after a
        partial rewrite, torn file, foreign version) falls back to the
        JSON path, which produces byte-identical query results (golden
        A/B pinned). A torn or truncated JSON document (external
        corruption — the report writer is atomic) is treated as absent
        rather than served: the union falls back to whatever healthy
        campaigns still cover the dataset, and :meth:`refresh` will pick
        the file up once repaired.
        """
        signature = self._signature(campaign, dataset)
        if signature is None:
            return None
        path = self.front_path(campaign, dataset)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        fingerprint = hashlib.sha256(raw).hexdigest()
        columnar = load_front_npz(front_npz_path(path), expected_sha256=fingerprint)
        if columnar is not None:
            with self._lock:
                self._npz_loads += 1
            return FrontView(
                dataset=dataset,
                campaign=campaign,
                raw=raw,
                robust=columnar.robust,
                fault_rate=self._campaign_fault_rate(campaign),
                columns=dict(columnar.columns),
                pareto_index=columnar.pareto_index,
                fingerprint=fingerprint,
                source="npz",
                signature=signature,
                columnar=columnar,
            )
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(document, dict) or not isinstance(document.get("front"), list):
            return None
        try:
            points = tuple(
                DesignPoint(**entry) for entry in document["front"]  # type: ignore[arg-type]
            )
        except (TypeError, ValueError):
            return None
        robust = bool(points) and all(p.robust_accuracy is not None for p in points)
        pareto_index = np.asarray(
            pareto_front_indices(list(points), robust=robust), dtype=np.int64
        )
        with self._lock:
            self._json_loads += 1
        return FrontView(
            dataset=dataset,
            campaign=campaign,
            raw=raw,
            robust=robust,
            fault_rate=self._campaign_fault_rate(campaign),
            columns=build_columns(points),
            pareto_index=pareto_index,
            fingerprint=fingerprint,
            source="json",
            signature=signature,
            document=document,
            points=points,
        )

    def _campaign_fault_rate(self, campaign: Path) -> Optional[float]:
        """Memoized per-campaign fault-rate tag."""
        if campaign not in self._fault_rates:
            self._fault_rates[campaign] = _spec_fault_rate(campaign)
        return self._fault_rates[campaign]

    def view(self, campaign: Union[str, Path], dataset: str) -> Optional[FrontView]:
        """One campaign's current front view for ``dataset`` (LRU + revalidate).

        The store lock guards only the cache lookup/insert; the expensive
        part — file read, JSON decode, Pareto merge, column build — runs
        outside it, so one cold load never stalls concurrent cache hits.
        """
        campaign = Path(campaign)
        key = (str(campaign), dataset)
        signature = self._signature(campaign, dataset)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None and cached.signature == signature:
                self._cache.hits += 1
                return cached
            self._cache.misses += 1
        view = self._load_view(campaign, dataset)
        with self._lock:
            if view is None:
                self._cache.invalidate(key)
                return None
            # Only cache the view if the file hasn't changed since the
            # load started — a racing writer's fresher view must not be
            # clobbered by this stale one. The caller still gets the
            # snapshot that was valid when it was read.
            if view.signature == self._signature(campaign, dataset):
                self._cache.put(key, view)
            return view

    def views(
        self, dataset: str, fault_rate: Optional[float] = None
    ) -> List[FrontView]:
        """Every campaign's view of ``dataset``, in campaign order.

        ``fault_rate`` restricts to campaigns whose spec ran fault
        injection at that rate (``None`` keeps every campaign). Raises
        :class:`UnknownDatasetError` when no indexed campaign serves the
        dataset at all; returns ``[]`` when the dataset exists but no
        campaign matches the ``fault_rate`` selector.
        """
        views = [
            view
            for campaign in self.campaigns
            if (view := self.view(campaign, dataset)) is not None
        ]
        if not views:
            raise UnknownDatasetError(dataset)
        if fault_rate is None:
            return views
        return [
            view
            for view in views
            if view.fault_rate is not None
            and abs(view.fault_rate - float(fault_rate)) < 1e-12
        ]

    # -- union fronts ------------------------------------------------------------

    @staticmethod
    def _union_points(views: Sequence[FrontView]) -> Tuple[List[DesignPoint], bool]:
        """The ``report.py`` merge over an ordered snapshot of views."""
        points: List[DesignPoint] = []
        for view in views:
            points.extend(view.points)
        robust = bool(points) and all(p.robust_accuracy is not None for p in points)
        return pareto_front(points, robust=robust), robust

    def union_front(
        self, dataset: str, fault_rate: Optional[float] = None
    ) -> Tuple[List[DesignPoint], bool]:
        """The merged Pareto front over every matching campaign.

        Exactly the :func:`repro.campaign.report.build_report` merge:
        points concatenate in campaign order, the robust third axis joins
        when every contributing point carries ``robust_accuracy``, and
        identical-criteria duplicates collapse. Returns ``(points,
        robust)``.
        """
        return self._union_points(self.views(dataset, fault_rate=fault_rate))

    def front(self, dataset: str) -> Tuple[bytes, str]:
        """``(served bytes, fingerprint)`` for one dataset, atomically.

        Both halves come from one snapshot of views, so the fingerprint —
        the HTTP layer's ETag — always tags exactly the bytes returned
        beside it (see :func:`combine_fingerprints`).
        """
        views = self.views(dataset)
        if len(views) == 1:
            return views[0].raw, views[0].fingerprint
        merged, _robust = self._union_points(views)
        baselines = [view.baseline for view in views]
        shared = baselines[0] if all(b == baselines[0] for b in baselines) else None
        document = {
            "dataset": dataset,
            "baseline": shared,
            "front": [point.as_dict() for point in merged],
            "campaigns": [str(view.campaign) for view in views],
        }
        raw = (json.dumps(document, indent=2, sort_keys=True) + "\n").encode("utf-8")
        return raw, combine_fingerprints(views)

    def raw_front(self, dataset: str) -> bytes:
        """The dataset's front document as served bytes.

        Single-campaign stores return the backing file's exact bytes —
        byte-identical to ``report/front_<dataset>.json``. Multi-campaign
        stores return the canonical JSON of the union merge (same
        ``indent=2, sort_keys=True`` convention the report writer uses).
        """
        return self.front(dataset)[0]

    def front_fingerprint(self, dataset: str) -> str:
        """The current fingerprint of one dataset's served front."""
        return self.front(dataset)[1]

    # -- maintenance -------------------------------------------------------------

    def _rebuild_stale_report(self, campaign: Path) -> bool:
        """Rebuild one campaign's report when completed jobs aren't in it.

        A job is *reflected* when the report's ``summary.json`` records
        its id; completed jobs missing from it — typically serving-miss
        enqueues drained by an elastic worker — trigger a full
        ``write_report`` (which re-emits the JSON/npz front artifacts the
        store then picks up). Returns whether a rebuild ran. Tolerant of
        campaigns without a spec or with an unreadable summary; a rebuild
        failure is swallowed (the old report keeps serving).
        """
        from ..campaign.journal import CampaignJournal  # deferred: heavy import
        from ..campaign.report import write_report

        journal = CampaignJournal(campaign)
        if not journal.spec_path.exists():
            return False
        completed = {
            job_id
            for job_id in journal.completed_job_ids()
            if journal.front_path(job_id).exists()
        }
        if not completed:
            return False
        recorded: set = set()
        try:
            summary = json.loads((campaign / REPORT_DIR / _SUMMARY_NAME).read_text())
            for entry in summary.get("datasets", {}).values():
                for job in entry.get("jobs", []):
                    if isinstance(job.get("job_id"), str):
                        recorded.add(job["job_id"])
        except (OSError, json.JSONDecodeError, AttributeError, TypeError):
            recorded = set()
        if completed <= recorded:
            return False
        try:
            write_report(campaign)
        except Exception:  # noqa: BLE001 - keep serving the old report
            return False
        return True

    def refresh(self, rebuild_reports: bool = False) -> Dict[str, int]:
        """Revalidate the index against disk.

        Re-reads every campaign's report fingerprint and fault-rate tag,
        drops cached views whose backing file changed or vanished, and
        returns ``{"datasets": ..., "cached": ..., "invalidated": ...,
        "reports_rebuilt": ...}``. With ``rebuild_reports`` the refresh
        first regenerates any campaign report that lags its completed
        jobs (see :meth:`_rebuild_stale_report`) — the step that closes
        the serving-miss loop: enqueue → worker drains → refresh
        republishes the front. Safe to call while queries are in flight:
        readers always see either the old snapshot or the new one (the
        rebuild runs outside the store lock).
        """
        reports_rebuilt = 0
        if rebuild_reports:
            for campaign in self.campaigns:
                if self._rebuild_stale_report(campaign):
                    reports_rebuilt += 1
        invalidated = 0
        with self._lock:
            self._fault_rates.clear()
            for campaign in self.campaigns:
                self._fingerprints[campaign] = _report_fingerprint(campaign)
            for key in list(self._cache._views):
                campaign_text, dataset = key
                view = self._cache._views[key]
                if view.signature != self._signature(Path(campaign_text), dataset):
                    self._cache.invalidate(key)
                    invalidated += 1
            return {
                "datasets": len(self.datasets()),
                "cached": len(self._cache),
                "invalidated": invalidated,
                "reports_rebuilt": reports_rebuilt,
            }

    def stats(self) -> Dict[str, object]:
        """Cache statistics (the serving counterpart of evaluator stats)."""
        with self._lock:
            return {
                "campaigns": len(self.campaigns),
                "cached_views": len(self._cache),
                "max_entries": self._cache.max_entries,
                "hits": self._cache.hits,
                "misses": self._cache.misses,
                "evictions": self._cache.evictions,
                "npz_loads": self._npz_loads,
                "json_loads": self._json_loads,
            }


__all__ = [
    "FRONT_COLUMNS",
    "FrontCache",
    "FrontStore",
    "FrontView",
    "UnknownDatasetError",
    "build_columns",
    "combine_fingerprints",
    "is_safe_dataset_name",
]
