"""Typed constraint/top-k/nearest-trade-off queries over a front store.

The production question this layer answers is the paper's design space as
a service: *"the cheapest genome with >= 90 % accuracy at fault_rate 0.05
on dataset X"*. A :class:`FrontQuery` is the typed form of that sentence —

* **constraints** lower-bound the maximized objectives (``min_accuracy``,
  ``min_robust_accuracy``) and upper-bound the minimized ones
  (``max_area``, ``max_power``, ``max_delay``, ``max_accuracy_std``),
* ``fault_rate`` selects which campaigns' fronts may answer (matching the
  rate their searches injected faults at),
* ``order_by``/``descending`` rank survivors by any objective with a
  *stable* sort (ties keep front order), ``top_k`` takes the prefix,
* ``nearest`` ranks by normalized Euclidean distance to a target
  trade-off instead (e.g. "closest to accuracy 0.9 at area 2.0"),
* ``offset``/``limit`` window the ranked result (after ``top_k``) for
  pagination over large fronts,
* ``include_dominated`` opts into the raw union of campaign points;
  by default queries see the Pareto-merged front (the ``report.py``
  merge, so multi-campaign answers equal the merged report's).

:class:`QueryEngine` executes queries against a
:class:`~repro.serving.store.FrontStore` as a small plan: candidate
columns are assembled (for a single campaign, zero-copy slices of the
view's — possibly mmap-backed — arrays), constraint masks and the
selection/ranking steps run through the
:class:`~repro.core.backend.ArrayBackend` seam (``nonzero`` +
``argsort_stable``), and only the rows of the final window are
materialized into :class:`~repro.core.results.DesignPoint` objects — no
per-point Python for rows the response doesn't include, and queries
never mutate the store.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.backend import ArrayBackend, resolve_backend
from ..core.pareto import pareto_front
from ..core.results import DesignPoint
from .store import (
    FRONT_COLUMNS,
    FrontStore,
    build_columns,
    combine_fingerprints,
    is_safe_dataset_name,
)

#: Objectives a query may order by or target with ``nearest``.
ORDERABLE_COLUMNS: Tuple[str, ...] = FRONT_COLUMNS

#: ``{constraint name: (column, direction)}`` — ``min`` keeps values >= the
#: bound, ``max`` keeps values <= it. NaN (a point without the column, e.g.
#: ``robust_accuracy`` on a robustness-off campaign) never satisfies a
#: bound on that column.
CONSTRAINTS: Dict[str, Tuple[str, str]] = {
    "min_accuracy": ("accuracy", "min"),
    "max_area": ("area", "max"),
    "max_power": ("power", "max"),
    "max_delay": ("delay", "max"),
    "min_robust_accuracy": ("robust_accuracy", "min"),
    "max_accuracy_std": ("accuracy_std", "max"),
}


class QueryValidationError(ValueError):
    """Raised for a structurally invalid query (HTTP layer answers 400)."""


def _require_finite(name: str, value: Optional[float]) -> Optional[float]:
    """Validate one optional numeric field; returns it as ``float``."""
    if value is None:
        return None
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise QueryValidationError(f"{name} must be a number, got {value!r}") from None
    if not math.isfinite(value):
        raise QueryValidationError(f"{name} must be finite, got {value!r}")
    return value


@dataclass(frozen=True)
class FrontQuery:
    """One typed design-space query (see module docstring for semantics).

    Attributes:
        dataset: the dataset whose front is queried (required).
        min_accuracy: keep points with ``accuracy >= min_accuracy``.
        max_area: keep points with ``area <= max_area``.
        max_power: keep points with ``power <= max_power``.
        max_delay: keep points with ``delay <= max_delay``.
        min_robust_accuracy: keep points with ``robust_accuracy >=`` the
            bound (points without the column never match).
        max_accuracy_std: keep points with ``accuracy_std <=`` the bound.
        fault_rate: restrict to campaigns whose searches injected faults
            at exactly this rate (``None`` = all campaigns).
        order_by: objective to rank by (one of :data:`ORDERABLE_COLUMNS`).
        descending: rank largest-first instead of smallest-first.
        top_k: return only the first ``top_k`` ranked points.
        nearest: ``{objective: target}`` — rank by normalized distance to
            the target trade-off instead of ``order_by``.
        include_dominated: serve the raw union of campaign points instead
            of the Pareto-merged front.
        offset: skip the first ``offset`` ranked points (after ``top_k``)
            — the pagination window's start.
        limit: return at most ``limit`` points from the window.
    """

    dataset: str
    min_accuracy: Optional[float] = None
    max_area: Optional[float] = None
    max_power: Optional[float] = None
    max_delay: Optional[float] = None
    min_robust_accuracy: Optional[float] = None
    max_accuracy_std: Optional[float] = None
    fault_rate: Optional[float] = None
    order_by: str = "area"
    descending: bool = False
    top_k: Optional[int] = None
    nearest: Optional[Tuple[Tuple[str, float], ...]] = None
    include_dominated: bool = False
    offset: int = 0
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        """Validate every field; raises :class:`QueryValidationError`."""
        if not isinstance(self.dataset, str) or not self.dataset:
            raise QueryValidationError("dataset must be a non-empty string")
        if not is_safe_dataset_name(self.dataset):
            raise QueryValidationError(
                f"dataset must be a plain name (letters, digits, '_', '.', '-', "
                f"starting alphanumeric), got {self.dataset!r}"
            )
        for name in CONSTRAINTS:
            object.__setattr__(self, name, _require_finite(name, getattr(self, name)))
        for name in ("min_accuracy", "min_robust_accuracy"):
            bound = getattr(self, name)
            if bound is not None and not 0.0 <= bound <= 1.0:
                raise QueryValidationError(f"{name} must be in [0, 1], got {bound}")
        rate = _require_finite("fault_rate", self.fault_rate)
        if rate is not None and not 0.0 <= rate <= 1.0:
            raise QueryValidationError(f"fault_rate must be in [0, 1], got {rate}")
        object.__setattr__(self, "fault_rate", rate)
        if self.order_by not in ORDERABLE_COLUMNS:
            raise QueryValidationError(
                f"order_by must be one of {ORDERABLE_COLUMNS}, got {self.order_by!r}"
            )
        if self.top_k is not None:
            if not isinstance(self.top_k, int) or isinstance(self.top_k, bool):
                raise QueryValidationError(f"top_k must be an integer, got {self.top_k!r}")
            if self.top_k < 1:
                raise QueryValidationError(f"top_k must be >= 1, got {self.top_k}")
        if self.nearest is not None:
            frozen: List[Tuple[str, float]] = []
            items = (
                self.nearest.items()
                if isinstance(self.nearest, Mapping)
                else self.nearest
            )
            try:
                pairs = [(str(column), value) for column, value in items]
            except (TypeError, ValueError):
                raise QueryValidationError(
                    f"nearest must map objectives to targets, got {self.nearest!r}"
                ) from None
            if not pairs:
                raise QueryValidationError("nearest must name at least one objective")
            for column, value in pairs:
                if column not in ORDERABLE_COLUMNS:
                    raise QueryValidationError(
                        f"nearest objective must be one of {ORDERABLE_COLUMNS}, "
                        f"got {column!r}"
                    )
                target = _require_finite(f"nearest[{column}]", value)
                if target is None:
                    raise QueryValidationError(
                        f"nearest[{column}] must be a number, got None"
                    )
                frozen.append((column, target))
            object.__setattr__(self, "nearest", tuple(frozen))
        if not isinstance(self.descending, bool):
            raise QueryValidationError("descending must be a boolean")
        if not isinstance(self.include_dominated, bool):
            raise QueryValidationError("include_dominated must be a boolean")
        if not isinstance(self.offset, int) or isinstance(self.offset, bool):
            raise QueryValidationError(f"offset must be an integer, got {self.offset!r}")
        if self.offset < 0:
            raise QueryValidationError(f"offset must be >= 0, got {self.offset}")
        if self.limit is not None:
            if not isinstance(self.limit, int) or isinstance(self.limit, bool):
                raise QueryValidationError(f"limit must be an integer, got {self.limit!r}")
            if self.limit < 1:
                raise QueryValidationError(f"limit must be >= 1, got {self.limit}")

    # -- wire format -------------------------------------------------------------

    @staticmethod
    def from_dict(payload: Mapping[str, object]) -> "FrontQuery":
        """Build a query from its JSON form (the ``POST /query`` body)."""
        if not isinstance(payload, Mapping):
            raise QueryValidationError(
                f"query body must be a JSON object, got {type(payload).__name__}"
            )
        known = {f.name for f in fields(FrontQuery)}
        unknown = set(payload) - known
        if unknown:
            raise QueryValidationError(
                f"unknown query fields {sorted(unknown)}; valid: {sorted(known)}"
            )
        return FrontQuery(**dict(payload))  # type: ignore[arg-type]

    def as_dict(self) -> Dict[str, object]:
        """JSON form of the query (inverse of :meth:`from_dict`)."""
        doc: Dict[str, object] = {"dataset": self.dataset}
        for name in (*CONSTRAINTS, "fault_rate", "top_k"):
            value = getattr(self, name)
            if value is not None:
                doc[name] = value
        doc["order_by"] = self.order_by
        if self.descending:
            doc["descending"] = True
        if self.nearest is not None:
            doc["nearest"] = {column: value for column, value in self.nearest}
        if self.include_dominated:
            doc["include_dominated"] = True
        if self.offset:
            doc["offset"] = self.offset
        if self.limit is not None:
            doc["limit"] = self.limit
        return doc


@dataclass(frozen=True)
class QueryResult:
    """The answer to one :class:`FrontQuery`.

    Attributes:
        query: the executed query.
        points: ranked design points satisfying every constraint.
        total_points: candidate points before constraint filtering (the
            merged front's size, or the raw union's with
            ``include_dominated``).
        matched: points satisfying the constraints (before ``top_k`` and
            the ``offset``/``limit`` window).
        campaigns: how many campaign fronts contributed candidates.
        robust: whether the candidates carried the robustness columns.
        fingerprint: the contributing fronts' combined fingerprint (the
            HTTP layer's ETag; not part of the JSON body, which stays
            byte-identical to the pre-fingerprint wire format).
    """

    query: FrontQuery
    points: Tuple[DesignPoint, ...]
    total_points: int
    matched: int
    campaigns: int
    robust: bool
    distances: Optional[Tuple[float, ...]] = field(default=None)
    fingerprint: Optional[str] = field(default=None)

    def as_dict(self) -> Dict[str, object]:
        """JSON form of the result (what ``POST /query`` returns)."""
        doc: Dict[str, object] = {
            "query": self.query.as_dict(),
            "dataset": self.query.dataset,
            "points": [point.as_dict() for point in self.points],
            "total_points": self.total_points,
            "matched": self.matched,
            "returned": len(self.points),
            "campaigns": self.campaigns,
            "robust": self.robust,
        }
        if self.distances is not None:
            doc["distances"] = list(self.distances)
        return doc


@dataclass(frozen=True)
class _CandidateSet:
    """One query's candidate plan: columnar arrays plus a row materializer.

    ``columns``/``total`` describe the candidate rows the masks and
    rankings run over; ``materialize`` turns the final window's candidate
    indices into design points (the only step that builds Python objects).
    """

    columns: Mapping[str, np.ndarray]
    total: int
    campaigns: int
    robust: bool
    fingerprint: Optional[str]
    materialize: Callable[[Sequence[int]], Tuple[DesignPoint, ...]]


class QueryEngine:
    """Execute :class:`FrontQuery` objects against a :class:`FrontStore`.

    Args:
        store: the indexed front store.
        backend: array backend for masking/ranking (defaults to the
            store's resolved backend).
    """

    def __init__(
        self,
        store: FrontStore,
        backend: Optional[Union[str, ArrayBackend]] = None,
    ) -> None:
        self.store = store
        self.backend = store.backend if backend is None else resolve_backend(backend)

    # -- candidate assembly ------------------------------------------------------

    def _candidates(self, query: FrontQuery) -> "_CandidateSet":
        """The query's candidate plan: columns now, design points on demand.

        Single-campaign stores answer from the view's (possibly
        mmap-backed) column slices and materialize rows lazily through
        :meth:`~repro.serving.store.FrontView.point` — only the window
        the query returns ever becomes Python objects. Unions and
        dominated-opt-in queries still materialize every contributing
        point (the cross-campaign Pareto merge needs them), exactly as
        the merged report would.
        """
        views = self.store.views(query.dataset, fault_rate=query.fault_rate)
        fingerprint = combine_fingerprints(views) if views else None
        if len(views) == 1 and not query.include_dominated:
            view = views[0]
            pareto_index = view.pareto_index

            def materialize_rows(indices: Sequence[int]) -> Tuple[DesignPoint, ...]:
                return tuple(
                    view.point(int(pareto_index[int(i)])) for i in indices
                )

            return _CandidateSet(
                columns=view.pareto_columns,
                total=int(pareto_index.shape[0]),
                campaigns=1,
                robust=view.robust,
                fingerprint=fingerprint,
                materialize=materialize_rows,
            )
        points: List[DesignPoint] = []
        for view in views:
            points.extend(view.points)
        robust = bool(points) and all(p.robust_accuracy is not None for p in points)
        if not query.include_dominated:
            points = pareto_front(points, robust=robust)
        return _CandidateSet(
            columns=build_columns(points),
            total=len(points),
            campaigns=len(views),
            robust=robust,
            fingerprint=fingerprint,
            materialize=lambda indices: tuple(points[int(i)] for i in indices),
        )

    # -- execution ---------------------------------------------------------------

    @staticmethod
    def _window(values: np.ndarray, query: FrontQuery) -> np.ndarray:
        """Apply ``top_k`` then the ``offset``/``limit`` page to a ranking."""
        if query.top_k is not None:
            values = values[: query.top_k]
        if query.offset:
            values = values[query.offset :]
        if query.limit is not None:
            values = values[: query.limit]
        return values

    def run(self, query: Union[FrontQuery, Mapping[str, object]]) -> QueryResult:
        """Execute one query; raises ``UnknownDatasetError`` for missed datasets."""
        if not isinstance(query, FrontQuery):
            query = FrontQuery.from_dict(query)
        candidates = self._candidates(query)
        columns = candidates.columns
        mask = np.ones(candidates.total, dtype=bool)
        for name, (column, direction) in CONSTRAINTS.items():
            bound = getattr(query, name)
            if bound is None:
                continue
            values = columns[column]
            # NaN compares False either way: a point without the column
            # can never satisfy a constraint on it.
            with np.errstate(invalid="ignore"):
                mask &= values >= bound if direction == "min" else values <= bound
        selected = self.backend.nonzero(mask)
        matched = int(selected.size)

        distances: Optional[np.ndarray] = None
        if query.nearest is not None:
            distances = self._distances(columns, selected, query.nearest)
            order = self.backend.argsort_stable(distances)
        else:
            keys = columns[query.order_by][selected]
            keys = np.nan_to_num(keys, nan=np.inf, posinf=np.inf, neginf=-np.inf)
            order = self.backend.argsort_stable(-keys if query.descending else keys)
        ranked = self._window(selected[order], query)
        result_distances: Optional[Tuple[float, ...]] = None
        if distances is not None:
            kept = self._window(distances[order], query)
            result_distances = tuple(float(value) for value in kept)
        return QueryResult(
            query=query,
            points=candidates.materialize(ranked),
            total_points=candidates.total,
            matched=matched,
            campaigns=candidates.campaigns,
            robust=candidates.robust,
            distances=result_distances,
            fingerprint=candidates.fingerprint,
        )

    def _distances(
        self,
        columns: Mapping[str, np.ndarray],
        selected: np.ndarray,
        nearest: Sequence[Tuple[str, float]],
    ) -> np.ndarray:
        """Normalized Euclidean distance of each selected point to the target.

        Each axis is scaled by the candidate set's span on that objective
        (degenerate spans fall back to ``max(|target|, 1)``) so axes with
        different units — accuracy in [0, 1], area in mm² — weigh equally.
        NaN values (missing robustness columns) rank last on that axis.
        """
        total = np.zeros(selected.size, dtype=np.float64)
        for column, target in nearest:
            values = columns[column][selected]
            finite = values[np.isfinite(values)]
            span = float(finite.max() - finite.min()) if finite.size else 0.0
            if span <= 0.0:
                span = max(abs(float(target)), 1.0)
            deltas = (values - float(target)) / span
            deltas = np.nan_to_num(deltas, nan=np.inf)
            with np.errstate(over="ignore"):
                total += np.square(deltas)
        return np.sqrt(total)


__all__ = [
    "CONSTRAINTS",
    "ORDERABLE_COLUMNS",
    "FrontQuery",
    "QueryEngine",
    "QueryResult",
    "QueryValidationError",
]
