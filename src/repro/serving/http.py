"""Stdlib-only threaded HTTP API over a front store.

The service is deliberately tiny — ``http.server.ThreadingHTTPServer``
plus JSON, nothing outside the standard library — because the heavy
lifting lives in :mod:`repro.serving.store` (LRU-indexed fronts) and
:mod:`repro.serving.query` (columnar constraint/top-k engine). Routes:

====================  =========================================================
``GET /healthz``      liveness + indexed dataset count
``GET /datasets``     sorted dataset names served by the indexed campaigns
``GET /fronts/<ds>``  the dataset's front document (byte-identical to
                      ``report/front_<ds>.json`` for single-campaign
                      stores; ``?offset=&limit=`` pages the ``front`` rows)
``POST /query``       execute a :class:`~repro.serving.query.FrontQuery`
                      (JSON body), returning ranked matching points
``GET /metrics``      request counts, status classes, and a latency
                      histogram with p50/p99 estimates
====================  =========================================================

Conditional requests: ``GET /fronts/<ds>`` and ``POST /query`` responses
carry an ``ETag`` — the served front's fingerprint (see
:func:`~repro.serving.store.combine_fingerprints`) — and a request whose
``If-None-Match`` matches it answers ``304 Not Modified`` with no body.
The tag changes exactly when a contributing front document changes, so
pollers pay bytes only when there is something new. The dataset path
segment is URL-decoded before validation: percent-encoded safe names
resolve, anything unsafe *after* decoding is refused before any path
construction.

A query or front request for a dataset no campaign serves answers 404 —
and, when the server is built with a :class:`MissEnqueuer`, publishes a
campaign job covering the miss into the fabric queue (PR-7 format), so
production misses become future coverage. Enqueueing dedupes by job id:
one queue entry per distinct miss, no matter how many threads race on it.
With ``serve(..., refresh_reports=True)`` the periodic refresh also
rebuilds campaign reports that lag their completed jobs, which is what
closes the loop: miss → enqueue → ``repro campaign work`` drains →
refresh republishes → the front serves.

Every response carries ``Content-Length`` and the handlers speak
HTTP/1.1, so keep-alive clients (the benchmark, `curl` loops) reuse
connections on the hot path. Request bodies are capped at
:data:`MAX_BODY_BYTES` (413 beyond it; a malformed ``Content-Length``
answers 400, not a 500).
"""

from __future__ import annotations

import json
import math
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..campaign.fabric.layout import FabricLayout
from ..campaign.journal import write_json_atomic
from ..campaign.spec import CampaignSpec, JobSpec
from .query import QueryEngine, QueryValidationError
from .store import FrontStore, UnknownDatasetError, is_safe_dataset_name

#: Upper bound on accepted request-body sizes. Queries are a few hundred
#: bytes; anything approaching this is either a mistake or abuse, and is
#: refused (413) before a single body byte is read.
MAX_BODY_BYTES = 1 << 20

#: Latency histogram bucket upper bounds, in seconds (log-spaced,
#: 0.1 ms .. 10 s; the final implicit bucket is +inf).
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class ServingMetrics:
    """Thread-safe request counters and a latency histogram.

    The histogram uses fixed log-spaced buckets (:data:`LATENCY_BUCKETS`),
    so percentile estimates quantize to bucket upper bounds — the same
    trade-off Prometheus histograms make, and plenty for a p99 floor
    assertion in CI.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests: Dict[str, int] = {}
        self.statuses: Dict[str, int] = {}
        self._buckets = [0] * (len(LATENCY_BUCKETS) + 1)
        self._count = 0
        self._total_seconds = 0.0

    def observe(self, route: str, status: int, seconds: float) -> None:
        """Record one handled request."""
        status_class = f"{status // 100}xx"
        with self._lock:
            self.requests[route] = self.requests.get(route, 0) + 1
            self.statuses[status_class] = self.statuses.get(status_class, 0) + 1
            self._count += 1
            self._total_seconds += seconds
            for index, bound in enumerate(LATENCY_BUCKETS):
                if seconds <= bound:
                    self._buckets[index] += 1
                    break
            else:
                self._buckets[-1] += 1

    def _percentile(self, quantile: float) -> Optional[float]:
        """Latency upper bound (seconds) at ``quantile``, from the histogram.

        A quantile landing in the +inf overflow bucket returns ``inf`` —
        the histogram honestly has no finite upper bound for it (it used
        to report the last finite bound, silently capping a pathological
        p99 at 10 s).
        """
        if self._count == 0:
            return None
        threshold = quantile * self._count
        cumulative = 0
        for index, count in enumerate(self._buckets):
            cumulative += count
            if cumulative >= threshold:
                if index < len(LATENCY_BUCKETS):
                    return LATENCY_BUCKETS[index]
                return math.inf
        return math.inf

    def snapshot(self) -> Dict[str, object]:
        """The ``GET /metrics`` document."""
        with self._lock:
            buckets = [
                {"le": bound, "count": count}
                for bound, count in zip(LATENCY_BUCKETS, self._buckets)
            ]
            buckets.append({"le": "inf", "count": self._buckets[-1]})
            mean = self._total_seconds / self._count if self._count else None
            return {
                "requests": dict(sorted(self.requests.items())),
                "responses": dict(sorted(self.statuses.items())),
                "latency": {
                    "count": self._count,
                    "mean_ms": None if mean is None else round(mean * 1e3, 4),
                    "p50_ms": _to_ms(self._percentile(0.50)),
                    "p99_ms": _to_ms(self._percentile(0.99)),
                    "buckets": buckets,
                },
            }


def _etag_matches(header: Optional[str], etag: str) -> bool:
    """Whether an ``If-None-Match`` header value matches the current ETag.

    Handles the comma-separated list form, the ``*`` wildcard, and weak
    validators (``W/"..."`` compares by opaque tag, as RFC 9110 allows
    for ``If-None-Match``).
    """
    if not header:
        return False
    for candidate in header.split(","):
        candidate = candidate.strip()
        if candidate == "*" or candidate == etag:
            return True
        if candidate.startswith("W/") and candidate[2:] == etag:
            return True
    return False


def _parse_pagination(query_string: str) -> Tuple[Optional[int], Optional[int]]:
    """``(offset, limit)`` from a URL query string (``None`` = not given).

    Raises ``ValueError`` with a client-facing message for unknown
    parameters, non-integers, a negative offset or a non-positive limit.
    """
    if not query_string:
        return None, None
    params = urllib.parse.parse_qs(query_string, keep_blank_values=True)
    unknown = set(params) - {"offset", "limit"}
    if unknown:
        raise ValueError(f"unknown query parameters {sorted(unknown)}")

    def one(name: str, minimum: int) -> Optional[int]:
        values = params.get(name)
        if not values:
            return None
        try:
            value = int(values[-1])
        except ValueError:
            raise ValueError(f"{name} must be an integer, got {values[-1]!r}") from None
        if value < minimum:
            raise ValueError(f"{name} must be >= {minimum}, got {value}")
        return value

    return one("offset", 0), one("limit", 1)


def _to_ms(seconds: Optional[float]) -> Union[float, str, None]:
    """Seconds → milliseconds (``None`` passes through; ``inf`` → ``"inf"``).

    The string spelling keeps the metrics document valid JSON — bare
    ``Infinity`` is not — while staying distinguishable from ``None``
    ("no observations yet") and matching the overflow bucket's ``"le"``.
    """
    if seconds is None:
        return None
    if math.isinf(seconds):
        return "inf"
    return round(seconds * 1e3, 4)


class MissEnqueuer:
    """Publish a campaign job covering a missed dataset into the fabric queue.

    Args:
        campaign: the campaign directory whose fabric queue receives the
            job (its ``spec.json`` supplies the search/seed/pipeline the
            job reuses — the first search and first seed of the grid).
        now_fn: clock used for the queue entry's ``published`` stamp
            (injectable for tests, like the fabric coordinator's).

    The published entry matches the coordinator's queue format
    (``{"job": ..., "requeues": 0, "published": ...}`` plus an ``origin``
    marker), so an elastic ``repro campaign work`` worker claims it like
    any coordinator-published job. Dedupe is by job id: a lock plus an
    existence check guarantee exactly one queue entry per distinct miss,
    however many request threads race on the same dataset.
    """

    def __init__(self, campaign: Union[str, Path], now_fn=time.time) -> None:
        self.campaign = Path(campaign)
        self.layout = FabricLayout(self.campaign)
        self.now_fn = now_fn
        self._lock = threading.Lock()
        self._enqueued: Dict[str, str] = {}

    def _job_for(self, dataset: str) -> Optional[JobSpec]:
        """A job spec covering ``dataset``, templated from the campaign spec."""
        try:
            data = json.loads((self.campaign / "spec.json").read_text())
            spec = CampaignSpec.from_dict(data)
        except (OSError, ValueError, TypeError, KeyError, json.JSONDecodeError):
            return None
        search = spec.searches[0]
        return JobSpec(
            job_id=f"{dataset}-{search.name}-s{spec.seeds[0]}",
            dataset=dataset,
            algorithm=search.algorithm,
            search_name=search.name,
            seed=spec.seeds[0],
            pipeline=spec.pipeline,
            search=search.params,
        )

    def enqueue(self, dataset: str) -> Optional[str]:
        """Publish one job for ``dataset``; returns its id (``None`` = skipped).

        Skips (returning the existing id) when this enqueuer already
        published the dataset's job, and skips silently when the queue
        entry already exists on disk (a coordinator or a sibling server
        got there first) or the campaign spec is unreadable.

        Dataset names come verbatim from request URLs/bodies and end up
        embedded in the queue entry's file name, so anything that is not
        a plain token (:func:`~repro.serving.store.is_safe_dataset_name`)
        is refused — no request-derived string may steer the write
        outside the fabric queue directory.

        The dedupe map is consulted *before* the job spec is built, so a
        hot 404 (many requests missing the same dataset) costs one dict
        lookup per request — not a ``spec.json`` read and parse.
        """
        if not is_safe_dataset_name(dataset):
            return None
        with self._lock:
            existing = self._enqueued.get(dataset)
        if existing is not None:
            return existing
        job = self._job_for(dataset)
        if job is None:
            return None
        with self._lock:
            if dataset in self._enqueued:
                return self._enqueued[dataset]
            entry_path = self.layout.queue_entry(job.job_id)
            if entry_path.resolve().parent != self.layout.queue_dir.resolve():
                return None
            if not entry_path.exists():
                write_json_atomic(
                    entry_path,
                    {
                        "job": job.as_dict(),
                        "requeues": 0,
                        "published": round(self.now_fn(), 3),
                        "origin": "serving-miss",
                    },
                )
            self._enqueued[dataset] = job.job_id
            return job.job_id


class ServingHandler(BaseHTTPRequestHandler):
    """Route one HTTP request against the server's store/engine/metrics."""

    protocol_version = "HTTP/1.1"
    # Small request/response pairs on keep-alive connections hit the
    # Nagle + delayed-ACK interaction (~40 ms per round trip) unless the
    # socket writes eagerly.
    disable_nagle_algorithm = True
    server: "FrontServer"

    # -- plumbing ----------------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Silence the default stderr access log (metrics replace it)."""

    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        """One complete response with ``Content-Length`` (keep-alive safe)."""
        self._response_started = True
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self,
        status: int,
        document: Mapping[str, object],
        headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        """One JSON response."""
        self._send(status, (json.dumps(document) + "\n").encode("utf-8"), headers=headers)

    def _send_not_modified(self, etag: str) -> None:
        """``304 Not Modified``: the ETag, no body (Content-Length 0 keeps
        the keep-alive framing explicit)."""
        self._response_started = True
        self.send_response(304)
        self.send_header("ETag", etag)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def _miss(self, dataset: str) -> None:
        """404 for an unserved dataset, enqueueing a covering job if configured."""
        enqueued: Optional[str] = None
        if self.server.enqueuer is not None:
            enqueued = self.server.enqueuer.enqueue(dataset)
        self._send_json(
            404,
            {
                "error": "unknown dataset",
                "dataset": dataset,
                "enqueued_job": enqueued,
            },
        )

    # -- routes ------------------------------------------------------------------

    def _handle_failure(self, error: Exception) -> int:
        """Answer (or abandon) a request that raised; returns the status.

        A :class:`ConnectionError` — reset or broken pipe — means the
        client is gone: there is nobody to answer, so record 499 and drop
        the connection. Any other error answers 500, but only when no
        response bytes have gone out yet; once headers are on the wire,
        injecting a second status line would corrupt the keep-alive
        framing, so the connection is closed instead.
        """
        if isinstance(error, ConnectionError):
            self.close_connection = True
            return 499
        if getattr(self, "_response_started", False):
            self.close_connection = True
            return 500
        try:
            self._send_json(500, {"error": type(error).__name__, "detail": str(error)})
        except ConnectionError:
            self.close_connection = True
            return 499
        return 500

    def _front_route(self, dataset: str, query_string: str) -> int:
        """``GET /fronts/<ds>``: ETag/304, optional pagination; returns status."""
        if not is_safe_dataset_name(dataset):
            # Refused after URL decoding, before any path construction;
            # _miss's enqueuer applies the same check and publishes nothing.
            self._miss(dataset)
            return 404
        try:
            offset, limit = _parse_pagination(query_string)
        except ValueError as error:
            self._send_json(400, {"error": "invalid pagination", "detail": str(error)})
            return 400
        try:
            raw, fingerprint = self.server.store.front(dataset)
        except UnknownDatasetError:
            self._miss(dataset)
            return 404
        etag = f'"{fingerprint}"'
        if _etag_matches(self.headers.get("If-None-Match"), etag):
            self._send_not_modified(etag)
            return 304
        headers = {"ETag": etag}
        if offset is None and limit is None:
            self._send(200, raw, headers=headers)
            return 200
        document = json.loads(raw.decode("utf-8"))
        front = document.get("front") if isinstance(document, dict) else None
        rows = front if isinstance(front, list) else []
        start = offset or 0
        stop = None if limit is None else start + limit
        self._send_json(
            200,
            {
                "dataset": dataset,
                "baseline": document.get("baseline") if isinstance(document, dict) else None,
                "total_points": len(rows),
                "offset": start,
                "limit": limit,
                "front": rows[start:stop],
            },
            headers=headers,
        )
        return 200

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Dispatch ``GET`` routes."""
        started = time.perf_counter()
        self._response_started = False
        raw_path, _, query_string = self.path.partition("?")
        path = raw_path.rstrip("/") or "/"
        route, status = f"GET {path}", 500
        try:
            if path == "/healthz":
                self._send_json(
                    200, {"status": "ok", "datasets": len(self.server.store.datasets())}
                )
                status = 200
            elif path == "/datasets":
                names = self.server.store.datasets()
                self._send_json(200, {"datasets": names, "count": len(names)})
                status = 200
            elif path == "/metrics":
                self._send_json(200, self.server.metrics.snapshot())
                status = 200
            elif path.startswith("/fronts/"):
                route = "GET /fronts"
                dataset = urllib.parse.unquote(path[len("/fronts/") :])
                status = self._front_route(dataset, query_string)
            else:
                route = "GET other"
                self._send_json(404, {"error": "no such route", "path": path})
                status = 404
        except Exception as error:  # pragma: no cover - defensive catch-all
            status = self._handle_failure(error)
        finally:
            self.server.metrics.observe(route, status, time.perf_counter() - started)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """Dispatch ``POST /query``."""
        started = time.perf_counter()
        self._response_started = False
        path = self.path.split("?", 1)[0].rstrip("/")
        route, status = "POST /query", 500
        try:
            if path != "/query":
                route = "POST other"
                self._send_json(404, {"error": "no such route", "path": path})
                status = 404
                return
            raw_length = self.headers.get("Content-Length")
            try:
                length = int(raw_length) if raw_length is not None else 0
            except ValueError:
                self._send_json(
                    400,
                    {"error": "invalid Content-Length", "detail": repr(raw_length)},
                )
                status = 400
                return
            if length < 0:
                self._send_json(
                    400,
                    {"error": "invalid Content-Length", "detail": repr(raw_length)},
                )
                status = 400
                return
            if length > MAX_BODY_BYTES:
                # Refused before reading a single body byte — an honest
                # huge Content-Length must not balloon server memory.
                self.close_connection = True
                self._send_json(
                    413,
                    {"error": "request body too large", "limit_bytes": MAX_BODY_BYTES},
                )
                status = 413
                return
            try:
                payload = json.loads(self.rfile.read(length).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                self._send_json(400, {"error": "invalid JSON body", "detail": str(error)})
                status = 400
                return
            try:
                result = self.server.engine.run(payload)
            except QueryValidationError as error:
                self._send_json(400, {"error": "invalid query", "detail": str(error)})
                status = 400
                return
            except UnknownDatasetError as error:
                self._miss(error.dataset)
                status = 404
                return
            etag = None if result.fingerprint is None else f'"{result.fingerprint}"'
            if etag is not None and _etag_matches(self.headers.get("If-None-Match"), etag):
                self._send_not_modified(etag)
                status = 304
                return
            self._send_json(
                200, result.as_dict(), headers=None if etag is None else {"ETag": etag}
            )
            status = 200
        except Exception as error:  # pragma: no cover - defensive catch-all
            status = self._handle_failure(error)
        finally:
            self.server.metrics.observe(route, status, time.perf_counter() - started)


class FrontServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one store/engine/metrics triple.

    Args:
        address: ``(host, port)`` to bind (port 0 picks a free one —
            read it back from :attr:`server_address`).
        store: the front store to serve.
        engine: query engine (built over ``store`` when omitted).
        enqueuer: optional on-miss campaign-job publisher.
    """

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        store: FrontStore,
        engine: Optional[QueryEngine] = None,
        enqueuer: Optional[MissEnqueuer] = None,
    ) -> None:
        super().__init__(address, ServingHandler)
        self.store = store
        self.engine = engine if engine is not None else QueryEngine(store)
        self.enqueuer = enqueuer
        self.metrics = ServingMetrics()

    @property
    def url(self) -> str:
        """Base URL of the bound socket."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def start_server(
    store: FrontStore,
    host: str = "127.0.0.1",
    port: int = 0,
    enqueuer: Optional[MissEnqueuer] = None,
) -> Tuple[FrontServer, threading.Thread]:
    """Build a :class:`FrontServer` and serve it on a daemon thread.

    Returns ``(server, thread)``; call ``server.shutdown()`` then
    ``server.server_close()`` to stop. This is the embedding/test entry
    point — the CLI's ``repro serve`` wraps it in a foreground loop.
    """
    server = FrontServer((host, port), store, enqueuer=enqueuer)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def serve(
    campaigns: List[Union[str, Path]],
    host: str = "127.0.0.1",
    port: int = 8000,
    max_entries: Optional[int] = None,
    backend: Optional[str] = None,
    enqueue_misses: bool = False,
    refresh_seconds: Optional[float] = None,
    refresh_reports: bool = False,
) -> None:
    """Foreground serving loop behind the ``repro serve`` CLI verb.

    Builds the store over ``campaigns``, optionally wires on-miss enqueue
    into the *first* campaign's fabric queue, starts the threaded server,
    and (when ``refresh_seconds`` is set) refreshes the store index
    periodically until interrupted. With ``refresh_reports`` each refresh
    also rebuilds campaign reports that lag their completed jobs — the
    serving half of the miss loop: a worker drains the enqueued job, the
    next refresh folds its front into the report, and the store serves it.
    """
    store = FrontStore(campaigns, max_entries=max_entries, backend=backend)
    enqueuer = MissEnqueuer(campaigns[0]) if enqueue_misses else None
    server, _thread = start_server(store, host=host, port=port, enqueuer=enqueuer)
    print(f"serving {len(store.datasets())} dataset front(s) on {server.url}")
    try:
        while True:
            time.sleep(refresh_seconds if refresh_seconds else 3600.0)
            if refresh_seconds:
                if refresh_reports:
                    store.refresh(rebuild_reports=True)
                else:
                    store.refresh()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()


__all__ = [
    "LATENCY_BUCKETS",
    "MAX_BODY_BYTES",
    "FrontServer",
    "MissEnqueuer",
    "ServingHandler",
    "ServingMetrics",
    "serve",
    "start_server",
]
