"""Stdlib-only threaded HTTP API over a front store.

The service is deliberately tiny — ``http.server.ThreadingHTTPServer``
plus JSON, nothing outside the standard library — because the heavy
lifting lives in :mod:`repro.serving.store` (LRU-indexed fronts) and
:mod:`repro.serving.query` (columnar constraint/top-k engine). Routes:

====================  =========================================================
``GET /healthz``      liveness + indexed dataset count
``GET /datasets``     sorted dataset names served by the indexed campaigns
``GET /fronts/<ds>``  the dataset's front document (byte-identical to
                      ``report/front_<ds>.json`` for single-campaign stores)
``POST /query``       execute a :class:`~repro.serving.query.FrontQuery`
                      (JSON body), returning ranked matching points
``GET /metrics``      request counts, status classes, and a latency
                      histogram with p50/p99 estimates
====================  =========================================================

A query or front request for a dataset no campaign serves answers 404 —
and, when the server is built with a :class:`MissEnqueuer`, publishes a
campaign job covering the miss into the fabric queue (PR-7 format), so
production misses become future coverage. Enqueueing dedupes by job id:
one queue entry per distinct miss, no matter how many threads race on it.

Every response carries ``Content-Length`` and the handlers speak
HTTP/1.1, so keep-alive clients (the benchmark, `curl` loops) reuse
connections on the hot path.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..campaign.fabric.layout import FabricLayout
from ..campaign.journal import write_json_atomic
from ..campaign.spec import CampaignSpec, JobSpec
from .query import QueryEngine, QueryValidationError
from .store import FrontStore, UnknownDatasetError, is_safe_dataset_name

#: Latency histogram bucket upper bounds, in seconds (log-spaced,
#: 0.1 ms .. 10 s; the final implicit bucket is +inf).
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class ServingMetrics:
    """Thread-safe request counters and a latency histogram.

    The histogram uses fixed log-spaced buckets (:data:`LATENCY_BUCKETS`),
    so percentile estimates quantize to bucket upper bounds — the same
    trade-off Prometheus histograms make, and plenty for a p99 floor
    assertion in CI.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests: Dict[str, int] = {}
        self.statuses: Dict[str, int] = {}
        self._buckets = [0] * (len(LATENCY_BUCKETS) + 1)
        self._count = 0
        self._total_seconds = 0.0

    def observe(self, route: str, status: int, seconds: float) -> None:
        """Record one handled request."""
        status_class = f"{status // 100}xx"
        with self._lock:
            self.requests[route] = self.requests.get(route, 0) + 1
            self.statuses[status_class] = self.statuses.get(status_class, 0) + 1
            self._count += 1
            self._total_seconds += seconds
            for index, bound in enumerate(LATENCY_BUCKETS):
                if seconds <= bound:
                    self._buckets[index] += 1
                    break
            else:
                self._buckets[-1] += 1

    def _percentile(self, quantile: float) -> Optional[float]:
        """Latency upper bound (seconds) at ``quantile``, from the histogram."""
        if self._count == 0:
            return None
        threshold = quantile * self._count
        cumulative = 0
        for index, count in enumerate(self._buckets):
            cumulative += count
            if cumulative >= threshold:
                if index < len(LATENCY_BUCKETS):
                    return LATENCY_BUCKETS[index]
                return LATENCY_BUCKETS[-1]
        return LATENCY_BUCKETS[-1]

    def snapshot(self) -> Dict[str, object]:
        """The ``GET /metrics`` document."""
        with self._lock:
            buckets = [
                {"le": bound, "count": count}
                for bound, count in zip(LATENCY_BUCKETS, self._buckets)
            ]
            buckets.append({"le": "inf", "count": self._buckets[-1]})
            mean = self._total_seconds / self._count if self._count else None
            return {
                "requests": dict(sorted(self.requests.items())),
                "responses": dict(sorted(self.statuses.items())),
                "latency": {
                    "count": self._count,
                    "mean_ms": None if mean is None else round(mean * 1e3, 4),
                    "p50_ms": _to_ms(self._percentile(0.50)),
                    "p99_ms": _to_ms(self._percentile(0.99)),
                    "buckets": buckets,
                },
            }


def _to_ms(seconds: Optional[float]) -> Optional[float]:
    """Seconds → milliseconds (``None`` passes through)."""
    return None if seconds is None else round(seconds * 1e3, 4)


class MissEnqueuer:
    """Publish a campaign job covering a missed dataset into the fabric queue.

    Args:
        campaign: the campaign directory whose fabric queue receives the
            job (its ``spec.json`` supplies the search/seed/pipeline the
            job reuses — the first search and first seed of the grid).
        now_fn: clock used for the queue entry's ``published`` stamp
            (injectable for tests, like the fabric coordinator's).

    The published entry matches the coordinator's queue format
    (``{"job": ..., "requeues": 0, "published": ...}`` plus an ``origin``
    marker), so an elastic ``repro campaign work`` worker claims it like
    any coordinator-published job. Dedupe is by job id: a lock plus an
    existence check guarantee exactly one queue entry per distinct miss,
    however many request threads race on the same dataset.
    """

    def __init__(self, campaign: Union[str, Path], now_fn=time.time) -> None:
        self.campaign = Path(campaign)
        self.layout = FabricLayout(self.campaign)
        self.now_fn = now_fn
        self._lock = threading.Lock()
        self._enqueued: Dict[str, str] = {}

    def _job_for(self, dataset: str) -> Optional[JobSpec]:
        """A job spec covering ``dataset``, templated from the campaign spec."""
        try:
            data = json.loads((self.campaign / "spec.json").read_text())
            spec = CampaignSpec.from_dict(data)
        except (OSError, ValueError, TypeError, KeyError, json.JSONDecodeError):
            return None
        search = spec.searches[0]
        return JobSpec(
            job_id=f"{dataset}-{search.name}-s{spec.seeds[0]}",
            dataset=dataset,
            algorithm=search.algorithm,
            search_name=search.name,
            seed=spec.seeds[0],
            pipeline=spec.pipeline,
            search=search.params,
        )

    def enqueue(self, dataset: str) -> Optional[str]:
        """Publish one job for ``dataset``; returns its id (``None`` = skipped).

        Skips (returning the existing id) when this enqueuer already
        published the dataset's job, and skips silently when the queue
        entry already exists on disk (a coordinator or a sibling server
        got there first) or the campaign spec is unreadable.

        Dataset names come verbatim from request URLs/bodies and end up
        embedded in the queue entry's file name, so anything that is not
        a plain token (:func:`~repro.serving.store.is_safe_dataset_name`)
        is refused — no request-derived string may steer the write
        outside the fabric queue directory.
        """
        if not is_safe_dataset_name(dataset):
            return None
        job = self._job_for(dataset)
        if job is None:
            return None
        with self._lock:
            if dataset in self._enqueued:
                return self._enqueued[dataset]
            entry_path = self.layout.queue_entry(job.job_id)
            if entry_path.resolve().parent != self.layout.queue_dir.resolve():
                return None
            if not entry_path.exists():
                write_json_atomic(
                    entry_path,
                    {
                        "job": job.as_dict(),
                        "requeues": 0,
                        "published": round(self.now_fn(), 3),
                        "origin": "serving-miss",
                    },
                )
            self._enqueued[dataset] = job.job_id
            return job.job_id


class ServingHandler(BaseHTTPRequestHandler):
    """Route one HTTP request against the server's store/engine/metrics."""

    protocol_version = "HTTP/1.1"
    # Small request/response pairs on keep-alive connections hit the
    # Nagle + delayed-ACK interaction (~40 ms per round trip) unless the
    # socket writes eagerly.
    disable_nagle_algorithm = True
    server: "FrontServer"

    # -- plumbing ----------------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Silence the default stderr access log (metrics replace it)."""

    def _send(self, status: int, body: bytes, content_type: str = "application/json") -> None:
        """One complete response with ``Content-Length`` (keep-alive safe)."""
        self._response_started = True
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, document: Mapping[str, object]) -> None:
        """One JSON response."""
        self._send(status, (json.dumps(document) + "\n").encode("utf-8"))

    def _miss(self, dataset: str) -> None:
        """404 for an unserved dataset, enqueueing a covering job if configured."""
        enqueued: Optional[str] = None
        if self.server.enqueuer is not None:
            enqueued = self.server.enqueuer.enqueue(dataset)
        self._send_json(
            404,
            {
                "error": "unknown dataset",
                "dataset": dataset,
                "enqueued_job": enqueued,
            },
        )

    # -- routes ------------------------------------------------------------------

    def _handle_failure(self, error: Exception) -> int:
        """Answer (or abandon) a request that raised; returns the status.

        A :class:`ConnectionError` — reset or broken pipe — means the
        client is gone: there is nobody to answer, so record 499 and drop
        the connection. Any other error answers 500, but only when no
        response bytes have gone out yet; once headers are on the wire,
        injecting a second status line would corrupt the keep-alive
        framing, so the connection is closed instead.
        """
        if isinstance(error, ConnectionError):
            self.close_connection = True
            return 499
        if getattr(self, "_response_started", False):
            self.close_connection = True
            return 500
        try:
            self._send_json(500, {"error": type(error).__name__, "detail": str(error)})
        except ConnectionError:
            self.close_connection = True
            return 499
        return 500

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Dispatch ``GET`` routes."""
        started = time.perf_counter()
        self._response_started = False
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        route, status = f"GET {path}", 500
        try:
            if path == "/healthz":
                self._send_json(
                    200, {"status": "ok", "datasets": len(self.server.store.datasets())}
                )
                status = 200
            elif path == "/datasets":
                names = self.server.store.datasets()
                self._send_json(200, {"datasets": names, "count": len(names)})
                status = 200
            elif path == "/metrics":
                self._send_json(200, self.server.metrics.snapshot())
                status = 200
            elif path.startswith("/fronts/"):
                route = "GET /fronts"
                dataset = path[len("/fronts/") :]
                try:
                    self._send(200, self.server.store.raw_front(dataset))
                    status = 200
                except UnknownDatasetError:
                    self._miss(dataset)
                    status = 404
            else:
                route = "GET other"
                self._send_json(404, {"error": "no such route", "path": path})
                status = 404
        except Exception as error:  # pragma: no cover - defensive catch-all
            status = self._handle_failure(error)
        finally:
            self.server.metrics.observe(route, status, time.perf_counter() - started)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """Dispatch ``POST /query``."""
        started = time.perf_counter()
        self._response_started = False
        path = self.path.split("?", 1)[0].rstrip("/")
        route, status = "POST /query", 500
        try:
            if path != "/query":
                route = "POST other"
                self._send_json(404, {"error": "no such route", "path": path})
                status = 404
                return
            length = int(self.headers.get("Content-Length") or 0)
            try:
                payload = json.loads(self.rfile.read(length).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                self._send_json(400, {"error": "invalid JSON body", "detail": str(error)})
                status = 400
                return
            try:
                result = self.server.engine.run(payload)
            except QueryValidationError as error:
                self._send_json(400, {"error": "invalid query", "detail": str(error)})
                status = 400
                return
            except UnknownDatasetError as error:
                self._miss(error.dataset)
                status = 404
                return
            self._send_json(200, result.as_dict())
            status = 200
        except Exception as error:  # pragma: no cover - defensive catch-all
            status = self._handle_failure(error)
        finally:
            self.server.metrics.observe(route, status, time.perf_counter() - started)


class FrontServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one store/engine/metrics triple.

    Args:
        address: ``(host, port)`` to bind (port 0 picks a free one —
            read it back from :attr:`server_address`).
        store: the front store to serve.
        engine: query engine (built over ``store`` when omitted).
        enqueuer: optional on-miss campaign-job publisher.
    """

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        store: FrontStore,
        engine: Optional[QueryEngine] = None,
        enqueuer: Optional[MissEnqueuer] = None,
    ) -> None:
        super().__init__(address, ServingHandler)
        self.store = store
        self.engine = engine if engine is not None else QueryEngine(store)
        self.enqueuer = enqueuer
        self.metrics = ServingMetrics()

    @property
    def url(self) -> str:
        """Base URL of the bound socket."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def start_server(
    store: FrontStore,
    host: str = "127.0.0.1",
    port: int = 0,
    enqueuer: Optional[MissEnqueuer] = None,
) -> Tuple[FrontServer, threading.Thread]:
    """Build a :class:`FrontServer` and serve it on a daemon thread.

    Returns ``(server, thread)``; call ``server.shutdown()`` then
    ``server.server_close()`` to stop. This is the embedding/test entry
    point — the CLI's ``repro serve`` wraps it in a foreground loop.
    """
    server = FrontServer((host, port), store, enqueuer=enqueuer)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def serve(
    campaigns: List[Union[str, Path]],
    host: str = "127.0.0.1",
    port: int = 8000,
    max_entries: Optional[int] = None,
    backend: Optional[str] = None,
    enqueue_misses: bool = False,
    refresh_seconds: Optional[float] = None,
) -> None:
    """Foreground serving loop behind the ``repro serve`` CLI verb.

    Builds the store over ``campaigns``, optionally wires on-miss enqueue
    into the *first* campaign's fabric queue, starts the threaded server,
    and (when ``refresh_seconds`` is set) refreshes the store index
    periodically until interrupted.
    """
    store = FrontStore(campaigns, max_entries=max_entries, backend=backend)
    enqueuer = MissEnqueuer(campaigns[0]) if enqueue_misses else None
    server, _thread = start_server(store, host=host, port=port, enqueuer=enqueuer)
    print(f"serving {len(store.datasets())} dataset front(s) on {server.url}")
    try:
        while True:
            time.sleep(refresh_seconds if refresh_seconds else 3600.0)
            if refresh_seconds:
                store.refresh()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()


__all__ = [
    "LATENCY_BUCKETS",
    "FrontServer",
    "MissEnqueuer",
    "ServingHandler",
    "ServingMetrics",
    "serve",
    "start_server",
]
