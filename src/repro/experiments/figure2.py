"""Figure 2 reproduction: combined minimization via the hardware-aware GA.

The paper's Figure 2 overlays, for the WhiteWine classifier, the standalone
Pareto fronts with the front obtained when quantization, pruning and weight
clustering are combined by a hardware-aware genetic algorithm. The combined
front dominates the standalone ones and reaches ≈8× area gain at the 5 %
accuracy-loss budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from ..core.config import PipelineConfig, fast_config
from ..core.pareto import best_area_gain_at_loss, normalize_points, pareto_front
from ..core.pipeline import STANDALONE_TECHNIQUES, MinimizationPipeline
from ..core.results import NormalizedPoint, SweepResult
from ..search.ga import GAConfig, GAResult, HardwareAwareGA


@dataclass
class Figure2Result:
    """All the curves of Figure 2 for one dataset (WhiteWine in the paper)."""

    dataset: str
    sweep: SweepResult
    ga_result: GAResult
    fronts: Dict[str, List[NormalizedPoint]] = field(default_factory=dict)
    area_gains: Dict[str, Optional[float]] = field(default_factory=dict)

    @property
    def combined_gain(self) -> Optional[float]:
        """Area gain of the combined front at the 5 % loss budget."""
        return self.area_gains.get("combined")

    def format_rows(self) -> List[str]:
        rows = [
            f"# {self.dataset}: standalone vs combined minimization "
            f"(baseline acc={self.sweep.baseline.accuracy:.3f}, "
            f"area={self.sweep.baseline.area:.2f} mm^2)"
        ]
        for technique, points in self.fronts.items():
            for point in points:
                rows.append(
                    f"{technique:>13} norm_acc={point.normalized_accuracy:.3f} "
                    f"norm_area={point.normalized_area:.3f} "
                    f"(loss={point.accuracy_loss * 100:.1f}%, gain={point.area_gain:.2f}x)"
                )
        for technique, gain in self.area_gains.items():
            gain_text = f"{gain:.2f}x" if gain is not None else "not reached"
            rows.append(f"gain@5%loss {technique:<13} {gain_text}")
        return rows


def run_figure2(
    dataset: str = "whitewine",
    config: Optional[PipelineConfig] = None,
    ga_config: Optional[GAConfig] = None,
    techniques: Sequence[str] = STANDALONE_TECHNIQUES,
    fast: bool = False,
    n_workers: Optional[int] = None,
) -> Figure2Result:
    """Reproduce Figure 2: standalone sweeps plus the GA-combined front.

    Args:
        dataset: the paper uses WhiteWine; any registered dataset works.
        config: pipeline configuration (paper-faithful by default, reduced
            when ``fast``).
        ga_config: GA hyper-parameters (a smaller budget is used when ``fast``).
        techniques: standalone techniques to overlay.
        fast: reduced-cost settings for tests and quick benchmarks.
        n_workers: fitness-evaluation worker processes; overrides both
            ``config.n_workers`` and ``ga_config.n_workers`` when given.
            Any worker count yields a bit-identical combined front.
    """
    if config is None:
        config = fast_config(dataset) if fast else PipelineConfig(dataset=dataset)
    if ga_config is None:
        ga_config = (
            GAConfig(population_size=8, n_generations=4, finetune_epochs=4)
            if fast
            else GAConfig()
        )
    if n_workers is not None:
        ga_config = replace(ga_config, n_workers=n_workers)
    pipeline = MinimizationPipeline(config)
    sweep = pipeline.run(techniques)
    prepared = pipeline.prepare()

    ga = HardwareAwareGA(prepared, config=ga_config)
    ga_result = ga.run()
    sweep.add(ga_result.front)

    fronts: Dict[str, List[NormalizedPoint]] = {}
    gains: Dict[str, Optional[float]] = {}
    for technique in list(techniques) + ["combined"]:
        technique_points = sweep.by_technique(technique)
        # Robustness-aware GA runs attach robust_accuracy to every combined
        # point; the display front then keeps robustness trade-off designs.
        robust = bool(technique_points) and all(
            p.robust_accuracy is not None for p in technique_points
        )
        front = pareto_front(technique_points, robust=robust)
        fronts[technique] = normalize_points(front, sweep.baseline)
        best = best_area_gain_at_loss(
            technique_points, sweep.baseline, config.max_accuracy_loss
        )
        gains[technique] = None if best is None else float(best.area_gain)

    return Figure2Result(
        dataset=sweep.dataset,
        sweep=sweep,
        ga_result=ga_result,
        fronts=fronts,
        area_gains=gains,
    )
