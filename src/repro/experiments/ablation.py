"""Ablation studies on the design choices called out in DESIGN.md §7.

These go beyond the paper's figures: they quantify how much each modelling /
algorithmic choice matters, which both validates the reproduction's area
model and documents the sensitivity of the results.

* CSD vs naive binary constant-multiplier decomposition,
* input bit-width sensitivity of the baseline area,
* per-input-position vs whole-layer weight clustering,
* QAT vs post-training quantization at low precision,
* GA evaluation with vs without fine-tuning in the loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..bespoke.circuit import BespokeConfig
from ..bespoke.synthesis import synthesize
from ..clustering.sweep import clustering_sweep
from ..core.config import PipelineConfig, fast_config
from ..core.pipeline import MinimizationPipeline, PreparedPipeline
from ..quantization.sweep import quantization_sweep


@dataclass
class AblationResult:
    """Generic container: named variants mapped to their measured values."""

    name: str
    values: Dict[str, float] = field(default_factory=dict)
    details: Dict[str, object] = field(default_factory=dict)

    def format_rows(self) -> List[str]:
        rows = [f"# ablation: {self.name}"]
        for variant, value in self.values.items():
            rows.append(f"{variant:<32} {value:.4f}")
        return rows


def _prepare(dataset: str, config: Optional[PipelineConfig], fast: bool) -> PreparedPipeline:
    if config is None:
        config = fast_config(dataset) if fast else PipelineConfig(dataset=dataset)
    return MinimizationPipeline(config).prepare()


def csd_vs_binary(
    dataset: str = "whitewine",
    config: Optional[PipelineConfig] = None,
    fast: bool = True,
) -> AblationResult:
    """Baseline area with CSD vs naive binary shift-add multipliers."""
    prepared = _prepare(dataset, config, fast)
    areas: Dict[str, float] = {}
    for method in ("csd", "binary"):
        report = synthesize(
            prepared.baseline_model,
            config=BespokeConfig(
                input_bits=prepared.config.input_bits,
                weight_bits=prepared.config.baseline_weight_bits,
                multiplier_method=method,
            ),
            tech=prepared.technology,
            name=f"{dataset}_{method}",
        )
        areas[method] = report.area
    ratio = areas["binary"] / areas["csd"] if areas["csd"] > 0 else float("inf")
    return AblationResult(
        name="csd_vs_binary",
        values={**areas, "binary_over_csd": ratio},
        details={"dataset": dataset},
    )


def input_bitwidth_sensitivity(
    dataset: str = "whitewine",
    input_bit_range: Sequence[int] = (3, 4, 5, 6),
    config: Optional[PipelineConfig] = None,
    fast: bool = True,
) -> AblationResult:
    """Baseline area as a function of the circuit input bit-width."""
    prepared = _prepare(dataset, config, fast)
    values: Dict[str, float] = {}
    for bits in input_bit_range:
        report = synthesize(
            prepared.baseline_model,
            config=BespokeConfig(
                input_bits=int(bits),
                weight_bits=prepared.config.baseline_weight_bits,
            ),
            tech=prepared.technology,
            name=f"{dataset}_in{bits}",
        )
        values[f"input_bits_{bits}"] = report.area
    return AblationResult(
        name="input_bitwidth_sensitivity",
        values=values,
        details={"dataset": dataset},
    )


def clustering_granularity(
    dataset: str = "whitewine",
    n_clusters: int = 4,
    config: Optional[PipelineConfig] = None,
    fast: bool = True,
) -> AblationResult:
    """Per-input-position (paper) vs whole-layer clustering at equal budget."""
    prepared = _prepare(dataset, config, fast)
    values: Dict[str, float] = {}
    for per_position in (True, False):
        points = clustering_sweep(
            prepared.baseline_model,
            prepared.data,
            cluster_range=(n_clusters,),
            input_bits=prepared.config.input_bits,
            weight_bits=prepared.config.baseline_weight_bits,
            finetune_epochs=prepared.config.finetune_epochs,
            per_position=per_position,
            tech=prepared.technology,
            seed=prepared.config.seed,
        )
        label = "per_position" if per_position else "whole_layer"
        values[f"{label}_area"] = points[0].area
        values[f"{label}_accuracy"] = points[0].accuracy
    return AblationResult(
        name="clustering_granularity",
        values=values,
        details={"dataset": dataset, "n_clusters": n_clusters},
    )


def qat_vs_ptq(
    dataset: str = "whitewine",
    bit_range: Sequence[int] = (2, 3, 4),
    config: Optional[PipelineConfig] = None,
    fast: bool = True,
) -> AblationResult:
    """Accuracy of QAT vs post-training quantization at low bit-widths."""
    prepared = _prepare(dataset, config, fast)
    values: Dict[str, float] = {}
    for use_qat in (True, False):
        points = quantization_sweep(
            prepared.baseline_model,
            prepared.data,
            bit_range=bit_range,
            input_bits=prepared.config.input_bits,
            use_qat=use_qat,
            qat_epochs=prepared.config.finetune_epochs,
            tech=prepared.technology,
            seed=prepared.config.seed,
        )
        label = "qat" if use_qat else "ptq"
        for point in points:
            bits = point.parameters["weight_bits"]
            values[f"{label}_{bits}b_accuracy"] = point.accuracy
    return AblationResult(
        name="qat_vs_ptq",
        values=values,
        details={"dataset": dataset, "bit_range": list(bit_range)},
    )


def run_all_ablations(dataset: str = "whitewine", fast: bool = True) -> List[AblationResult]:
    """Run every ablation study on one dataset."""
    return [
        csd_vs_binary(dataset, fast=fast),
        input_bitwidth_sensitivity(dataset, fast=fast),
        clustering_granularity(dataset, fast=fast),
        qat_vs_ptq(dataset, fast=fast),
    ]
