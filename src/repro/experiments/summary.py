"""Headline-number reproduction (Section III text of the paper).

The paper's evaluation text quotes four headline numbers at the 5 %
accuracy-loss budget:

* quantization: ≈5× area reduction on average across the four datasets,
* pruning: ≈2.8× on average,
* weight clustering: ≈3.5× on average (budget met only on the wine datasets),
* all three combined (GA): up to 8× (WhiteWine).

:func:`run_summary` recomputes those numbers from the Figure-1 sweeps and
the Figure-2 GA run and reports them next to the paper's values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.pareto import average_area_gain, best_area_gain_at_loss
from ..core.results import SweepResult
from ..datasets.registry import PAPER_DATASETS
from .figure1 import Figure1Panel, run_figure1
from .figure2 import Figure2Result, run_figure2

#: The paper's reported headline values (area-gain factors at <=5 % loss).
PAPER_HEADLINE_GAINS: Dict[str, float] = {
    "quantization": 5.0,
    "pruning": 2.8,
    "clustering": 3.5,
    "combined": 8.0,
}


@dataclass
class SummaryResult:
    """Measured vs paper headline numbers."""

    measured: Dict[str, float] = field(default_factory=dict)
    paper: Dict[str, float] = field(default_factory=dict)
    per_dataset: Dict[str, Dict[str, Optional[float]]] = field(default_factory=dict)

    def format_rows(self) -> List[str]:
        rows = ["technique       paper     measured"]
        for technique, paper_value in self.paper.items():
            measured = self.measured.get(technique, float("nan"))
            rows.append(f"{technique:<15} {paper_value:>5.1f}x    {measured:>5.2f}x")
        return rows


def summarize_sweeps(
    sweeps: Dict[str, SweepResult],
    combined: Optional[Figure2Result] = None,
    max_accuracy_loss: float = 0.05,
) -> SummaryResult:
    """Compute the headline gains from already-run sweeps.

    Args:
        sweeps: per-dataset sweep results (the Figure-1 data).
        combined: the Figure-2 result providing the combined-GA number.
        max_accuracy_loss: accuracy budget (the paper uses 5 %).
    """
    summary = SummaryResult(paper=dict(PAPER_HEADLINE_GAINS))
    per_dataset: Dict[str, Dict[str, Optional[float]]] = {}
    for dataset, sweep in sweeps.items():
        per_dataset[dataset] = {}
        for technique in ("quantization", "pruning", "clustering"):
            best = best_area_gain_at_loss(
                sweep.by_technique(technique), sweep.baseline, max_accuracy_loss
            )
            per_dataset[dataset][technique] = None if best is None else float(best.area_gain)
    summary.per_dataset = per_dataset

    for technique in ("quantization", "pruning", "clustering"):
        summary.measured[technique] = average_area_gain(
            sweeps.values(), technique, max_accuracy_loss
        )
    if combined is not None and combined.combined_gain is not None:
        summary.measured["combined"] = float(combined.combined_gain)
    return summary


def run_summary(
    datasets: Sequence[str] = PAPER_DATASETS,
    fast: bool = False,
    combined_dataset: str = "whitewine",
) -> SummaryResult:
    """Recompute every headline number from scratch.

    Runs the four Figure-1 panels and the Figure-2 GA; with ``fast=True`` the
    reduced-cost configurations are used (suitable for CI/benchmarks).
    """
    panels: Dict[str, Figure1Panel] = run_figure1(datasets, fast=fast)
    sweeps = {dataset: panel.sweep for dataset, panel in panels.items()}
    combined = run_figure2(combined_dataset, fast=fast)
    return summarize_sweeps(sweeps, combined)
