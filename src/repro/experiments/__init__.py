"""Experiment drivers: Figure 1, Figure 2, headline summary, baselines, ablations."""

from .ablation import (
    AblationResult,
    clustering_granularity,
    csd_vs_binary,
    input_bitwidth_sensitivity,
    qat_vs_ptq,
    run_all_ablations,
)
from .baselines import BaselineRow, baseline_for, baseline_table, expected_topologies
from .figure1 import Figure1Panel, figure1_summary_rows, run_figure1, run_figure1_panel
from .figure2 import Figure2Result, run_figure2
from .summary import PAPER_HEADLINE_GAINS, SummaryResult, run_summary, summarize_sweeps

__all__ = [
    "AblationResult",
    "BaselineRow",
    "Figure1Panel",
    "Figure2Result",
    "PAPER_HEADLINE_GAINS",
    "SummaryResult",
    "baseline_for",
    "baseline_table",
    "clustering_granularity",
    "csd_vs_binary",
    "expected_topologies",
    "figure1_summary_rows",
    "input_bitwidth_sensitivity",
    "qat_vs_ptq",
    "run_all_ablations",
    "run_figure1",
    "run_figure1_panel",
    "run_figure2",
    "run_summary",
    "summarize_sweeps",
]
