"""Baseline bespoke classifiers (the role of Mubarik et al. [1] in the paper).

The paper normalizes every result against the un-minimized bespoke MLP of
each dataset. This module reproduces that baseline table: train the float
classifier, synthesize it with the 8-bit-weight / 4-bit-input convention and
report accuracy, area, power and gate counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.config import PipelineConfig, fast_config
from ..core.pipeline import MinimizationPipeline
from ..core.results import DesignPoint
from ..datasets.registry import PAPER_DATASETS, get_classifier_spec


@dataclass(frozen=True)
class BaselineRow:
    """One row of the baseline table."""

    dataset: str
    topology: List[int]
    accuracy: float
    area: float
    power: float
    delay: float
    n_multipliers: int
    total_gates: int

    def format(self) -> str:
        topo = "-".join(str(n) for n in self.topology)
        return (
            f"{self.dataset:<12} {topo:<12} acc={self.accuracy:.3f} "
            f"area={self.area:8.2f} mm^2  power={self.power:8.2f} uW  "
            f"delay={self.delay:8.1f} us  mults={self.n_multipliers:4d} "
            f"gates={self.total_gates:6d}"
        )


def baseline_for(
    dataset: str, config: Optional[PipelineConfig] = None, fast: bool = False
) -> BaselineRow:
    """Train and synthesize one dataset's un-minimized bespoke baseline."""
    if config is None:
        config = fast_config(dataset) if fast else PipelineConfig(dataset=dataset)
    pipeline = MinimizationPipeline(config)
    prepared = pipeline.prepare()
    point: DesignPoint = prepared.baseline_point
    report = point.report
    return BaselineRow(
        dataset=prepared.metadata["dataset"],
        topology=list(prepared.baseline_model.topology()),
        accuracy=point.accuracy,
        area=point.area,
        power=point.power,
        delay=point.delay,
        n_multipliers=report.n_multipliers if report is not None else 0,
        total_gates=report.total_gates if report is not None else 0,
    )


def baseline_table(
    datasets: Sequence[str] = PAPER_DATASETS, fast: bool = False
) -> Dict[str, BaselineRow]:
    """The full baseline table for the paper's four classifiers."""
    return {dataset: baseline_for(dataset, fast=fast) for dataset in datasets}


def expected_topologies() -> Dict[str, List[int]]:
    """The classifier topologies declared in DESIGN.md (used by tests)."""
    topologies: Dict[str, List[int]] = {}
    for dataset in PAPER_DATASETS:
        spec = get_classifier_spec(dataset)
        n_features = {"whitewine": 11, "redwine": 11, "pendigits": 16, "seeds": 7}[dataset]
        n_classes = {"whitewine": 7, "redwine": 6, "pendigits": 10, "seeds": 3}[dataset]
        topologies[dataset] = [n_features, *spec.hidden_layers, n_classes]
    return topologies
