"""Figure 1 reproduction: standalone-technique Pareto fronts per dataset.

The paper's Figure 1 shows, for each of the four classifiers, the
accuracy/area Pareto fronts obtained by applying quantization (2–7 bits),
unstructured pruning (20–60 % sparsity) and weight clustering standalone,
normalized to the un-minimized bespoke baseline. :func:`run_figure1_panel`
reproduces one panel; :func:`run_figure1` reproduces all four.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.config import PipelineConfig, fast_config
from ..core.pareto import area_gain_table, normalize_points, pareto_front
from ..core.pipeline import STANDALONE_TECHNIQUES, MinimizationPipeline
from ..core.results import NormalizedPoint, SweepResult
from ..datasets.registry import PAPER_DATASETS


@dataclass
class Figure1Panel:
    """One sub-plot of Figure 1: the normalized fronts of one dataset."""

    dataset: str
    sweep: SweepResult
    fronts: Dict[str, List[NormalizedPoint]] = field(default_factory=dict)
    area_gains: Dict[str, Optional[float]] = field(default_factory=dict)

    def format_rows(self) -> List[str]:
        """Human-readable rows (one per Pareto point), Figure-1 style."""
        rows = [
            f"# {self.dataset}: normalized accuracy vs normalized area "
            f"(baseline acc={self.sweep.baseline.accuracy:.3f}, "
            f"area={self.sweep.baseline.area:.2f} mm^2)"
        ]
        for technique, points in self.fronts.items():
            for point in points:
                rows.append(
                    f"{self.dataset:>10} {technique:>13} "
                    f"norm_acc={point.normalized_accuracy:.3f} "
                    f"norm_area={point.normalized_area:.3f} "
                    f"(loss={point.accuracy_loss * 100:.1f}%, gain={point.area_gain:.2f}x)"
                )
        return rows


def run_figure1_panel(
    dataset: str,
    config: Optional[PipelineConfig] = None,
    techniques: Sequence[str] = STANDALONE_TECHNIQUES,
    fast: bool = False,
) -> Figure1Panel:
    """Reproduce one Figure-1 panel.

    Args:
        dataset: dataset name (``"whitewine"``, ``"redwine"``, ``"pendigits"``,
            ``"seeds"``).
        config: pipeline configuration; defaults to the paper-faithful
            settings (or the reduced :func:`repro.core.config.fast_config`
            when ``fast`` is True).
        techniques: standalone techniques to sweep.
        fast: use the reduced-cost configuration.
    """
    if config is None:
        config = fast_config(dataset) if fast else PipelineConfig(dataset=dataset)
    pipeline = MinimizationPipeline(config)
    sweep = pipeline.run(techniques)

    fronts: Dict[str, List[NormalizedPoint]] = {}
    for technique in techniques:
        front = pareto_front(sweep.by_technique(technique))
        fronts[technique] = normalize_points(front, sweep.baseline)
    gains = area_gain_table(sweep, max_accuracy_loss=config.max_accuracy_loss)
    return Figure1Panel(dataset=sweep.dataset, sweep=sweep, fronts=fronts, area_gains=gains)


def run_figure1(
    datasets: Sequence[str] = PAPER_DATASETS,
    fast: bool = False,
    configs: Optional[Dict[str, PipelineConfig]] = None,
) -> Dict[str, Figure1Panel]:
    """Reproduce all panels of Figure 1 (WhiteWine, RedWine, Pendigits, Seeds)."""
    panels: Dict[str, Figure1Panel] = {}
    for dataset in datasets:
        config = configs.get(dataset) if configs else None
        panels[dataset] = run_figure1_panel(dataset, config=config, fast=fast)
    return panels


def figure1_summary_rows(panels: Dict[str, Figure1Panel]) -> List[str]:
    """The per-dataset area-gain-at-5%-loss summary the paper's text quotes."""
    rows = ["dataset        technique      area_gain_at_5%_loss"]
    for dataset, panel in panels.items():
        for technique, gain in panel.area_gains.items():
            gain_text = f"{gain:.2f}x" if gain is not None else "not reached"
            rows.append(f"{dataset:<14} {technique:<14} {gain_text}")
    return rows
