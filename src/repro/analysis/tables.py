"""Text-table rendering of sweeps and design points.

The paper presents its results as figures; for a text-only library the same
data is most useful as aligned tables (for the console), markdown (for
reports such as ``EXPERIMENTS.md``) and CSV (for downstream plotting). These
renderers are intentionally dependency-free.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence

from ..core.pareto import pareto_front
from ..core.results import DesignPoint, SweepResult


def _format_cell(value: object, precision: int = 3) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 3,
) -> str:
    """Render an aligned plain-text table."""
    if not headers:
        raise ValueError("headers must not be empty")
    formatted_rows = [[_format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted_rows:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in formatted_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 3,
) -> str:
    """Render a GitHub-flavoured markdown table."""
    if not headers:
        raise ValueError("headers must not be empty")
    lines = ["| " + " | ".join(headers) + " |", "|" + "---|" * len(headers)]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
        lines.append("| " + " | ".join(_format_cell(cell, precision) for cell in row) + " |")
    return "\n".join(lines)


def render_csv(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 6,
) -> str:
    """Render rows as CSV text (comma-separated, header line first)."""
    import csv

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    for row in rows:
        writer.writerow([_format_cell(cell, precision) for cell in row])
    return buffer.getvalue()


# -- sweep-specific views ----------------------------------------------------------


def sweep_rows(
    sweep: SweepResult,
    technique: Optional[str] = None,
    pareto_only: bool = False,
) -> List[List[object]]:
    """Tabular rows (one per design point) of a sweep, normalized to its baseline."""
    points: List[DesignPoint] = (
        sweep.points if technique is None else sweep.by_technique(technique)
    )
    if pareto_only:
        points = pareto_front(points)
    rows: List[List[object]] = []
    for point in points:
        normalized = point.normalized(sweep.baseline)
        rows.append(
            [
                sweep.dataset,
                point.technique,
                _describe_parameters(point),
                point.accuracy,
                normalized.normalized_accuracy,
                point.area,
                normalized.normalized_area,
                normalized.area_gain,
            ]
        )
    return rows


SWEEP_HEADERS = (
    "dataset",
    "technique",
    "configuration",
    "accuracy",
    "norm_accuracy",
    "area_mm2",
    "norm_area",
    "area_gain",
)


def sweep_table(sweep: SweepResult, pareto_only: bool = False, markdown: bool = False) -> str:
    """Full sweep as an aligned text (or markdown) table."""
    rows = sweep_rows(sweep, pareto_only=pareto_only)
    renderer = render_markdown_table if markdown else render_table
    return renderer(SWEEP_HEADERS, rows)


def sweep_csv(sweep: SweepResult, pareto_only: bool = False) -> str:
    """Full sweep as CSV text."""
    return render_csv(SWEEP_HEADERS, sweep_rows(sweep, pareto_only=pareto_only))


def gains_table(
    gains_by_dataset: Dict[str, Dict[str, Optional[float]]],
    paper_values: Optional[Dict[str, float]] = None,
    markdown: bool = False,
) -> str:
    """Area-gain-at-budget summary across datasets (the paper's headline table)."""
    techniques = sorted({t for gains in gains_by_dataset.values() for t in gains})
    headers = ["dataset"] + techniques
    rows: List[List[object]] = []
    for dataset, gains in gains_by_dataset.items():
        row: List[object] = [dataset]
        for technique in techniques:
            gain = gains.get(technique)
            row.append("n/a" if gain is None else f"{gain:.2f}x")
        rows.append(row)
    if paper_values:
        row = ["(paper)"]
        for technique in techniques:
            value = paper_values.get(technique)
            row.append("n/a" if value is None else f"{value:.1f}x")
        rows.append(row)
    renderer = render_markdown_table if markdown else render_table
    return renderer(headers, rows)


def _describe_parameters(point: DesignPoint) -> str:
    """Short human-readable description of a design point's configuration."""
    params = point.parameters
    if point.technique == "quantization":
        return f"{params.get('weight_bits', '?')}-bit weights"
    if point.technique == "pruning":
        sparsity = params.get("target_sparsity")
        return f"{float(sparsity) * 100:.0f}% sparsity" if sparsity is not None else "pruned"
    if point.technique == "clustering":
        return f"{params.get('n_clusters', '?')} clusters/input"
    if point.technique == "combined":
        return (
            f"bits={params.get('weight_bits')}, sparsity={params.get('sparsity')}, "
            f"clusters={params.get('clusters')}"
        )
    if point.technique == "baseline":
        return f"{params.get('weight_bits', 8)}-bit baseline"
    return ""
