"""Result analysis and presentation: text tables, ASCII plots, experiment export."""

from .ascii_plots import TECHNIQUE_MARKERS, front_plot, scatter_plot, sweep_plot
from .export import export_comparison, export_sweep
from .tables import (
    SWEEP_HEADERS,
    gains_table,
    render_csv,
    render_markdown_table,
    render_table,
    sweep_csv,
    sweep_rows,
    sweep_table,
)

__all__ = [
    "SWEEP_HEADERS",
    "TECHNIQUE_MARKERS",
    "export_comparison",
    "export_sweep",
    "front_plot",
    "gains_table",
    "render_csv",
    "render_markdown_table",
    "render_table",
    "scatter_plot",
    "sweep_csv",
    "sweep_plot",
    "sweep_rows",
    "sweep_table",
]
