"""Experiment-bundle export.

Writes everything one evaluation run produced — the sweep JSON, CSV tables,
the ASCII figure and a markdown summary — into a directory, so experiment
results can be archived or diffed between runs without re-running anything.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from ..core.pareto import area_gain_table
from ..core.results import SweepResult
from .ascii_plots import sweep_plot
from .tables import gains_table, sweep_csv, sweep_table


def export_sweep(
    sweep: SweepResult,
    output_dir: Union[str, Path],
    max_accuracy_loss: float = 0.05,
) -> Dict[str, Path]:
    """Write one sweep's artefacts into ``output_dir``.

    Produces ``<dataset>_sweep.json``, ``<dataset>_points.csv``,
    ``<dataset>_pareto.md`` and ``<dataset>_figure.txt``; returns the path of
    every file written keyed by artefact name.
    """
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    prefix = sweep.dataset

    paths: Dict[str, Path] = {}
    paths["json"] = sweep.save_json(output_dir / f"{prefix}_sweep.json")

    csv_path = output_dir / f"{prefix}_points.csv"
    csv_path.write_text(sweep_csv(sweep))
    paths["csv"] = csv_path

    markdown_path = output_dir / f"{prefix}_pareto.md"
    gains = area_gain_table(sweep, max_accuracy_loss=max_accuracy_loss)
    markdown = [
        f"# {prefix} minimization sweep",
        "",
        f"Baseline: accuracy {sweep.baseline.accuracy:.3f}, "
        f"area {sweep.baseline.area:.2f} mm^2.",
        "",
        "## Pareto points",
        "",
        sweep_table(sweep, pareto_only=True, markdown=True),
        "",
        f"## Area gain at <= {max_accuracy_loss * 100:.0f}% accuracy loss",
        "",
        gains_table({prefix: gains}, markdown=True),
        "",
    ]
    markdown_path.write_text("\n".join(markdown))
    paths["markdown"] = markdown_path

    figure_path = output_dir / f"{prefix}_figure.txt"
    figure_path.write_text(sweep_plot(sweep) + "\n")
    paths["figure"] = figure_path
    return paths


def export_comparison(
    sweeps: Dict[str, SweepResult],
    output_dir: Union[str, Path],
    paper_values: Optional[Dict[str, float]] = None,
    max_accuracy_loss: float = 0.05,
) -> Path:
    """Write a cross-dataset gain comparison (``comparison.md`` + ``.json``)."""
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    gains_by_dataset = {
        name: area_gain_table(sweep, max_accuracy_loss=max_accuracy_loss)
        for name, sweep in sweeps.items()
    }
    markdown_path = output_dir / "comparison.md"
    markdown_path.write_text(
        "# Area gain at the accuracy-loss budget, per dataset\n\n"
        + gains_table(gains_by_dataset, paper_values=paper_values, markdown=True)
        + "\n"
    )
    json_path = output_dir / "comparison.json"
    json_path.write_text(json.dumps(gains_by_dataset, indent=2))
    return markdown_path
