"""ASCII rendering of accuracy/area trade-off plots.

A text-mode stand-in for the paper's Figure 1/2 panels: design points are
scattered on a normalized-accuracy (y) vs normalized-area (x) grid, one
marker character per technique, with the baseline at (1.0, 1.0). Useful in
terminals, CI logs, and the examples — anywhere matplotlib is unavailable
(this repository is intentionally NumPy-only).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.results import DesignPoint, SweepResult

#: Marker characters per technique (baseline rendered as ``B``).
TECHNIQUE_MARKERS: Dict[str, str] = {
    "baseline": "B",
    "quantization": "q",
    "pruning": "p",
    "clustering": "c",
    "combined": "*",
}


def scatter_plot(
    points: Sequence[DesignPoint],
    baseline: DesignPoint,
    width: int = 64,
    height: int = 20,
    title: Optional[str] = None,
) -> str:
    """Render design points as an ASCII scatter plot on normalized axes.

    Args:
        points: the design points to plot (any techniques).
        baseline: normalization reference; plotted as ``B`` at (1, 1).
        width: plot width in characters (x axis: normalized area, 0..1.05).
        height: plot height in characters (y axis: normalized accuracy).
        title: optional title line.
    """
    if width < 20 or height < 8:
        raise ValueError("width must be >= 20 and height >= 8")
    if baseline.area <= 0 or baseline.accuracy <= 0:
        raise ValueError("baseline area and accuracy must be positive")

    normalized = [
        (p.area / baseline.area, p.accuracy / baseline.accuracy, p.technique) for p in points
    ]
    normalized.append((1.0, 1.0, "baseline"))

    x_max = 1.05
    y_values = [y for _, y, _ in normalized]
    y_min = min(min(y_values) - 0.02, 0.9)
    y_max = max(max(y_values) + 0.02, 1.02)

    grid = [[" " for _ in range(width)] for _ in range(height)]
    for x, y, technique in normalized:
        column = int(round(min(max(x, 0.0), x_max) / x_max * (width - 1)))
        row = int(round((y_max - min(max(y, y_min), y_max)) / (y_max - y_min) * (height - 1)))
        grid[row][column] = TECHNIQUE_MARKERS.get(technique, "?")

    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        y_value = y_max - row_index * (y_max - y_min) / (height - 1)
        lines.append(f"{y_value:5.2f} |" + "".join(row))
    lines.append("      +" + "-" * width)
    left = "0.00"
    mid = f"{x_max / 2:.2f}"
    right = f"{x_max:.2f}"
    padding = width - len(left) - len(mid) - len(right)
    lines.append(
        "       " + left + " " * (padding // 2) + mid + " " * (padding - padding // 2) + right
    )
    lines.append("       normalized area (x) vs normalized accuracy (y)   "
                 + " ".join(f"{marker}={name}" for name, marker in TECHNIQUE_MARKERS.items()))
    return "\n".join(lines)


def sweep_plot(sweep: SweepResult, width: int = 64, height: int = 20) -> str:
    """ASCII Figure-1 panel for one sweep (all techniques overlaid)."""
    title = (
        f"{sweep.dataset}: baseline acc={sweep.baseline.accuracy:.3f}, "
        f"area={sweep.baseline.area:.1f} mm^2"
    )
    return scatter_plot(sweep.points, sweep.baseline, width=width, height=height, title=title)


def front_plot(
    points: Sequence[DesignPoint],
    baseline: DesignPoint,
    width: int = 64,
    height: int = 20,
    title: Optional[str] = None,
) -> str:
    """ASCII plot restricted to the Pareto front of ``points``."""
    from ..core.pareto import pareto_front

    return scatter_plot(pareto_front(points), baseline, width=width, height=height, title=title)
