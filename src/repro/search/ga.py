"""The hardware-aware genetic algorithm (Figure 2).

An NSGA-II loop over :class:`~repro.search.genome.Genome` candidates whose
fitness is the pair (accuracy loss, normalized bespoke area) measured with
the same evaluation flow as the standalone sweeps. The initial population is
seeded with the baseline and the "pure technique" corners so the combined
front starts from — and can only improve on — the standalone fronts.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import profiling
from ..core.backend import validate_backend_name
from ..core.pareto import dominates, pareto_front
from ..core.pipeline import PreparedPipeline
from ..core.results import DesignPoint
from ..reliability.fault_injection import FAULT_MODELS
from .genome import (
    DEFAULT_BIT_CHOICES,
    DEFAULT_CLUSTER_CHOICES,
    DEFAULT_SPARSITY_CHOICES,
    Genome,
    GenomeSpace,
)
from .nsga2 import nsga2_rank, select_survivors, tournament_select
from .objectives import objectives_of
from .parallel import create_evaluator
from .settings import EvaluationSettings, resolve_evaluation_settings


def __getattr__(name: str):
    """Deprecation shim: ``evaluation_settings_for`` moved to ``repro.search.settings``."""
    if name == "evaluation_settings_for":
        from .settings import evaluation_settings_for

        warnings.warn(
            "Importing evaluation_settings_for from repro.search.ga is "
            "deprecated; import it from repro.search (or use "
            "repro.search.settings.resolve_evaluation_settings) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return evaluation_settings_for
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class GAConfig:
    """Hyper-parameters of the hardware-aware GA.

    Attributes:
        population_size: individuals per generation.
        n_generations: evolution steps.
        mutation_rate: per-gene mutation probability.
        crossover_rate: probability that an offspring is produced by
            crossover (otherwise a mutated copy of one parent).
        finetune_epochs: fine-tuning epochs inside each evaluation.
        seed: RNG seed for the evolutionary operators.
        n_workers: evaluation worker processes (``None`` inherits the
            prepared pipeline's configuration, 1 = serial, 0 = all cores).
            Parallel runs are bit-identical to serial ones.
        stacked: evaluate each generation as one stacked tensor program
            (``None`` inherits the prepared pipeline's configuration,
            default on). Stacked, per-genome and parallel evaluation all
            produce byte-identical fronts; stacked is simply faster at
            population scale.
        cache_size: LRU bound on the genome evaluation cache (``None``
            inherits the pipeline configuration; unbounded by default).
        fault_rate / n_fault_trials / fault_model: Monte-Carlo fault
            injection during evaluation (``None`` entries inherit the
            prepared pipeline's configuration; off by default). When
            enabled, every design point gains ``robust_accuracy`` /
            ``accuracy_std`` and the NSGA-II ranking, survivor selection
            and Pareto archive all optimize fault tolerance as a third
            objective. Disabled searches are byte-identical to
            pre-robustness builds.
        backend: array backend for the stacked evaluation and NSGA-II
            kernels (``None`` inherits the prepared pipeline's
            configuration, then ``REPRO_BACKEND``, then numpy — the same
            inheritance pattern as the fault knobs). The numpy backend is
            byte-identical to earlier versions; see ``docs/backends.md``.
        bit_choices / sparsity_choices / cluster_choices: gene alphabets.
    """

    population_size: int = 16
    n_generations: int = 10
    mutation_rate: float = 0.25
    crossover_rate: float = 0.9
    finetune_epochs: int = 8
    seed: int = 0
    n_workers: Optional[int] = None
    stacked: Optional[bool] = None
    cache_size: Optional[int] = None
    fault_rate: Optional[float] = None
    n_fault_trials: Optional[int] = None
    fault_model: Optional[str] = None
    backend: Optional[str] = None
    bit_choices: Sequence[int] = DEFAULT_BIT_CHOICES
    sparsity_choices: Sequence[float] = DEFAULT_SPARSITY_CHOICES
    cluster_choices: Sequence[int] = DEFAULT_CLUSTER_CHOICES

    def __post_init__(self) -> None:
        if self.population_size < 4:
            raise ValueError(f"population_size must be >= 4, got {self.population_size}")
        if self.n_generations < 1:
            raise ValueError(f"n_generations must be >= 1, got {self.n_generations}")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        if self.cache_size is not None and self.cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {self.cache_size}")
        if self.fault_rate is not None and not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError(f"fault_rate must be in [0, 1], got {self.fault_rate}")
        if self.n_fault_trials is not None and self.n_fault_trials < 0:
            raise ValueError(
                f"n_fault_trials must be >= 0, got {self.n_fault_trials}"
            )
        if self.fault_model is not None and self.fault_model not in FAULT_MODELS:
            raise ValueError(
                f"fault_model must be one of {FAULT_MODELS}, got '{self.fault_model}'"
            )
        validate_backend_name(self.backend, "GAConfig.backend")


@dataclass
class GAResult:
    """Outcome of one GA run."""

    front: List[DesignPoint]
    all_points: List[DesignPoint]
    generations: List[Dict[str, float]] = field(default_factory=list)
    n_evaluations: int = 0

    def best_area_within_loss(self, baseline: DesignPoint, max_loss: float = 0.05):
        """Best combined design within a relative accuracy-loss budget (or None)."""
        eligible = [
            p
            for p in self.front
            if 1.0 - p.accuracy / baseline.accuracy <= max_loss + 1e-12
        ]
        if not eligible:
            return None
        return min(eligible, key=lambda p: p.area)


def _nondominated(points: List[DesignPoint], robust: bool = False) -> List[DesignPoint]:
    """Accuracy/area (optionally x robustness) non-dominated subset, order preserved.

    Uses :func:`repro.core.pareto.dominates` — the same predicate
    :func:`~repro.core.pareto.pareto_front` filters with (it additionally
    dedupes and sorts; the archive keeps the raw first-seen sequence so the
    final ``pareto_front`` call behaves exactly as it would over the
    complete history).
    """
    survivors: List[DesignPoint] = []
    for candidate in points:
        if not any(
            other is not candidate and dominates(other, candidate, robust=robust)
            for other in points
        ):
            survivors.append(candidate)
    return survivors


class HardwareAwareGA:
    """NSGA-II search over combined quantization/pruning/clustering configs.

    Args:
        prepared: prepared pipeline (trained baseline, data, technology).
        config: GA hyper-parameters.
        settings: per-genome evaluation settings (defaults derived from
            ``config.finetune_epochs``).
        cache: injected evaluation-cache instance (any
            :class:`~repro.search.evaluator.EvaluationCache` subclass). The
            campaign layer passes its persistent on-disk backend here so a
            killed search resumes from the genomes already evaluated.
    """

    def __init__(
        self,
        prepared: PreparedPipeline,
        config: Optional[GAConfig] = None,
        settings: Optional[EvaluationSettings] = None,
        cache=None,
    ) -> None:
        self.prepared = prepared
        self.config = config if config is not None else GAConfig()
        self.settings = (
            settings
            if settings is not None
            else resolve_evaluation_settings(prepared.config, ga_config=self.config)
        )
        # Robustness-aware searches rank, select and archive on a third
        # objective (fault-injected accuracy loss); disabled searches run
        # the exact 2-objective code path of earlier versions.
        self.robust = self.settings.robustness_enabled
        self.space = GenomeSpace(
            n_layers=len(prepared.baseline_model.dense_layers),
            bit_choices=self.config.bit_choices,
            sparsity_choices=self.config.sparsity_choices,
            cluster_choices=self.config.cluster_choices,
        )
        n_workers = self.config.n_workers
        if n_workers is None:
            n_workers = getattr(prepared.config, "n_workers", 1)
        self.evaluator = create_evaluator(
            prepared,
            self.settings,
            seed=self.config.seed,
            n_workers=n_workers,
            # None entries inherit the prepared pipeline's configuration
            # inside the factory.
            stacked=self.config.stacked,
            cache_size=None if cache is not None else self.config.cache_size,
            cache=cache,
        )
        self._rng = np.random.default_rng(self.config.seed)

    # -- population handling ------------------------------------------------------

    def _initial_population(self) -> List[Genome]:
        population = self.space.seed_genomes()
        while len(population) < self.config.population_size:
            population.append(self.space.random_genome(self._rng))
        return population[: self.config.population_size]

    def _make_offspring(self, population: List[Genome], objectives) -> List[Genome]:
        # One NSGA-II ranking serves every tournament of the generation; the
        # RNG is consumed exactly as if each tournament re-ranked, so the
        # evolutionary trajectory is unchanged.
        keys = nsga2_rank(objectives, backend=self.settings.backend)
        offspring: List[Genome] = []
        while len(offspring) < self.config.population_size:
            parent_a = population[tournament_select(objectives, self._rng, keys=keys)]
            if self._rng.random() < self.config.crossover_rate:
                parent_b = population[
                    tournament_select(objectives, self._rng, keys=keys)
                ]
                child = self.space.crossover(parent_a, parent_b, self._rng)
            else:
                child = parent_a
            child = self.space.mutate_gene(child, self._rng, self.config.mutation_rate)
            offspring.append(child)
        return offspring

    # -- main loop ------------------------------------------------------------------

    def run(self) -> GAResult:
        """Run the evolutionary search and return the combined Pareto front."""
        try:
            return self._run()
        finally:
            self.evaluator.close()

    def _run(self) -> GAResult:
        baseline = self.prepared.baseline_point
        population = self._initial_population()
        # Incremental Pareto archive: the non-dominated subset of every
        # point evaluated so far, in first-seen order. Dominance is
        # transitive, so filtering incrementally yields exactly the points
        # ``pareto_front`` would keep from the complete history — which
        # makes the final front independent of the evaluation cache's LRU
        # bound while only ever holding front-sized state (the memory
        # ceiling ``cache_size`` exists for is preserved).
        archive_keys: set = set()
        archive: List[DesignPoint] = []

        def record(genomes: List[Genome], genome_points: List[DesignPoint]) -> None:
            fresh = []
            for genome, point in zip(genomes, genome_points):
                key = genome.key()
                if key not in archive_keys:
                    archive_keys.add(key)
                    fresh.append(point)
            if not fresh:
                return
            candidates = archive + fresh
            survivors = _nondominated(candidates, robust=self.robust)
            archive[:] = survivors

        with profiling.stage("ga_evaluate"):
            points = self.evaluator.evaluate_population(population)
        record(population, points)
        generations: List[Dict[str, float]] = []

        for generation in range(self.config.n_generations):
            objectives = [objectives_of(p, baseline, robust=self.robust) for p in points]
            with profiling.stage("ga_selection"):
                offspring = self._make_offspring(population, objectives)
            with profiling.stage("ga_evaluate"):
                offspring_points = self.evaluator.evaluate_population(offspring)
            record(offspring, offspring_points)

            combined_population = population + offspring
            combined_points = points + offspring_points
            combined_objectives = [
                objectives_of(p, baseline, robust=self.robust) for p in combined_points
            ]
            with profiling.stage("ga_sort"):
                survivors = select_survivors(
                    combined_objectives,
                    self.config.population_size,
                    backend=self.settings.backend,
                )
            population = [combined_population[i] for i in survivors]
            points = [combined_points[i] for i in survivors]

            front = pareto_front(points, robust=self.robust)
            best_gain = max(
                (baseline.area / p.area for p in front if p.area > 0), default=0.0
            )
            generations.append(
                {
                    "generation": float(generation),
                    "front_size": float(len(front)),
                    "best_area_gain": float(best_gain),
                    "best_accuracy": float(max(p.accuracy for p in points)),
                    "evaluations": float(self.evaluator.n_evaluations),
                    "cache_hits": float(self.evaluator.cache_hits),
                }
            )

        # ``pareto_front(archive)`` equals ``pareto_front`` over the complete
        # evaluation history (see the archive invariant above); with a
        # bounded cache, ``all_points`` reflects the surviving cache entries.
        return GAResult(
            front=pareto_front(archive, robust=self.robust),
            all_points=self.evaluator.all_points(),
            generations=generations,
            n_evaluations=self.evaluator.n_evaluations,
        )


def run_combined_search(
    prepared: PreparedPipeline,
    config: Optional[GAConfig] = None,
    n_workers: Optional[int] = None,
    stacked: Optional[bool] = None,
) -> GAResult:
    """Convenience wrapper used by the Figure-2 experiment and examples."""
    overrides = {}
    if n_workers is not None:
        overrides["n_workers"] = n_workers
    if stacked is not None:
        overrides["stacked"] = stacked
    if overrides:
        config = replace(config if config is not None else GAConfig(), **overrides)
    return HardwareAwareGA(prepared, config=config).run()
