"""The hardware-aware genetic algorithm (Figure 2).

An NSGA-II loop over :class:`~repro.search.genome.Genome` candidates whose
fitness is the pair (accuracy loss, normalized bespoke area) measured with
the same evaluation flow as the standalone sweeps. The initial population is
seeded with the baseline and the "pure technique" corners so the combined
front starts from — and can only improve on — the standalone fronts.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import profiling
from ..core.backend import validate_backend_name
from ..core.pareto import dominates, pareto_front
from ..core.pipeline import PreparedPipeline
from ..core.results import DesignPoint
from ..reliability.fault_injection import FAULT_MODELS
from .genome import (
    DEFAULT_BIT_CHOICES,
    DEFAULT_CLUSTER_CHOICES,
    DEFAULT_SPARSITY_CHOICES,
    Genome,
    GenomeSpace,
)
from .nsga2 import nsga2_rank, select_survivors, tournament_select
from .objectives import objectives_of
from .parallel import create_evaluator
from .settings import EvaluationSettings, resolve_evaluation_settings

# Imported as a module path (not via the repro.surrogate package) at call
# sites below; only the registry of valid names is needed eagerly.
from ..surrogate.models import SURROGATE_MODELS


def __getattr__(name: str):
    """Deprecation shim: ``evaluation_settings_for`` moved to ``repro.search.settings``."""
    if name == "evaluation_settings_for":
        from .settings import evaluation_settings_for

        warnings.warn(
            "Importing evaluation_settings_for from repro.search.ga is "
            "deprecated; import it from repro.search (or use "
            "repro.search.settings.resolve_evaluation_settings) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return evaluation_settings_for
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class GAConfig:
    """Hyper-parameters of the hardware-aware GA.

    Attributes:
        population_size: individuals per generation.
        n_generations: evolution steps.
        mutation_rate: per-gene mutation probability.
        crossover_rate: probability that an offspring is produced by
            crossover (otherwise a mutated copy of one parent).
        finetune_epochs: fine-tuning epochs inside each evaluation.
        seed: RNG seed for the evolutionary operators.
        n_workers: evaluation worker processes (``None`` inherits the
            prepared pipeline's configuration, 1 = serial, 0 = all cores).
            Parallel runs are bit-identical to serial ones.
        stacked: evaluate each generation as one stacked tensor program
            (``None`` inherits the prepared pipeline's configuration,
            default on). Stacked, per-genome and parallel evaluation all
            produce byte-identical fronts; stacked is simply faster at
            population scale.
        cache_size: LRU bound on the genome evaluation cache (``None``
            inherits the pipeline configuration; unbounded by default).
        fault_rate / n_fault_trials / fault_model: Monte-Carlo fault
            injection during evaluation (``None`` entries inherit the
            prepared pipeline's configuration; off by default). When
            enabled, every design point gains ``robust_accuracy`` /
            ``accuracy_std`` and the NSGA-II ranking, survivor selection
            and Pareto archive all optimize fault tolerance as a third
            objective. Disabled searches are byte-identical to
            pre-robustness builds.
        backend: array backend for the stacked evaluation and NSGA-II
            kernels (``None`` inherits the prepared pipeline's
            configuration, then ``REPRO_BACKEND``, then numpy — the same
            inheritance pattern as the fault knobs). The numpy backend is
            byte-identical to earlier versions; see ``docs/backends.md``.
        surrogate: surrogate model name enabling surrogate-assisted search
            (``"ridge"`` or ``"mlp"``; ``None`` inherits the pipeline
            configuration, off by default). When enabled, each generation
            breeds ``surrogate_candidates`` x ``population_size`` candidate
            offspring, ranks them with an online-trained predictor
            (:mod:`repro.surrogate`), and spends real stacked-QAT
            evaluations only on the top ``surrogate_prefilter`` fraction of
            the population size. Reported fronts contain only really
            measured points; disabled searches are byte-identical to
            pre-surrogate builds. See ``docs/surrogate.md``.
        surrogate_candidates: candidate-pool multiplier k (the surrogate
            scores k x population_size offspring per generation).
        surrogate_prefilter: fraction of the population size that gets a
            real full-budget evaluation per generation (in ``(0, 1]``).
        halving_budgets: ascending short fine-tuning budgets (epochs) for
            successive halving between the surrogate prefilter and the full
            evaluation — survivors race through cheap short-epoch real
            evaluations, and only the NSGA-II-best half promotes per rung.
            ``None``/empty disables halving.
        bit_choices / sparsity_choices / cluster_choices: gene alphabets.
    """

    population_size: int = 16
    n_generations: int = 10
    mutation_rate: float = 0.25
    crossover_rate: float = 0.9
    finetune_epochs: int = 8
    seed: int = 0
    n_workers: Optional[int] = None
    stacked: Optional[bool] = None
    cache_size: Optional[int] = None
    fault_rate: Optional[float] = None
    n_fault_trials: Optional[int] = None
    fault_model: Optional[str] = None
    backend: Optional[str] = None
    surrogate: Optional[str] = None
    surrogate_candidates: Optional[int] = None
    surrogate_prefilter: Optional[float] = None
    halving_budgets: Optional[Sequence[int]] = None
    bit_choices: Sequence[int] = DEFAULT_BIT_CHOICES
    sparsity_choices: Sequence[float] = DEFAULT_SPARSITY_CHOICES
    cluster_choices: Sequence[int] = DEFAULT_CLUSTER_CHOICES

    def __post_init__(self) -> None:
        if self.population_size < 4:
            raise ValueError(f"population_size must be >= 4, got {self.population_size}")
        if self.n_generations < 1:
            raise ValueError(f"n_generations must be >= 1, got {self.n_generations}")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        if self.cache_size is not None and self.cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {self.cache_size}")
        if self.fault_rate is not None and not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError(f"fault_rate must be in [0, 1], got {self.fault_rate}")
        if self.n_fault_trials is not None and self.n_fault_trials < 0:
            raise ValueError(
                f"n_fault_trials must be >= 0, got {self.n_fault_trials}"
            )
        if self.fault_model is not None and self.fault_model not in FAULT_MODELS:
            raise ValueError(
                f"fault_model must be one of {FAULT_MODELS}, got '{self.fault_model}'"
            )
        validate_backend_name(self.backend, "GAConfig.backend")
        if self.surrogate is not None and self.surrogate not in SURROGATE_MODELS:
            raise ValueError(
                f"surrogate must be one of {SURROGATE_MODELS}, got '{self.surrogate}'"
            )
        if self.surrogate_candidates is not None and self.surrogate_candidates < 1:
            raise ValueError(
                f"surrogate_candidates must be >= 1, got {self.surrogate_candidates}"
            )
        if self.surrogate_prefilter is not None and not 0.0 < self.surrogate_prefilter <= 1.0:
            raise ValueError(
                f"surrogate_prefilter must be in (0, 1], got {self.surrogate_prefilter}"
            )
        if self.halving_budgets is not None:
            budgets = tuple(self.halving_budgets)
            if any(int(b) != b or b < 1 for b in budgets):
                raise ValueError(
                    f"halving_budgets must be positive integers, got {budgets}"
                )
            if any(a >= b for a, b in zip(budgets, budgets[1:])):
                raise ValueError(
                    f"halving_budgets must be strictly increasing, got {budgets}"
                )


@dataclass
class GAResult:
    """Outcome of one GA run.

    ``n_evaluations`` counts real full-budget evaluations;
    ``n_partial_evaluations`` the short-budget successive-halving ones
    (zero unless surrogate-assisted halving ran).
    """

    front: List[DesignPoint]
    all_points: List[DesignPoint]
    generations: List[Dict[str, float]] = field(default_factory=list)
    n_evaluations: int = 0
    n_partial_evaluations: int = 0

    def best_area_within_loss(self, baseline: DesignPoint, max_loss: float = 0.05):
        """Best combined design within a relative accuracy-loss budget (or None)."""
        eligible = [
            p
            for p in self.front
            if 1.0 - p.accuracy / baseline.accuracy <= max_loss + 1e-12
        ]
        if not eligible:
            return None
        return min(eligible, key=lambda p: p.area)


def _nondominated(points: List[DesignPoint], robust: bool = False) -> List[DesignPoint]:
    """Accuracy/area (optionally x robustness) non-dominated subset, order preserved.

    Uses :func:`repro.core.pareto.dominates` — the same predicate
    :func:`~repro.core.pareto.pareto_front` filters with (it additionally
    dedupes and sorts; the archive keeps the raw first-seen sequence so the
    final ``pareto_front`` call behaves exactly as it would over the
    complete history).
    """
    survivors: List[DesignPoint] = []
    for candidate in points:
        if not any(
            other is not candidate and dominates(other, candidate, robust=robust)
            for other in points
        ):
            survivors.append(candidate)
    return survivors


class HardwareAwareGA:
    """NSGA-II search over combined quantization/pruning/clustering configs.

    Args:
        prepared: prepared pipeline (trained baseline, data, technology).
        config: GA hyper-parameters.
        settings: per-genome evaluation settings (defaults derived from
            ``config.finetune_epochs``).
        cache: injected evaluation-cache instance (any
            :class:`~repro.search.evaluator.EvaluationCache` subclass). The
            campaign layer passes its persistent on-disk backend here so a
            killed search resumes from the genomes already evaluated.
    """

    def __init__(
        self,
        prepared: PreparedPipeline,
        config: Optional[GAConfig] = None,
        settings: Optional[EvaluationSettings] = None,
        cache=None,
    ) -> None:
        self.prepared = prepared
        self.config = config if config is not None else GAConfig()
        self.settings = (
            settings
            if settings is not None
            else resolve_evaluation_settings(prepared.config, ga_config=self.config)
        )
        # Robustness-aware searches rank, select and archive on a third
        # objective (fault-injected accuracy loss); disabled searches run
        # the exact 2-objective code path of earlier versions.
        self.robust = self.settings.robustness_enabled
        self.space = GenomeSpace(
            n_layers=len(prepared.baseline_model.dense_layers),
            bit_choices=self.config.bit_choices,
            sparsity_choices=self.config.sparsity_choices,
            cluster_choices=self.config.cluster_choices,
        )
        n_workers = self.config.n_workers
        if n_workers is None:
            n_workers = getattr(prepared.config, "n_workers", 1)
        self.evaluator = create_evaluator(
            prepared,
            self.settings,
            seed=self.config.seed,
            n_workers=n_workers,
            # None entries inherit the prepared pipeline's configuration
            # inside the factory.
            stacked=self.config.stacked,
            cache_size=None if cache is not None else self.config.cache_size,
            cache=cache,
        )
        self._rng = np.random.default_rng(self.config.seed)

        # Surrogate knobs inherit GA config → pipeline config → default,
        # exactly like the fault/backend knobs above. The assistant and the
        # halving evaluators only exist when the feature is on, so disabled
        # searches execute the literal pre-surrogate code path.
        def _surrogate_knob(name, default):
            value = getattr(self.config, name, None)
            if value is None:
                value = getattr(prepared.config, name, None)
            return default if value is None else value

        self.surrogate_model: Optional[str] = _surrogate_knob("surrogate", None)
        self.surrogate_candidates = int(_surrogate_knob("surrogate_candidates", 4))
        self.surrogate_prefilter = float(_surrogate_knob("surrogate_prefilter", 0.25))
        self.halving_budgets = tuple(
            int(b) for b in (_surrogate_knob("halving_budgets", ()) or ())
        )
        self._rung_evaluators: Dict[int, object] = {}
        if self.surrogate_model is not None:
            from ..surrogate.assist import SurrogateAssistant

            self.assistant: Optional[SurrogateAssistant] = SurrogateAssistant(
                baseline=prepared.baseline_point,
                robust=self.robust,
                model=self.surrogate_model,
                seed=self.config.seed,
                backend=self.settings.backend,
            )
        else:
            self.assistant = None

    # -- population handling ------------------------------------------------------

    def _initial_population(self) -> List[Genome]:
        population = self.space.seed_genomes()
        while len(population) < self.config.population_size:
            population.append(self.space.random_genome(self._rng))
        return population[: self.config.population_size]

    def _make_offspring(
        self, population: List[Genome], objectives, count: Optional[int] = None
    ) -> List[Genome]:
        # One NSGA-II ranking serves every tournament of the generation; the
        # RNG is consumed exactly as if each tournament re-ranked, so the
        # evolutionary trajectory is unchanged. ``count`` (surrogate mode)
        # breeds an oversized candidate pool with the same operators.
        count = self.config.population_size if count is None else count
        keys = nsga2_rank(objectives, backend=self.settings.backend)
        offspring: List[Genome] = []
        while len(offspring) < count:
            parent_a = population[tournament_select(objectives, self._rng, keys=keys)]
            if self._rng.random() < self.config.crossover_rate:
                parent_b = population[
                    tournament_select(objectives, self._rng, keys=keys)
                ]
                child = self.space.crossover(parent_a, parent_b, self._rng)
            else:
                child = parent_a
            child = self.space.mutate_gene(child, self._rng, self.config.mutation_rate)
            offspring.append(child)
        return offspring

    # -- surrogate-assisted offspring ---------------------------------------------

    def _rung_evaluator(self, epochs: int):
        """Serial evaluator at a reduced fine-tuning budget (memoized).

        Short-budget points live in their own per-rung caches — they are
        measured under different settings than full evaluations, so they
        must never enter (or poison) the genome-keyed main cache.
        """
        if epochs not in self._rung_evaluators:
            self._rung_evaluators[epochs] = create_evaluator(
                self.prepared,
                replace(self.settings, finetune_epochs=epochs),
                seed=self.config.seed,
                n_workers=1,
                stacked=self.config.stacked,
            )
        return self._rung_evaluators[epochs]

    def _race_through_halving(self, genomes: List[Genome], target: int) -> List[Genome]:
        """Successive halving: promote the NSGA-II-best half per rung.

        Each configured budget runs cheap short-epoch *real* evaluations of
        the surviving genomes; survivors of the final rung are the ones the
        generation evaluates at full budget. Appears as the ``halving``
        stage in profile reports.
        """
        survivors = list(genomes)
        baseline = self.prepared.baseline_point
        with profiling.stage("halving"):
            for epochs in self.halving_budgets:
                if len(survivors) <= target:
                    break
                points = self._rung_evaluator(epochs).evaluate_population(survivors)
                objectives = [
                    objectives_of(p, baseline, robust=self.robust) for p in points
                ]
                keys = nsga2_rank(objectives, backend=self.settings.backend)
                order = sorted(range(len(survivors)), key=lambda i: (keys[i], i))
                keep = max(target, math.ceil(len(survivors) / 2))
                survivors = [survivors[i] for i in order[:keep]]
        return survivors[:target]

    def _surrogate_offspring(
        self, population: List[Genome], objectives, evaluated_keys: set, generation: int
    ) -> List[Genome]:
        """One generation's offspring under surrogate-assisted selection.

        Breeds an oversized candidate pool, refits the surrogate on every
        real evaluation so far, and keeps (a) every candidate already
        evaluated for real — re-reading the cache is free, so the incumbent
        archive can never be evicted by the prefilter — plus (b) the
        predicted-best novel genomes, optionally raced through successive
        halving down to the real-evaluation budget.
        """
        with profiling.stage("ga_selection"):
            candidates = self._make_offspring(
                population,
                objectives,
                count=self.config.population_size * self.surrogate_candidates,
            )
        self.assistant.refit(generation)
        budget = max(1, math.ceil(self.surrogate_prefilter * self.config.population_size))
        if self.halving_budgets:
            entry = budget * (2 ** len(self.halving_budgets))
            free, chosen = self.assistant.select(candidates, evaluated_keys, entry)
            chosen = self._race_through_halving(chosen, budget)
        else:
            free, chosen = self.assistant.select(candidates, evaluated_keys, budget)
        return free + chosen

    @property
    def n_partial_evaluations(self) -> int:
        """Short-budget evaluations spent by successive halving so far."""
        return sum(e.n_evaluations for e in self._rung_evaluators.values())

    # -- main loop ------------------------------------------------------------------

    def run(self) -> GAResult:
        """Run the evolutionary search and return the combined Pareto front."""
        try:
            return self._run()
        finally:
            self.evaluator.close()
            for evaluator in self._rung_evaluators.values():
                evaluator.close()

    def _run(self) -> GAResult:
        baseline = self.prepared.baseline_point
        population = self._initial_population()
        # Incremental Pareto archive: the non-dominated subset of every
        # point evaluated so far, in first-seen order. Dominance is
        # transitive, so filtering incrementally yields exactly the points
        # ``pareto_front`` would keep from the complete history — which
        # makes the final front independent of the evaluation cache's LRU
        # bound while only ever holding front-sized state (the memory
        # ceiling ``cache_size`` exists for is preserved).
        archive_keys: set = set()
        archive: List[DesignPoint] = []

        def record(genomes: List[Genome], genome_points: List[DesignPoint]) -> None:
            fresh = []
            for genome, point in zip(genomes, genome_points):
                key = genome.key()
                if key not in archive_keys:
                    archive_keys.add(key)
                    fresh.append(point)
            if not fresh:
                return
            candidates = archive + fresh
            survivors = _nondominated(candidates, robust=self.robust)
            archive[:] = survivors

        with profiling.stage("ga_evaluate"):
            points = self.evaluator.evaluate_population(population)
        record(population, points)
        if self.assistant is not None:
            self.assistant.observe(population, points)
        generations: List[Dict[str, float]] = []

        for generation in range(self.config.n_generations):
            objectives = [objectives_of(p, baseline, robust=self.robust) for p in points]
            if self.assistant is not None:
                offspring = self._surrogate_offspring(
                    population, objectives, archive_keys, generation
                )
            else:
                with profiling.stage("ga_selection"):
                    offspring = self._make_offspring(population, objectives)
            with profiling.stage("ga_evaluate"):
                offspring_points = self.evaluator.evaluate_population(offspring)
            record(offspring, offspring_points)
            if self.assistant is not None:
                self.assistant.observe(offspring, offspring_points)

            combined_population = population + offspring
            combined_points = points + offspring_points
            combined_objectives = [
                objectives_of(p, baseline, robust=self.robust) for p in combined_points
            ]
            with profiling.stage("ga_sort"):
                survivors = select_survivors(
                    combined_objectives,
                    self.config.population_size,
                    backend=self.settings.backend,
                )
            population = [combined_population[i] for i in survivors]
            points = [combined_points[i] for i in survivors]

            front = pareto_front(points, robust=self.robust)
            best_gain = max(
                (baseline.area / p.area for p in front if p.area > 0), default=0.0
            )
            stats = {
                "generation": float(generation),
                "front_size": float(len(front)),
                "best_area_gain": float(best_gain),
                "best_accuracy": float(max(p.accuracy for p in points)),
                "evaluations": float(self.evaluator.n_evaluations),
                "cache_hits": float(self.evaluator.cache_hits),
            }
            if self.assistant is not None:
                stats["offspring_evaluated"] = float(len(offspring))
                stats["surrogate_fits"] = float(self.assistant.n_fits)
                stats["partial_evaluations"] = float(self.n_partial_evaluations)
            generations.append(stats)

        # ``pareto_front(archive)`` equals ``pareto_front`` over the complete
        # evaluation history (see the archive invariant above); with a
        # bounded cache, ``all_points`` reflects the surviving cache entries.
        return GAResult(
            front=pareto_front(archive, robust=self.robust),
            all_points=self.evaluator.all_points(),
            generations=generations,
            n_evaluations=self.evaluator.n_evaluations,
            n_partial_evaluations=self.n_partial_evaluations,
        )


def run_combined_search(
    prepared: PreparedPipeline,
    config: Optional[GAConfig] = None,
    n_workers: Optional[int] = None,
    stacked: Optional[bool] = None,
) -> GAResult:
    """Convenience wrapper used by the Figure-2 experiment and examples."""
    overrides = {}
    if n_workers is not None:
        overrides["n_workers"] = n_workers
    if stacked is not None:
        overrides["stacked"] = stacked
    if overrides:
        config = replace(config if config is not None else GAConfig(), **overrides)
    return HardwareAwareGA(prepared, config=config).run()
