"""Exhaustive and random-sampling baselines for the combined search.

The paper's GA is compared here (ablation benchmarks) against two simpler
design-space exploration strategies over the same genome space:

* :func:`random_search` — uniform random sampling with the same evaluation
  budget as the GA.
* :func:`grid_search` — an exhaustive sweep over a reduced grid (only
  layer-uniform genomes), which is feasible because printed MLPs have very
  few layers.

Both route their evaluations through the shared engine
(:func:`repro.search.parallel.create_evaluator`), so they inherit its
caching, per-genome seeding and optional process-pool fan-out. The set of
genomes evaluated depends only on the sampling RNG, never on the worker
count, so parallel runs return the same points as serial ones.
"""

from __future__ import annotations

from itertools import product
from typing import List, Optional, Sequence

import numpy as np

from ..core.pareto import pareto_front
from ..core.pipeline import PreparedPipeline
from ..core.results import DesignPoint
from .genome import Genome, GenomeSpace
from .settings import EvaluationSettings
from .parallel import create_evaluator


def _distinct_points(
    genomes: Sequence[Genome], points: Sequence[DesignPoint]
) -> List[DesignPoint]:
    """Each distinct genome's point, in first-seen order.

    Collected from the evaluation results themselves rather than from
    ``evaluator.all_points()``, so a bounded (LRU) evaluation cache cannot
    drop evaluated points from the returned history.
    """
    seen: set = set()
    distinct: List[DesignPoint] = []
    for genome, point in zip(genomes, points):
        key = genome.key()
        if key in seen:
            continue
        seen.add(key)
        distinct.append(point)
    return distinct


def random_search(
    prepared: PreparedPipeline,
    n_evaluations: int = 64,
    settings: Optional[EvaluationSettings] = None,
    seed: int = 0,
    space: Optional[GenomeSpace] = None,
    n_workers: Optional[int] = None,
    cache=None,
) -> List[DesignPoint]:
    """Uniform random sampling of the genome space.

    Returns every evaluated design point (callers extract the front with
    :func:`repro.core.pareto.pareto_front`). ``cache`` injects a prebuilt
    evaluation cache (e.g. the campaign layer's persistent backend).
    """
    if n_evaluations < 1:
        raise ValueError(f"n_evaluations must be >= 1, got {n_evaluations}")
    space = space if space is not None else GenomeSpace(
        n_layers=len(prepared.baseline_model.dense_layers)
    )
    rng = np.random.default_rng(seed)
    with create_evaluator(
        prepared, settings, seed=seed, n_workers=n_workers, cache=cache
    ) as evaluator:
        # Draw until the budget of *distinct* genomes is reached, then batch-
        # evaluate: the drawn sequence depends only on the RNG, so the engine
        # (serial or parallel) sees exactly the genomes a serial loop would.
        batch: List[Genome] = []
        distinct: set = set()
        while len(distinct) < n_evaluations:
            genome = space.random_genome(rng)
            batch.append(genome)
            distinct.add(genome.key())
        return _distinct_points(batch, evaluator.evaluate_population(batch))


def grid_search(
    prepared: PreparedPipeline,
    bit_choices: Sequence[int] = (2, 3, 4, 6, 8),
    sparsity_choices: Sequence[float] = (0.0, 0.3, 0.6),
    cluster_choices: Sequence[int] = (0, 3, 6),
    settings: Optional[EvaluationSettings] = None,
    seed: int = 0,
    n_workers: Optional[int] = None,
    cache=None,
) -> List[DesignPoint]:
    """Exhaustive sweep over layer-uniform genomes.

    Every layer receives the same (bits, sparsity, clusters) triple, so the
    grid has ``len(bits) * len(sparsity) * len(clusters)`` points regardless
    of depth — tractable for the coarse comparison grid used by the ablation.
    """
    n_layers = len(prepared.baseline_model.dense_layers)
    genomes = [
        Genome(
            weight_bits=(int(bits),) * n_layers,
            sparsity=(float(sparsity),) * n_layers,
            clusters=(int(clusters),) * n_layers,
        )
        for bits, sparsity, clusters in product(bit_choices, sparsity_choices, cluster_choices)
    ]
    with create_evaluator(
        prepared, settings, seed=seed, n_workers=n_workers, cache=cache
    ) as evaluator:
        return _distinct_points(genomes, evaluator.evaluate_population(genomes))


def front_of(points: List[DesignPoint]) -> List[DesignPoint]:
    """Convenience re-export: Pareto front of a point list."""
    return pareto_front(points)
