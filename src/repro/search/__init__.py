"""Hardware-aware search: genome encoding, NSGA-II, GA driver, evaluation engine."""

from .evaluator import EvaluationCache, SerialEvaluator, genome_seed
from .exhaustive import front_of, grid_search, random_search
from .ga import (
    GAConfig,
    GAResult,
    HardwareAwareGA,
    run_combined_search,
)
from .genome import (
    DEFAULT_BIT_CHOICES,
    DEFAULT_CLUSTER_CHOICES,
    DEFAULT_SPARSITY_CHOICES,
    Genome,
    GenomeSpace,
)
from .nsga2 import (
    crowding_distance,
    crowding_distance_reference,
    dominates,
    fast_non_dominated_sort,
    fast_non_dominated_sort_reference,
    nsga2_rank,
    select_survivors,
    tournament_select,
)
from .objectives import (
    apply_genome,
    evaluate_genome,
    evaluate_genomes_stacked,
    objectives_of,
)
from .parallel import ParallelEvaluator, create_evaluator, resolve_workers
from .settings import (
    EvaluationSettings,
    evaluation_settings_for,
    resolve_evaluation_settings,
)

#: Backwards-compatible name for the serial engine (pre-engine API).
#: Note one semantic change versus the legacy class: evaluations now use
#: deterministic per-genome seeds derived from ``seed`` (default 0) instead
#: of passing one shared seed (default None) to every evaluation, so design
#: points differ numerically from pre-engine runs.
CachedEvaluator = SerialEvaluator

__all__ = [
    "CachedEvaluator",
    "DEFAULT_BIT_CHOICES",
    "DEFAULT_CLUSTER_CHOICES",
    "DEFAULT_SPARSITY_CHOICES",
    "EvaluationCache",
    "EvaluationSettings",
    "GAConfig",
    "GAResult",
    "Genome",
    "GenomeSpace",
    "HardwareAwareGA",
    "ParallelEvaluator",
    "SerialEvaluator",
    "apply_genome",
    "create_evaluator",
    "crowding_distance",
    "crowding_distance_reference",
    "dominates",
    "evaluate_genome",
    "evaluate_genomes_stacked",
    "evaluation_settings_for",
    "fast_non_dominated_sort",
    "fast_non_dominated_sort_reference",
    "front_of",
    "genome_seed",
    "grid_search",
    "nsga2_rank",
    "objectives_of",
    "random_search",
    "resolve_evaluation_settings",
    "resolve_workers",
    "run_combined_search",
    "select_survivors",
    "tournament_select",
]
