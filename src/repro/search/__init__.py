"""Hardware-aware search: genome encoding, NSGA-II, GA driver, exhaustive baselines."""

from .exhaustive import front_of, grid_search, random_search
from .ga import GAConfig, GAResult, HardwareAwareGA, run_combined_search
from .genome import (
    DEFAULT_BIT_CHOICES,
    DEFAULT_CLUSTER_CHOICES,
    DEFAULT_SPARSITY_CHOICES,
    Genome,
    GenomeSpace,
)
from .nsga2 import (
    crowding_distance,
    dominates,
    fast_non_dominated_sort,
    nsga2_rank,
    select_survivors,
    tournament_select,
)
from .objectives import (
    CachedEvaluator,
    EvaluationSettings,
    apply_genome,
    evaluate_genome,
    objectives_of,
)

__all__ = [
    "CachedEvaluator",
    "DEFAULT_BIT_CHOICES",
    "DEFAULT_CLUSTER_CHOICES",
    "DEFAULT_SPARSITY_CHOICES",
    "EvaluationSettings",
    "GAConfig",
    "GAResult",
    "Genome",
    "GenomeSpace",
    "HardwareAwareGA",
    "apply_genome",
    "crowding_distance",
    "dominates",
    "evaluate_genome",
    "fast_non_dominated_sort",
    "front_of",
    "grid_search",
    "nsga2_rank",
    "objectives_of",
    "random_search",
    "run_combined_search",
    "select_survivors",
    "tournament_select",
]
