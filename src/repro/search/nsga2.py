"""NSGA-II primitives: non-dominated sorting, crowding distance, selection.

The hardware-aware GA of the paper is implemented as an NSGA-II over two
minimized objectives (accuracy loss, normalized area). The functions here
are generic over objective vectors so they can be unit- and property-tested
independently of the neural/hardware evaluation.

The public entry points (:func:`fast_non_dominated_sort`,
:func:`crowding_distance`, :func:`nsga2_rank`) are vectorized: the O(MN²)
pairwise domination tests run as one broadcasted comparison and the crowding
sweep is a handful of fancy-indexed array ops, instead of nested Python
loops over solutions. The vectorized forms reproduce the historical loop
implementations *exactly* — same fronts in the same order, bit-identical
crowding distances, including duplicate-objective ties — which the property
tests in ``tests/test_search_nsga2_vectorized.py`` assert against the
``*_reference`` implementations kept below.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..core.backend import ArrayBackend, resolve_backend

#: Either a backend name, a backend instance, or None (resolve via env/default).
BackendLike = Optional[Union[str, ArrayBackend]]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when objective vector ``a`` Pareto-dominates ``b`` (minimization)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"Objective vectors differ in length: {a.shape} vs {b.shape}")
    return bool(np.all(a <= b) and np.any(a < b))


def _objective_matrix(objectives: Sequence[Sequence[float]]) -> np.ndarray:
    matrix = np.asarray(objectives, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(
            "objectives must be a 2-D structure (n_solutions x n_objectives); "
            f"got shape {matrix.shape}"
        )
    return matrix


def fast_non_dominated_sort(
    objectives: Sequence[Sequence[float]], backend: BackendLike = None
) -> List[List[int]]:
    """Sort indices into Pareto fronts (front 0 is non-dominated).

    Vectorized form of the O(MN²) algorithm of Deb et al. (2002): the full
    pairwise domination matrix is computed with one broadcasted comparison
    (O(N²M) memory — fine for the population sizes the GA uses), then the
    fronts are peeled with numpy-indexed count updates that visit solutions
    in exactly the order of the reference double loop, so the returned
    fronts — including the order of indices *within* each front — are
    identical to :func:`fast_non_dominated_sort_reference`. Domination is a
    set of exact comparisons, so every backend returns the same fronts.
    """
    n = len(objectives)
    if n == 0:
        return []
    matrix = _objective_matrix(objectives)
    if matrix.shape[0] != n:
        raise ValueError("objectives rows must align with the solution count")
    ops = resolve_backend(backend)
    # domination[i, j] == True when solution i dominates solution j.
    domination = ops.domination_matrix(matrix)
    domination_count = domination.sum(axis=0).astype(np.int64)

    fronts: List[List[int]] = []
    current = np.flatnonzero(domination_count == 0)
    # Every dominator of a solution sits in a strictly earlier front, so each
    # count hits zero exactly once — no solution can be appended twice.
    while current.size:
        fronts.append([int(i) for i in current])
        next_front: List[int] = []
        for i in current:
            dominated = np.flatnonzero(domination[i])
            if dominated.size == 0:
                continue
            domination_count[dominated] -= 1
            for j in dominated[domination_count[dominated] == 0]:
                next_front.append(int(j))
        current = np.asarray(next_front, dtype=np.int64)
    return fronts


def fast_non_dominated_sort_reference(
    objectives: Sequence[Sequence[float]],
) -> List[List[int]]:
    """The historical pure-Python O(MN²) loop (kept as the equality oracle)."""
    n = len(objectives)
    if n == 0:
        return []
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    fronts: List[List[int]] = [[]]

    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if dominates(objectives[i], objectives[j]):
                dominated_by[i].append(j)
            elif dominates(objectives[j], objectives[i]):
                domination_count[i] += 1
        if domination_count[i] == 0:
            fronts[0].append(i)

    current = 0
    while fronts[current]:
        next_front: List[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        current += 1
        fronts.append(next_front)
    fronts.pop()  # the last front is always empty
    return fronts


def crowding_distance(
    objectives: Sequence[Sequence[float]], backend: BackendLike = None
) -> np.ndarray:
    """Crowding distance of each solution within one front.

    Boundary solutions get infinite distance so they are always preferred,
    preserving the extremes of the front. Vectorized per objective: one
    stable argsort plus a fancy-indexed scatter of the interior gaps,
    accumulating objectives in the same order as the reference loop so the
    distances are bit-identical (ties included — the stable argsort sees the
    rows in the same order either way, and every backend's
    ``argsort_stable`` preserves tie order by definition).
    """
    n = len(objectives)
    if n == 0:
        return np.array([])
    matrix = _objective_matrix(objectives)
    ops = resolve_backend(backend)
    distances = np.zeros(n, dtype=np.float64)
    for m in range(matrix.shape[1]):
        order = ops.argsort_stable(matrix[:, m])
        distances[order[0]] = np.inf
        distances[order[-1]] = np.inf
        column = matrix[order, m]
        span = column[-1] - column[0]
        if span == 0.0 or n <= 2:
            continue
        # Interior solution at sorted rank r gains (value[r+1] - value[r-1]) / span.
        distances[order[1:-1]] += (column[2:] - column[:-2]) / span
    return distances


def crowding_distance_reference(objectives: Sequence[Sequence[float]]) -> np.ndarray:
    """The historical per-rank Python loop (kept as the equality oracle)."""
    n = len(objectives)
    if n == 0:
        return np.array([])
    matrix = _objective_matrix(objectives)
    distances = np.zeros(n, dtype=np.float64)
    for m in range(matrix.shape[1]):
        order = np.argsort(matrix[:, m], kind="stable")
        distances[order[0]] = np.inf
        distances[order[-1]] = np.inf
        span = matrix[order[-1], m] - matrix[order[0], m]
        if span == 0.0 or n <= 2:
            continue
        for rank in range(1, n - 1):
            previous_value = matrix[order[rank - 1], m]
            next_value = matrix[order[rank + 1], m]
            distances[order[rank]] += (next_value - previous_value) / span
    return distances


def nsga2_rank(
    objectives: Sequence[Sequence[float]], backend: BackendLike = None
) -> List[tuple]:
    """Return ``(front_index, -crowding_distance)`` sort keys per solution.

    Lower keys are better: earlier front first, then larger crowding distance.
    """
    ops = resolve_backend(backend)
    fronts = fast_non_dominated_sort(objectives, backend=ops)
    keys: List[tuple] = [(0, 0.0)] * len(objectives)
    for front_index, front in enumerate(fronts):
        front_objectives = [objectives[i] for i in front]
        distances = crowding_distance(front_objectives, backend=ops)
        for position, solution_index in enumerate(front):
            keys[solution_index] = (front_index, -float(distances[position]))
    return keys


def select_survivors(
    objectives: Sequence[Sequence[float]],
    n_survivors: int,
    backend: BackendLike = None,
) -> List[int]:
    """Environmental selection: keep the best ``n_survivors`` by NSGA-II ranking."""
    if n_survivors < 0:
        raise ValueError(f"n_survivors must be >= 0, got {n_survivors}")
    keys = nsga2_rank(objectives, backend=backend)
    order = sorted(range(len(objectives)), key=lambda i: keys[i])
    return order[:n_survivors]


def tournament_select(
    objectives: Sequence[Sequence[float]],
    rng: np.random.Generator,
    tournament_size: int = 2,
    keys: Optional[Sequence[tuple]] = None,
    backend: BackendLike = None,
) -> int:
    """Binary (or k-ary) tournament selection by NSGA-II ranking.

    Args:
        objectives: the population's objective vectors.
        rng: generator drawing the contenders (consumed identically whether
            or not ``keys`` is supplied, so precomputing keys never changes
            the evolutionary trajectory).
        tournament_size: contenders per tournament.
        keys: optional precomputed :func:`nsga2_rank` keys. Drivers that run
            many tournaments against one fixed population (the GA's offspring
            loop) should rank once and pass the keys in, instead of paying
            the full non-dominated sort per selection.
        backend: array backend for the ranking (ignored when ``keys`` is
            supplied — the caller already ranked).
    """
    if not objectives:
        raise ValueError("Cannot select from an empty population")
    if tournament_size < 1:
        raise ValueError(f"tournament_size must be >= 1, got {tournament_size}")
    if keys is None:
        keys = nsga2_rank(objectives, backend=backend)
    elif len(keys) != len(objectives):
        raise ValueError(
            f"Got {len(keys)} precomputed keys for {len(objectives)} objectives"
        )
    contenders = rng.integers(0, len(objectives), size=tournament_size)
    return int(min(contenders, key=lambda i: keys[i]))
