"""NSGA-II primitives: non-dominated sorting, crowding distance, selection.

The hardware-aware GA of the paper is implemented as an NSGA-II over two
minimized objectives (accuracy loss, normalized area). The functions here
are generic over objective vectors so they can be unit- and property-tested
independently of the neural/hardware evaluation.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when objective vector ``a`` Pareto-dominates ``b`` (minimization)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"Objective vectors differ in length: {a.shape} vs {b.shape}")
    return bool(np.all(a <= b) and np.any(a < b))


def fast_non_dominated_sort(objectives: Sequence[Sequence[float]]) -> List[List[int]]:
    """Sort indices into Pareto fronts (front 0 is non-dominated).

    Implements the O(MN²) algorithm of Deb et al. (2002). Returns a list of
    fronts, each a list of indices into ``objectives``.
    """
    n = len(objectives)
    if n == 0:
        return []
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    fronts: List[List[int]] = [[]]

    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if dominates(objectives[i], objectives[j]):
                dominated_by[i].append(j)
            elif dominates(objectives[j], objectives[i]):
                domination_count[i] += 1
        if domination_count[i] == 0:
            fronts[0].append(i)

    current = 0
    while fronts[current]:
        next_front: List[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        current += 1
        fronts.append(next_front)
    fronts.pop()  # the last front is always empty
    return fronts


def crowding_distance(objectives: Sequence[Sequence[float]]) -> np.ndarray:
    """Crowding distance of each solution within one front.

    Boundary solutions get infinite distance so they are always preferred,
    preserving the extremes of the front.
    """
    n = len(objectives)
    if n == 0:
        return np.array([])
    matrix = np.asarray(objectives, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("objectives must be a 2-D structure (n_solutions x n_objectives)")
    distances = np.zeros(n, dtype=np.float64)
    for m in range(matrix.shape[1]):
        order = np.argsort(matrix[:, m], kind="stable")
        distances[order[0]] = np.inf
        distances[order[-1]] = np.inf
        span = matrix[order[-1], m] - matrix[order[0], m]
        if span == 0.0 or n <= 2:
            continue
        for rank in range(1, n - 1):
            previous_value = matrix[order[rank - 1], m]
            next_value = matrix[order[rank + 1], m]
            distances[order[rank]] += (next_value - previous_value) / span
    return distances


def nsga2_rank(objectives: Sequence[Sequence[float]]) -> List[tuple]:
    """Return ``(front_index, -crowding_distance)`` sort keys per solution.

    Lower keys are better: earlier front first, then larger crowding distance.
    """
    fronts = fast_non_dominated_sort(objectives)
    keys: List[tuple] = [(0, 0.0)] * len(objectives)
    for front_index, front in enumerate(fronts):
        front_objectives = [objectives[i] for i in front]
        distances = crowding_distance(front_objectives)
        for position, solution_index in enumerate(front):
            keys[solution_index] = (front_index, -float(distances[position]))
    return keys


def select_survivors(
    objectives: Sequence[Sequence[float]], n_survivors: int
) -> List[int]:
    """Environmental selection: keep the best ``n_survivors`` by NSGA-II ranking."""
    if n_survivors < 0:
        raise ValueError(f"n_survivors must be >= 0, got {n_survivors}")
    keys = nsga2_rank(objectives)
    order = sorted(range(len(objectives)), key=lambda i: keys[i])
    return order[:n_survivors]


def tournament_select(
    objectives: Sequence[Sequence[float]],
    rng: np.random.Generator,
    tournament_size: int = 2,
) -> int:
    """Binary (or k-ary) tournament selection by NSGA-II ranking."""
    if not objectives:
        raise ValueError("Cannot select from an empty population")
    if tournament_size < 1:
        raise ValueError(f"tournament_size must be >= 1, got {tournament_size}")
    keys = nsga2_rank(objectives)
    contenders = rng.integers(0, len(objectives), size=tournament_size)
    return int(min(contenders, key=lambda i: keys[i]))
