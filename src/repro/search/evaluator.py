"""The evaluation engine behind every combined-search strategy.

All search drivers (the hardware-aware GA, random/grid baselines, future
distributed searches) funnel their fitness evaluations through one engine
with three responsibilities:

* **Caching** — genome evaluations are memoized by the genome's hashable
  identity, shared across generations, so re-encountered genomes cost
  nothing (:class:`EvaluationCache`).
* **Determinism** — every genome gets its own RNG seed, derived with a
  process-independent hash of the genome identity and the search's base
  seed (:func:`genome_seed`). Evaluation therefore depends only on
  ``(genome, prepared, settings, base_seed)`` — never on evaluation order
  or on which worker process ran it — which is what makes parallel and
  serial searches bit-identical.
* **Batching** — drivers submit whole populations via
  :meth:`SerialEvaluator.evaluate_population`, the natural unit for the
  process-pool fan-out in :mod:`repro.search.parallel`.

:class:`SerialEvaluator` is the in-process implementation (and the fallback
when no worker pool is available); :class:`~repro.search.parallel.ParallelEvaluator`
subclasses it to fan cache misses out over a ``ProcessPoolExecutor``.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from ..core.pipeline import PreparedPipeline
from ..core.results import DesignPoint
from .genome import Genome
from .objectives import EvaluationSettings, evaluate_genome

#: Seeds are reduced modulo 2**32 so they are valid ``numpy`` seeds everywhere.
_SEED_SPACE = 2**32


def genome_seed(base_seed: Optional[int], genome: Genome) -> Optional[int]:
    """Deterministic per-genome RNG seed.

    Derived from a SHA-256 digest of the genome identity mixed with the
    search's base seed, so it is stable across processes and Python runs
    (unlike ``hash()``, which is salted by ``PYTHONHASHSEED``). ``None``
    base seeds are passed through: the caller asked for unseeded evaluation.
    """
    if base_seed is None:
        return None
    digest = hashlib.sha256(
        f"{int(base_seed)}|{genome.key()!r}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_SPACE


class EvaluationCache:
    """Genome-keyed memo of evaluated design points.

    Insertion order is preserved (it matches the order genomes were first
    submitted for evaluation), so :meth:`points` is deterministic and
    identical between serial and parallel runs.
    """

    def __init__(self) -> None:
        self._points: Dict[Tuple, DesignPoint] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, genome: Genome) -> bool:
        return genome.key() in self._points

    def get(self, genome: Genome) -> Optional[DesignPoint]:
        """Cached point for ``genome``, or ``None``.

        Pure lookup — the evaluator maintains ``hits``/``misses`` at the
        population level, where intra-batch duplicates are visible.
        """
        return self._points.get(genome.key())

    def peek(self, genome: Genome) -> DesignPoint:
        """Cached point without touching the hit/miss counters (KeyError if absent)."""
        return self._points[genome.key()]

    def put(self, genome: Genome, point: DesignPoint) -> None:
        self._points[genome.key()] = point

    def points(self) -> List[DesignPoint]:
        """Every distinct design point evaluated so far, in first-seen order."""
        return list(self._points.values())


class SerialEvaluator:
    """In-process evaluation engine: cache + per-genome seeding, no fan-out.

    Drop-in compatible with the legacy ``CachedEvaluator`` interface
    (callable per genome, ``n_evaluations``, ``cache_size``, ``all_points()``)
    while adding population-level evaluation.

    Args:
        prepared: prepared pipeline (trained baseline, data, technology).
        settings: per-genome evaluation settings.
        seed: base seed; each genome's evaluation seed is derived from it
            via :func:`genome_seed`.
    """

    def __init__(
        self,
        prepared: PreparedPipeline,
        settings: Optional[EvaluationSettings] = None,
        seed: Optional[int] = 0,
    ) -> None:
        self.prepared = prepared
        self.settings = settings if settings is not None else EvaluationSettings()
        self.seed = seed
        self.cache = EvaluationCache()
        self.n_evaluations = 0

    # -- engine interface --------------------------------------------------------

    def evaluate_population(self, genomes: List[Genome]) -> List[DesignPoint]:
        """Evaluate a population, returning points aligned with ``genomes``.

        Duplicates within the population and genomes already seen in earlier
        generations are served from the cache; only distinct unseen genomes
        are evaluated. ``cache.misses`` counts those fresh evaluations;
        ``cache.hits`` counts every other request in the batch (including
        intra-batch duplicates of a new genome).
        """
        missing = self._cache_misses(genomes)
        self.cache.misses += len(missing)
        self.cache.hits += len(genomes) - len(missing)
        if missing:
            evaluated = self._evaluate_missing(missing)
            for genome, point in zip(missing, evaluated):
                self.cache.put(genome, point)
            self.n_evaluations += len(missing)
        return [self.cache.peek(genome) for genome in genomes]

    def evaluate(self, genome: Genome) -> DesignPoint:
        """Evaluate a single genome through the cache."""
        return self.evaluate_population([genome])[0]

    __call__ = evaluate

    def close(self) -> None:
        """Release any evaluation resources (no-op for the serial engine)."""

    def __enter__(self) -> "SerialEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ---------------------------------------------------------------

    def _cache_misses(self, genomes: List[Genome]) -> List[Genome]:
        """Distinct genomes of the batch that are not cached, in first-seen order."""
        missing: List[Genome] = []
        seen: set = set()
        for genome in genomes:
            key = genome.key()
            if key in seen or genome in self.cache:
                continue
            missing.append(genome)
            seen.add(key)
        return missing

    def _evaluate_missing(self, genomes: List[Genome]) -> List[DesignPoint]:
        """Evaluate uncached genomes in-process. Overridden by the parallel engine."""
        return [
            evaluate_genome(
                genome, self.prepared, self.settings, seed=genome_seed(self.seed, genome)
            )
            for genome in genomes
        ]

    # -- introspection -----------------------------------------------------------

    @property
    def cache_size(self) -> int:
        return len(self.cache)

    @property
    def cache_hits(self) -> int:
        return self.cache.hits

    def all_points(self) -> List[DesignPoint]:
        """Every distinct design point evaluated so far."""
        return self.cache.points()
