"""The evaluation engine behind every combined-search strategy.

All search drivers (the hardware-aware GA, random/grid baselines, future
distributed searches) funnel their fitness evaluations through one engine
with three responsibilities:

* **Caching** — genome evaluations are memoized by the genome's hashable
  identity, shared across generations, so re-encountered genomes cost
  nothing (:class:`EvaluationCache`). Long-running searches can bound the
  memo with ``cache_size`` (LRU eviction).
* **Determinism** — every genome gets its own RNG seed, derived with a
  process-independent hash of the genome identity and the search's base
  seed (:func:`genome_seed`). Evaluation therefore depends only on
  ``(genome, prepared, settings, base_seed)`` — never on evaluation order
  or on which worker process ran it — which is what makes parallel and
  serial searches bit-identical.
* **Batching** — drivers submit whole populations via
  :meth:`SerialEvaluator.evaluate_population`, the natural unit both for
  the process-pool fan-out in :mod:`repro.search.parallel` and for the
  stacked tensor path: with ``stacked=True`` the engine routes each
  batch of cache misses through
  :func:`~repro.search.objectives.evaluate_genomes_stacked`, which trains
  and scores the whole sub-population as ``(G, ...)`` stacked arrays —
  bit-identical to the per-genome loop, several times faster at
  population scale.

:class:`SerialEvaluator` is the in-process implementation (and the fallback
when no worker pool is available); :class:`~repro.search.parallel.ParallelEvaluator`
subclasses it to fan cache misses out over a ``ProcessPoolExecutor``.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..core.pipeline import PreparedPipeline
from ..core.results import DesignPoint
from .genome import Genome
from .objectives import evaluate_genome, evaluate_genomes_stacked
from .settings import EvaluationSettings

#: Seeds are reduced modulo 2**32 so they are valid ``numpy`` seeds everywhere.
_SEED_SPACE = 2**32


def genome_seed(base_seed: Optional[int], genome: Genome) -> Optional[int]:
    """Deterministic per-genome RNG seed.

    Derived from a SHA-256 digest of the genome identity mixed with the
    search's base seed, so it is stable across processes and Python runs
    (unlike ``hash()``, which is salted by ``PYTHONHASHSEED``). ``None``
    base seeds are passed through: the caller asked for unseeded evaluation.
    """
    if base_seed is None:
        return None
    digest = hashlib.sha256(
        f"{int(base_seed)}|{genome.key()!r}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_SPACE


class EvaluationCache:
    """Genome-keyed memo of evaluated design points.

    Unbounded by default, with insertion order preserved (it matches the
    order genomes were first submitted for evaluation), so :meth:`points`
    is deterministic and identical between serial and parallel runs.

    Args:
        max_entries: optional LRU bound. When set, a lookup refreshes the
            entry's recency and inserting beyond the bound evicts the least
            recently used genome (counted in :attr:`evictions`). Evicted
            genomes disappear from :meth:`points` and will be re-evaluated
            if encountered again — re-evaluation is deterministic, so search
            results are unchanged; only wall-clock and the all-points
            bookkeeping are affected.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._points: "OrderedDict[Tuple, DesignPoint]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, genome: Genome) -> bool:
        return genome.key() in self._points

    def get(self, genome: Genome) -> Optional[DesignPoint]:
        """Cached point for ``genome``, or ``None`` (refreshes LRU recency).

        Pure lookup as far as the hit/miss statistics go — the evaluator
        maintains ``hits``/``misses`` at the population level, where
        intra-batch duplicates are visible.
        """
        key = genome.key()
        point = self._points.get(key)
        if point is not None and self.max_entries is not None:
            self._points.move_to_end(key)
        return point

    def peek(self, genome: Genome) -> DesignPoint:
        """Cached point without touching recency or counters (KeyError if absent)."""
        return self._points[genome.key()]

    def put(self, genome: Genome, point: DesignPoint) -> None:
        """Insert (or refresh) a genome's design point, evicting LRU overflow."""
        key = genome.key()
        self._points[key] = point
        if self.max_entries is not None:
            self._points.move_to_end(key)
            while len(self._points) > self.max_entries:
                self._points.popitem(last=False)
                self.evictions += 1

    def points(self) -> List[DesignPoint]:
        """Every design point currently held, in first-seen (or LRU) order."""
        return list(self._points.values())


class SerialEvaluator:
    """In-process evaluation engine: cache + per-genome seeding, no fan-out.

    Drop-in compatible with the legacy ``CachedEvaluator`` interface
    (callable per genome, ``n_evaluations``, ``cache_size``, ``all_points()``)
    while adding population-level evaluation.

    Args:
        prepared: prepared pipeline (trained baseline, data, technology).
        settings: per-genome evaluation settings.
        seed: base seed; each genome's evaluation seed is derived from it
            via :func:`genome_seed`.
        stacked: route batches of cache misses through the stacked
            population path (:func:`~repro.search.objectives.evaluate_genomes_stacked`)
            instead of a per-genome loop. Bit-identical results either way;
            the stacked path amortizes numpy dispatch across the population.
        cache_size: optional LRU bound on the evaluation cache.
        cache: use this cache instance instead of constructing a fresh
            in-memory one. Any :class:`EvaluationCache` subclass works — the
            campaign layer injects a persistent on-disk backend
            (:class:`repro.campaign.PersistentEvaluationCache`) here so
            evaluations survive process death and are shared across jobs.
            Mutually exclusive with ``cache_size`` (bound the injected cache
            at construction instead).
    """

    def __init__(
        self,
        prepared: PreparedPipeline,
        settings: Optional[EvaluationSettings] = None,
        seed: Optional[int] = 0,
        stacked: bool = False,
        cache_size: Optional[int] = None,
        cache: Optional[EvaluationCache] = None,
    ) -> None:
        if cache is not None and cache_size is not None:
            raise ValueError(
                "Pass either an injected cache or cache_size, not both "
                "(bound an injected cache when constructing it)"
            )
        self.prepared = prepared
        self.settings = settings if settings is not None else EvaluationSettings()
        self.seed = seed
        self.stacked = bool(stacked)
        self.cache = cache if cache is not None else EvaluationCache(max_entries=cache_size)
        self.n_evaluations = 0

    # -- engine interface --------------------------------------------------------

    def evaluate_population(self, genomes: List[Genome]) -> List[DesignPoint]:
        """Evaluate a population, returning points aligned with ``genomes``.

        Duplicates within the population and genomes already seen in earlier
        generations are served from the cache; only distinct unseen genomes
        are evaluated. ``cache.misses`` counts those fresh evaluations;
        ``cache.hits`` counts every other request in the batch (including
        intra-batch duplicates of a new genome).
        """
        missing = self._cache_misses(genomes)
        self.cache.misses += len(missing)
        self.cache.hits += len(genomes) - len(missing)
        # Resolve cached points before inserting the fresh ones: with a
        # bounded cache the inserts below may evict genomes this very batch
        # still needs.
        resolved: Dict[Tuple, DesignPoint] = {}
        missing_keys = {genome.key() for genome in missing}
        for genome in genomes:
            key = genome.key()
            if key in missing_keys or key in resolved:
                continue
            point = self.cache.get(genome)  # refreshes LRU recency on hits
            if point is None:  # pragma: no cover - _cache_misses guarantees presence
                raise KeyError(key)
            resolved[key] = point
        if missing:
            evaluated = self._evaluate_missing(missing)
            for genome, point in zip(missing, evaluated):
                self.cache.put(genome, point)
                resolved[genome.key()] = point
            self.n_evaluations += len(missing)
        return [resolved[genome.key()] for genome in genomes]

    def evaluate(self, genome: Genome) -> DesignPoint:
        """Evaluate a single genome through the cache."""
        return self.evaluate_population([genome])[0]

    __call__ = evaluate

    def close(self) -> None:
        """Release any evaluation resources (no-op for the serial engine)."""

    def __enter__(self) -> "SerialEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ---------------------------------------------------------------

    def _cache_misses(self, genomes: List[Genome]) -> List[Genome]:
        """Distinct genomes of the batch that are not cached, in first-seen order."""
        missing: List[Genome] = []
        seen: set = set()
        for genome in genomes:
            key = genome.key()
            if key in seen or genome in self.cache:
                continue
            missing.append(genome)
            seen.add(key)
        return missing

    def _evaluate_missing(self, genomes: List[Genome]) -> List[DesignPoint]:
        """Evaluate uncached genomes in-process. Overridden by the parallel engine."""
        seeds = [genome_seed(self.seed, genome) for genome in genomes]
        if self.stacked and len(genomes) > 1:
            return evaluate_genomes_stacked(genomes, self.prepared, self.settings, seeds)
        return [
            evaluate_genome(genome, self.prepared, self.settings, seed=seed)
            for genome, seed in zip(genomes, seeds)
        ]

    # -- introspection -----------------------------------------------------------

    @property
    def cache_size(self) -> int:
        """Number of design points currently held by the evaluation cache."""
        return len(self.cache)

    @property
    def cache_hits(self) -> int:
        """Population-level cache hits (includes intra-batch duplicates)."""
        return self.cache.hits

    def all_points(self) -> List[DesignPoint]:
        """Every distinct design point still cached (all of them when unbounded)."""
        return self.cache.points()
