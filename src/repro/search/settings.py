"""Evaluation settings and the single resolver that produces them.

Evaluation knobs historically arrived through three doors — direct
:class:`EvaluationSettings` construction, ``None``-inheriting
:class:`~repro.search.ga.GAConfig` fields, and campaign-spec entries — each
with its own resolution code. This module is now the one place those paths
meet: :func:`resolve_evaluation_settings` implements the inheritance rules
(GA knob → pipeline knob → default, with the array backend additionally
falling back to the ``REPRO_BACKEND`` environment variable), and every
caller — :class:`~repro.search.ga.HardwareAwareGA`, the campaign runner,
the CLI — goes through it, so the knobs can never resolve differently
between subsystems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.backend import default_backend_name, validate_backend_name
from ..reliability.fault_injection import FAULT_MODELS, FaultInjectionConfig


@dataclass(frozen=True)
class EvaluationSettings:
    """Knobs of the per-genome evaluation.

    Attributes:
        finetune_epochs: joint fine-tuning epochs (0 = no retraining, pure
            post-training evaluation — used by the GA ablation).
        finetune_learning_rate: learning rate of the joint fine-tuning pass.
        per_position_clustering: cluster per input position (paper scheme).
        simulate_accuracy: measure test accuracy on the bit-accurate
            fixed-point simulator (batched integer datapath) instead of the
            float software model, so the search optimizes the deployed
            circuit's accuracy rather than its floating-point proxy.
        fault_rate: fraction of hard-wired connections hit per Monte-Carlo
            fault-injection trial. With ``n_fault_trials`` > 0 every design
            point gains ``robust_accuracy``/``accuracy_std``, measured on
            the deployed circuit's integer datapath with per-(genome, trial)
            SHA-256-derived fault patterns. Default 0.0 — robustness off,
            evaluation byte-identical to earlier versions. These settings
            are part of the campaign cache's evaluation-context key, so
            robust and non-robust evaluations can never collide in a shared
            persistent cache.
        n_fault_trials: Monte-Carlo trials per design point (0 = off).
        fault_model: defect mechanism injected (one of
            :data:`repro.reliability.FAULT_MODELS`).
        backend: array backend for the stacked/batched evaluation paths
            (``None`` = resolve via ``REPRO_BACKEND`` then numpy at kernel
            entry; :func:`resolve_evaluation_settings` materializes the
            concrete name so cache context keys capture it). The numpy
            backend carries every bit-identity guarantee; see
            ``docs/backends.md``.
    """

    finetune_epochs: int = 8
    finetune_learning_rate: float = 0.003
    per_position_clustering: bool = True
    simulate_accuracy: bool = False
    fault_rate: float = 0.0
    n_fault_trials: int = 0
    fault_model: str = "open"
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError(f"fault_rate must be in [0, 1], got {self.fault_rate}")
        if self.n_fault_trials < 0:
            raise ValueError(f"n_fault_trials must be >= 0, got {self.n_fault_trials}")
        if self.fault_model not in FAULT_MODELS:
            raise ValueError(
                f"fault_model must be one of {FAULT_MODELS}, got '{self.fault_model}'"
            )
        validate_backend_name(self.backend, "EvaluationSettings.backend")

    @property
    def robustness_enabled(self) -> bool:
        """True when evaluations measure Monte-Carlo fault tolerance."""
        return self.fault_rate > 0.0 and self.n_fault_trials > 0

    def fault_config(self, seed: Optional[int]) -> FaultInjectionConfig:
        """The per-design fault campaign these settings describe.

        ``seed`` is the design's derived evaluation seed — each (genome,
        trial) pair then gets its own SHA-256-derived fault pattern via
        :func:`repro.reliability.fault_trial_seed`. ``weight_bits`` is
        irrelevant here (the simulator's own formats define the level grid).
        """
        return FaultInjectionConfig(
            fault_rate=self.fault_rate,
            fault_model=self.fault_model,
            n_trials=self.n_fault_trials,
            seed=0 if seed is None else int(seed),
        )


def resolve_evaluation_settings(
    pipeline_config=None, ga_config=None
) -> EvaluationSettings:
    """Resolve every evaluation knob through the one documented precedence.

    Each knob takes the first non-``None`` value of: the GA config field,
    the pipeline config field, the :class:`EvaluationSettings` default. The
    ``backend`` knob has one extra rung — when both configs leave it
    ``None`` it materializes to :func:`~repro.core.backend.default_backend_name`
    (the ``REPRO_BACKEND`` environment variable, then ``"numpy"``) so the
    resolved settings name a concrete backend and the campaign cache's
    evaluation-context key can never conflate runs under different
    ``REPRO_BACKEND`` environments.

    Either config may be ``None``: ``resolve_evaluation_settings()`` yields
    the environment-resolved defaults, ``resolve_evaluation_settings(config)``
    is the non-GA campaign path, and passing both is the GA path (the same
    inheritance the ``stacked``/``cache_size``/``n_workers`` knobs use).
    """

    def _knob(name, default):
        ga_value = getattr(ga_config, name, None) if ga_config is not None else None
        if ga_value is not None:
            return ga_value
        pipeline_value = (
            getattr(pipeline_config, name, None) if pipeline_config is not None else None
        )
        return pipeline_value if pipeline_value is not None else default

    return EvaluationSettings(
        finetune_epochs=_knob("finetune_epochs", 8),
        fault_rate=_knob("fault_rate", 0.0),
        n_fault_trials=_knob("n_fault_trials", 0),
        fault_model=_knob("fault_model", "open"),
        backend=_knob("backend", default_backend_name()),
    )


def evaluation_settings_for(config, pipeline_config) -> EvaluationSettings:
    """Default :class:`EvaluationSettings` of a GA run.

    Compatibility spelling of
    ``resolve_evaluation_settings(pipeline_config, ga_config=config)`` —
    the historical entry point shared by :class:`~repro.search.ga.HardwareAwareGA`
    and the campaign runner. New code should call the resolver directly.
    """
    return resolve_evaluation_settings(pipeline_config, ga_config=config)


__all__ = [
    "EvaluationSettings",
    "evaluation_settings_for",
    "resolve_evaluation_settings",
]
