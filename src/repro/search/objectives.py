"""Objective evaluation: genome → minimized classifier → (accuracy, area).

Evaluating one genome applies all three techniques to a clone of the trained
baseline in the order pruning → clustering → quantization-aware fine-tuning
(a single joint fine-tuning pass recovers accuracy for all of them at once),
then synthesizes the bespoke circuit at the genome's bit-widths. The result
is returned as a ``combined`` :class:`~repro.core.results.DesignPoint`.

These are pure functions of ``(genome, prepared, settings, seed)``; caching
and parallel fan-out live in :mod:`repro.search.evaluator` and
:mod:`repro.search.parallel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..bespoke.circuit import BespokeConfig
from ..bespoke.simulator import FixedPointSimulator
from ..bespoke.synthesis import synthesize_cost_only
from ..clustering.weight_clustering import cluster_model_weights, reproject_clusters
from ..core import profiling
from ..core.pipeline import PreparedPipeline
from ..core.results import DesignPoint
from ..nn.trainer import finetune
from ..pruning.magnitude import prune_by_magnitude
from ..quantization.qat import attach_quantizers
from .genome import Genome


@dataclass(frozen=True)
class EvaluationSettings:
    """Knobs of the per-genome evaluation.

    Attributes:
        finetune_epochs: joint fine-tuning epochs (0 = no retraining, pure
            post-training evaluation — used by the GA ablation).
        finetune_learning_rate: learning rate of the joint fine-tuning pass.
        per_position_clustering: cluster per input position (paper scheme).
        simulate_accuracy: measure test accuracy on the bit-accurate
            fixed-point simulator (batched integer datapath) instead of the
            float software model, so the search optimizes the deployed
            circuit's accuracy rather than its floating-point proxy.
    """

    finetune_epochs: int = 8
    finetune_learning_rate: float = 0.003
    per_position_clustering: bool = True
    simulate_accuracy: bool = False


def apply_genome(
    genome: Genome,
    prepared: PreparedPipeline,
    settings: Optional[EvaluationSettings] = None,
    seed: Optional[int] = None,
):
    """Apply a genome's minimizations to a clone of the prepared baseline.

    Returns the minimized model (the prepared baseline itself is untouched).
    """
    settings = settings if settings is not None else EvaluationSettings()
    model = prepared.baseline_model.clone()
    dense_layers = model.dense_layers
    if genome.n_layers != len(dense_layers):
        raise ValueError(
            f"Genome covers {genome.n_layers} layers but the model has {len(dense_layers)}"
        )
    data = prepared.data

    # 1. Pruning (masks stay in place for the rest of the flow).
    if any(s > 0.0 for s in genome.sparsity):
        with profiling.stage("prune"):
            prune_by_magnitude(model, list(genome.sparsity), global_ranking=False)

    # 2. Weight clustering on the surviving weights.
    clustering_result = None
    if any(c > 0 for c in genome.clusters):
        budgets = [c if c > 0 else 10**6 for c in genome.clusters]
        with profiling.stage("cluster"):
            clustering_result = cluster_model_weights(
                model,
                budgets,
                seed=seed,
                per_position=settings.per_position_clustering,
            )

    # 3. Quantization-aware joint fine-tuning.
    attach_quantizers(model, list(genome.weight_bits))
    if settings.finetune_epochs > 0:
        with profiling.stage("finetune"):
            finetune(
                model,
                data.train.features,
                data.train.labels,
                data.validation.features,
                data.validation.labels,
                epochs=settings.finetune_epochs,
                learning_rate=settings.finetune_learning_rate,
                seed=seed,
            )
        if clustering_result is not None:
            reproject_clusters(model, clustering_result)
    return model


def evaluate_genome(
    genome: Genome,
    prepared: PreparedPipeline,
    settings: Optional[EvaluationSettings] = None,
    seed: Optional[int] = None,
) -> DesignPoint:
    """Full evaluation of one genome: minimized accuracy and synthesized area.

    The synthesis report comes from the cost-only path
    (:func:`~repro.bespoke.synthesize_cost_only`): the search only consumes
    aggregate area/power/delay, and the cost-only report is bit-identical to
    the full netlist's. Ask :func:`~repro.bespoke.build_bespoke_circuit` for
    the netlist when a winning genome needs inspection or Verilog export.
    """
    settings = settings if settings is not None else EvaluationSettings()
    with profiling.stage("evaluate_genome"):
        model = apply_genome(genome, prepared, settings, seed=seed)
        data = prepared.data
        bespoke_config = BespokeConfig(
            input_bits=prepared.config.input_bits,
            weight_bits=list(genome.weight_bits),
        )
        with profiling.stage("accuracy"):
            if settings.simulate_accuracy:
                simulator = FixedPointSimulator(model, bespoke_config)
                accuracy = simulator.evaluate_accuracy(
                    data.test.features, data.test.labels
                )
            else:
                accuracy = model.evaluate_accuracy(data.test.features, data.test.labels)
        with profiling.stage("synthesize"):
            report = synthesize_cost_only(
                model,
                config=bespoke_config,
                tech=prepared.technology,
                name=f"{prepared.metadata.get('dataset', 'mlp')}_combined",
            )
    return DesignPoint(
        technique="combined",
        accuracy=float(accuracy),
        area=report.area,
        power=report.power,
        delay=report.delay,
        parameters=genome.as_dict(),
        report=report,
    )


def objectives_of(point: DesignPoint, baseline: DesignPoint) -> Tuple[float, float]:
    """The two minimized objectives: (relative accuracy loss, normalized area)."""
    if baseline.accuracy <= 0 or baseline.area <= 0:
        raise ValueError("Baseline accuracy and area must be positive")
    loss = max(1.0 - point.accuracy / baseline.accuracy, 0.0)
    normalized_area = point.area / baseline.area
    return (loss, normalized_area)
