"""Objective evaluation: genome → minimized classifier → (accuracy, area).

Evaluating one genome applies all three techniques to a clone of the trained
baseline in the order pruning → clustering → quantization-aware fine-tuning
(a single joint fine-tuning pass recovers accuracy for all of them at once),
then synthesizes the bespoke circuit at the genome's bit-widths. The result
is returned as a ``combined`` :class:`~repro.core.results.DesignPoint`.

These are pure functions of ``(genome, prepared, settings, seed)``; caching
and parallel fan-out live in :mod:`repro.search.evaluator` and
:mod:`repro.search.parallel`. :func:`evaluate_genomes_stacked` evaluates a
whole population at once through the stacked tensor path — byte-identical
to looping :func:`evaluate_genome`, several times faster at population
scale.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..bespoke.circuit import BespokeConfig
from ..bespoke.simulator import FixedPointSimulator, population_accuracy
from ..bespoke.synthesis import synthesize_cost_only
from ..clustering.weight_clustering import cluster_model_weights, reproject_clusters
from ..core import profiling
from ..core.pipeline import PreparedPipeline
from ..core.results import DesignPoint
from ..nn.stacked import finetune_stacked, predict_stacked, supports_stacking
from ..nn.trainer import finetune
from ..pruning.magnitude import prune_by_magnitude
from ..quantization.qat import attach_quantizers
from ..reliability.monte_carlo import (
    monte_carlo_fault_injection,
    monte_carlo_population,
)
from .genome import Genome
from .settings import EvaluationSettings as _EvaluationSettings


def __getattr__(name: str):
    """Deprecation shim: ``EvaluationSettings`` moved to ``repro.search.settings``."""
    if name == "EvaluationSettings":
        warnings.warn(
            "Importing EvaluationSettings from repro.search.objectives is "
            "deprecated; import it from repro.search (or "
            "repro.search.settings) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return _EvaluationSettings
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _apply_minimizations(
    genome: Genome,
    prepared: PreparedPipeline,
    settings: _EvaluationSettings,
    seed: Optional[int],
):
    """Prune, cluster and attach quantizers on a fresh baseline clone.

    The per-genome preamble shared by the serial and stacked evaluation
    paths — everything of :func:`apply_genome` except the fine-tuning pass.
    Returns ``(model, clustering_result)``.
    """
    model = prepared.baseline_model.clone()
    dense_layers = model.dense_layers
    if genome.n_layers != len(dense_layers):
        raise ValueError(
            f"Genome covers {genome.n_layers} layers but the model has {len(dense_layers)}"
        )

    # 1. Pruning (masks stay in place for the rest of the flow).
    if any(s > 0.0 for s in genome.sparsity):
        with profiling.stage("prune"):
            prune_by_magnitude(model, list(genome.sparsity), global_ranking=False)

    # 2. Weight clustering on the surviving weights.
    clustering_result = None
    if any(c > 0 for c in genome.clusters):
        budgets = [c if c > 0 else 10**6 for c in genome.clusters]
        with profiling.stage("cluster"):
            clustering_result = cluster_model_weights(
                model,
                budgets,
                seed=seed,
                per_position=settings.per_position_clustering,
            )

    # 3. Fake-quantizers for the QAT fine-tuning and the bespoke mapping.
    attach_quantizers(model, list(genome.weight_bits))
    return model, clustering_result


def apply_genome(
    genome: Genome,
    prepared: PreparedPipeline,
    settings: Optional[_EvaluationSettings] = None,
    seed: Optional[int] = None,
):
    """Apply a genome's minimizations to a clone of the prepared baseline.

    Returns the minimized model (the prepared baseline itself is untouched).
    """
    settings = settings if settings is not None else _EvaluationSettings()
    model, clustering_result = _apply_minimizations(genome, prepared, settings, seed)
    _finetune_model(prepared, settings, model, clustering_result, seed)
    return model


def evaluate_genome(
    genome: Genome,
    prepared: PreparedPipeline,
    settings: Optional[_EvaluationSettings] = None,
    seed: Optional[int] = None,
) -> DesignPoint:
    """Full evaluation of one genome: minimized accuracy and synthesized area.

    The synthesis report comes from the cost-only path
    (:func:`~repro.bespoke.synthesize_cost_only`): the search only consumes
    aggregate area/power/delay, and the cost-only report is bit-identical to
    the full netlist's. Ask :func:`~repro.bespoke.build_bespoke_circuit` for
    the netlist when a winning genome needs inspection or Verilog export.
    """
    settings = settings if settings is not None else _EvaluationSettings()
    with profiling.stage("evaluate_genome"):
        model = apply_genome(genome, prepared, settings, seed=seed)
        point = _score_model(genome, prepared, settings, model, seed=seed)
    return point


def _finetune_model(
    prepared: PreparedPipeline,
    settings: _EvaluationSettings,
    model,
    clustering_result,
    seed: Optional[int],
) -> None:
    """The fine-tuning tail of :func:`apply_genome` on an already-built model."""
    data = prepared.data
    if settings.finetune_epochs > 0:
        with profiling.stage("finetune"):
            finetune(
                model,
                data.train.features,
                data.train.labels,
                data.validation.features,
                data.validation.labels,
                epochs=settings.finetune_epochs,
                learning_rate=settings.finetune_learning_rate,
                seed=seed,
            )
        if clustering_result is not None:
            reproject_clusters(model, clustering_result)


def _score_model(
    genome: Genome,
    prepared: PreparedPipeline,
    settings: _EvaluationSettings,
    model,
    seed: Optional[int] = None,
) -> DesignPoint:
    """Accuracy measurement + cost-only synthesis of one minimized model."""
    data = prepared.data
    bespoke_config = _bespoke_config(genome, prepared)
    simulator = None
    if settings.simulate_accuracy or settings.robustness_enabled:
        simulator = FixedPointSimulator(model, bespoke_config)
    with profiling.stage("accuracy"):
        if settings.simulate_accuracy:
            accuracy = simulator.evaluate_accuracy(
                data.test.features, data.test.labels
            )
        else:
            accuracy = model.evaluate_accuracy(data.test.features, data.test.labels)
    robust_accuracy = accuracy_std = None
    if settings.robustness_enabled:
        with profiling.stage("robustness"):
            fault_result = monte_carlo_fault_injection(
                simulator,
                data.test.features,
                data.test.labels,
                settings.fault_config(seed),
                backend=settings.backend,
            )
        robust_accuracy = fault_result.mean_accuracy
        accuracy_std = fault_result.accuracy_std
    return _synthesize_point(
        genome,
        prepared,
        model,
        bespoke_config,
        accuracy,
        robust_accuracy=robust_accuracy,
        accuracy_std=accuracy_std,
    )


def _bespoke_config(genome: Genome, prepared: PreparedPipeline) -> BespokeConfig:
    return BespokeConfig(
        input_bits=prepared.config.input_bits,
        weight_bits=list(genome.weight_bits),
    )


def _synthesize_point(
    genome: Genome,
    prepared: PreparedPipeline,
    model,
    bespoke_config: BespokeConfig,
    accuracy: float,
    robust_accuracy: Optional[float] = None,
    accuracy_std: Optional[float] = None,
) -> DesignPoint:
    """Cost-only synthesis + design-point assembly shared by both paths."""
    with profiling.stage("synthesize"):
        report = synthesize_cost_only(
            model,
            config=bespoke_config,
            tech=prepared.technology,
            name=f"{prepared.metadata.get('dataset', 'mlp')}_combined",
        )
    return DesignPoint(
        technique="combined",
        accuracy=float(accuracy),
        area=report.area,
        power=report.power,
        delay=report.delay,
        parameters=genome.as_dict(),
        report=report,
        robust_accuracy=robust_accuracy,
        accuracy_std=accuracy_std,
    )


def evaluate_genomes_stacked(
    genomes: Sequence[Genome],
    prepared: PreparedPipeline,
    settings: Optional[_EvaluationSettings] = None,
    seeds: Optional[Sequence[Optional[int]]] = None,
) -> List[DesignPoint]:
    """Evaluate a whole population as one stacked tensor program.

    The per-genome preamble (pruning, clustering, quantizer attachment) and
    the final synthesis stay per-genome loops — they are either cheap or
    fully memoized — while the two tensor-heavy stages are batched across
    the population:

    * quantization-aware fine-tuning runs through
      :func:`repro.nn.stacked.finetune_stacked` (one ``(G, ...)`` tensor
      program instead of G serial trainings), and
    * test accuracy is measured with one batched forward pass —
      :func:`repro.nn.stacked.predict_stacked` for the float model, or
      :func:`repro.bespoke.simulator.population_accuracy` on the integer
      datapath when ``settings.simulate_accuracy`` is set.

    Every genome's design point is byte-identical to
    ``evaluate_genome(genome, prepared, settings, seed=seeds[g])`` — the
    stacked trainer's bit-identity contract plus exact integer/argmax
    arithmetic make batching numerically invisible, which the golden tests
    in ``tests/test_stacked_evaluation.py`` assert. Populations the stacked
    trainer cannot handle (architecture mismatches, zero fine-tuning
    epochs, non-symmetric quantizers) silently fall back to the serial
    per-genome loop.
    """
    settings = settings if settings is not None else _EvaluationSettings()
    genomes = list(genomes)
    if seeds is None:
        seeds = [None] * len(genomes)
    seeds = list(seeds)
    if len(seeds) != len(genomes):
        raise ValueError(f"Got {len(seeds)} seeds for {len(genomes)} genomes")

    def _serial_fallback() -> List[DesignPoint]:
        return [
            evaluate_genome(genome, prepared, settings, seed=seed)
            for genome, seed in zip(genomes, seeds)
        ]

    if len(genomes) < 2 or settings.finetune_epochs <= 0:
        return _serial_fallback()

    with profiling.stage("evaluate_population_stacked"):
        models = []
        clusterings = []
        for genome, seed in zip(genomes, seeds):
            model, clustering_result = _apply_minimizations(
                genome, prepared, settings, seed
            )
            models.append(model)
            clusterings.append(clustering_result)
        if not supports_stacking(models):
            # Finish serially on the models already built — re-running the
            # pruning/clustering preamble would only repeat identical work.
            results = []
            for genome, model, clustering_result, seed in zip(
                genomes, models, clusterings, seeds
            ):
                with profiling.stage("evaluate_genome"):
                    _finetune_model(prepared, settings, model, clustering_result, seed)
                    results.append(
                        _score_model(genome, prepared, settings, model, seed=seed)
                    )
            return results

        data = prepared.data
        with profiling.stage("finetune"):
            finetune_stacked(
                models,
                data.train.features,
                data.train.labels,
                data.validation.features,
                data.validation.labels,
                epochs=settings.finetune_epochs,
                learning_rate=settings.finetune_learning_rate,
                seeds=seeds,
                backend=settings.backend,
            )
        for model, clustering_result in zip(models, clusterings):
            if clustering_result is not None:
                reproject_clusters(model, clustering_result)

        bespoke_configs = [_bespoke_config(genome, prepared) for genome in genomes]
        test = data.test
        labels = np.asarray(test.labels).reshape(-1).astype(int)
        simulators = None
        if settings.simulate_accuracy or settings.robustness_enabled:
            simulators = [
                FixedPointSimulator(model, config)
                for model, config in zip(models, bespoke_configs)
            ]
        with profiling.stage("accuracy"):
            if settings.simulate_accuracy:
                accuracies = population_accuracy(
                    simulators, test.features, labels, backend=settings.backend
                )
            else:
                predictions = predict_stacked(
                    models, test.features, backend=settings.backend
                )
                accuracies = (predictions == labels).mean(axis=-1)
        robust_accuracies: List[Optional[float]] = [None] * len(genomes)
        accuracy_stds: List[Optional[float]] = [None] * len(genomes)
        if settings.robustness_enabled:
            with profiling.stage("robustness"):
                fault_results = monte_carlo_population(
                    simulators,
                    test.features,
                    labels,
                    [settings.fault_config(seed) for seed in seeds],
                    backend=settings.backend,
                )
            robust_accuracies = [result.mean_accuracy for result in fault_results]
            accuracy_stds = [result.accuracy_std for result in fault_results]
        return [
            _synthesize_point(
                genome,
                prepared,
                model,
                config,
                float(acc),
                robust_accuracy=robust,
                accuracy_std=std,
            )
            for genome, model, config, acc, robust, std in zip(
                genomes, models, bespoke_configs, accuracies, robust_accuracies, accuracy_stds
            )
        ]


def objectives_of(
    point: DesignPoint, baseline: DesignPoint, robust: bool = False
) -> Tuple[float, ...]:
    """The minimized objectives of one design point.

    The default is the paper's pair ``(relative accuracy loss, normalized
    area)``. With ``robust=True`` a third minimized objective is appended:
    the *robust* accuracy loss ``max(1 - robust_accuracy / baseline
    accuracy, 0)`` — the loss the deployed circuit actually shows under the
    configured Monte-Carlo defect model. The 2-objective form is untouched,
    so robustness-disabled searches rank (and therefore evolve)
    byte-identically to earlier versions.
    """
    if baseline.accuracy <= 0 or baseline.area <= 0:
        raise ValueError("Baseline accuracy and area must be positive")
    loss = max(1.0 - point.accuracy / baseline.accuracy, 0.0)
    normalized_area = point.area / baseline.area
    if not robust:
        return (loss, normalized_area)
    if point.robust_accuracy is None:
        raise ValueError(
            "Robust objective requested but the design point has no "
            "robust_accuracy — evaluate with fault_rate > 0 and "
            "n_fault_trials > 0"
        )
    robust_loss = max(1.0 - point.robust_accuracy / baseline.accuracy, 0.0)
    return (loss, normalized_area, robust_loss)
