"""Genome encoding for the hardware-aware genetic algorithm.

The paper combines quantization, pruning and weight clustering through a
hardware-aware GA (Figure 2). The genome here encodes, for every Dense
layer of the classifier:

* the weight bit-width (quantization),
* the unstructured sparsity level (pruning),
* the per-input-position cluster budget (weight clustering, 0 = disabled).

Gene values are drawn from small discrete alphabets, which keeps the search
space finite and lets evaluations be cached by genome identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: Allowed gene values (class attributes of :class:`GenomeSpace` use these defaults).
DEFAULT_BIT_CHOICES: Tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8)
DEFAULT_SPARSITY_CHOICES: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7)
DEFAULT_CLUSTER_CHOICES: Tuple[int, ...] = (0, 2, 3, 4, 6, 8)


@dataclass(frozen=True)
class Genome:
    """One candidate configuration of the combined minimization.

    Attributes:
        weight_bits: per-layer weight bit-widths.
        sparsity: per-layer unstructured sparsity levels.
        clusters: per-layer cluster budgets (0 disables clustering).
    """

    weight_bits: Tuple[int, ...]
    sparsity: Tuple[float, ...]
    clusters: Tuple[int, ...]

    def __post_init__(self) -> None:
        # Coerce to plain Python scalars so genomes print and serialize
        # cleanly regardless of whether genes came from NumPy RNG choices.
        object.__setattr__(self, "weight_bits", tuple(int(b) for b in self.weight_bits))
        object.__setattr__(self, "sparsity", tuple(float(s) for s in self.sparsity))
        object.__setattr__(self, "clusters", tuple(int(c) for c in self.clusters))
        n = len(self.weight_bits)
        if not (len(self.sparsity) == len(self.clusters) == n):
            raise ValueError("Genome fields must all have the same per-layer length")
        if n == 0:
            raise ValueError("Genome must cover at least one layer")
        if any(b < 2 for b in self.weight_bits):
            raise ValueError("weight_bits genes must be >= 2")
        if any(not 0.0 <= s < 1.0 for s in self.sparsity):
            raise ValueError("sparsity genes must be in [0, 1)")
        if any(c < 0 for c in self.clusters):
            raise ValueError("cluster genes must be >= 0")

    @property
    def n_layers(self) -> int:
        return len(self.weight_bits)

    def key(self) -> Tuple:
        """Hashable identity used for evaluation caching."""
        return (self.weight_bits, tuple(round(s, 6) for s in self.sparsity), self.clusters)

    def as_dict(self) -> Dict[str, object]:
        return {
            "weight_bits": list(self.weight_bits),
            "sparsity": list(self.sparsity),
            "clusters": list(self.clusters),
        }


class GenomeSpace:
    """The discrete search space the GA explores.

    Args:
        n_layers: number of Dense layers in the classifier.
        bit_choices: allowed weight bit-widths.
        sparsity_choices: allowed sparsity levels.
        cluster_choices: allowed cluster budgets (0 = clustering off).
    """

    def __init__(
        self,
        n_layers: int,
        bit_choices: Sequence[int] = DEFAULT_BIT_CHOICES,
        sparsity_choices: Sequence[float] = DEFAULT_SPARSITY_CHOICES,
        cluster_choices: Sequence[int] = DEFAULT_CLUSTER_CHOICES,
    ) -> None:
        if n_layers < 1:
            raise ValueError(f"n_layers must be >= 1, got {n_layers}")
        if not bit_choices or not sparsity_choices or not cluster_choices:
            raise ValueError("All gene alphabets must be non-empty")
        self.n_layers = int(n_layers)
        self.bit_choices = tuple(sorted(set(int(b) for b in bit_choices)))
        self.sparsity_choices = tuple(sorted(set(float(s) for s in sparsity_choices)))
        self.cluster_choices = tuple(sorted(set(int(c) for c in cluster_choices)))

    # -- sampling ---------------------------------------------------------------

    def random_genome(self, rng: np.random.Generator) -> Genome:
        """Sample a uniformly random genome."""
        return Genome(
            weight_bits=tuple(rng.choice(self.bit_choices) for _ in range(self.n_layers)),
            sparsity=tuple(rng.choice(self.sparsity_choices) for _ in range(self.n_layers)),
            clusters=tuple(rng.choice(self.cluster_choices) for _ in range(self.n_layers)),
        )

    def baseline_genome(self) -> Genome:
        """The genome equivalent to the un-minimized baseline (8-bit, dense, no clustering)."""
        bits = max(self.bit_choices)
        return Genome(
            weight_bits=(bits,) * self.n_layers,
            sparsity=(min(self.sparsity_choices),) * self.n_layers,
            clusters=(0,) * self.n_layers if 0 in self.cluster_choices else (min(self.cluster_choices),) * self.n_layers,
        )

    def seed_genomes(self) -> List[Genome]:
        """Hand-picked starting points covering the standalone techniques.

        Seeding the initial population with "pure quantization", "pure
        pruning" and "pure clustering" corners accelerates convergence and
        guarantees the combined front can only improve on the standalone ones.
        """
        genomes = [self.baseline_genome()]
        low_bits = min(b for b in self.bit_choices if b >= 3) if any(
            b >= 3 for b in self.bit_choices
        ) else min(self.bit_choices)
        max_bits = max(self.bit_choices)
        mid_sparsity = self.sparsity_choices[len(self.sparsity_choices) // 2]
        small_clusters = min((c for c in self.cluster_choices if c > 0), default=0)
        genomes.append(
            Genome(
                weight_bits=(low_bits,) * self.n_layers,
                sparsity=(min(self.sparsity_choices),) * self.n_layers,
                clusters=(0 if 0 in self.cluster_choices else small_clusters,) * self.n_layers,
            )
        )
        genomes.append(
            Genome(
                weight_bits=(max_bits,) * self.n_layers,
                sparsity=(mid_sparsity,) * self.n_layers,
                clusters=(0 if 0 in self.cluster_choices else small_clusters,) * self.n_layers,
            )
        )
        if small_clusters > 0:
            genomes.append(
                Genome(
                    weight_bits=(max_bits,) * self.n_layers,
                    sparsity=(min(self.sparsity_choices),) * self.n_layers,
                    clusters=(small_clusters,) * self.n_layers,
                )
            )
        return genomes

    # -- neighbourhood ----------------------------------------------------------

    def mutate_gene(
        self, genome: Genome, rng: np.random.Generator, mutation_rate: float = 0.25
    ) -> Genome:
        """Mutate each gene independently with probability ``mutation_rate``.

        Mutation moves a gene to a random neighbouring value in its alphabet
        (local move) or, with small probability, to any value (jump).
        """
        if not 0.0 <= mutation_rate <= 1.0:
            raise ValueError(f"mutation_rate must be in [0, 1], got {mutation_rate}")

        def _mutate_value(value, choices):
            choices = list(choices)
            index = choices.index(value)
            if rng.random() < 0.2:
                return choices[rng.integers(len(choices))]
            step = -1 if rng.random() < 0.5 else 1
            return choices[int(np.clip(index + step, 0, len(choices) - 1))]

        bits = list(genome.weight_bits)
        sparsity = list(genome.sparsity)
        clusters = list(genome.clusters)
        for layer in range(self.n_layers):
            if rng.random() < mutation_rate:
                bits[layer] = int(_mutate_value(bits[layer], self.bit_choices))
            if rng.random() < mutation_rate:
                sparsity[layer] = float(_mutate_value(sparsity[layer], self.sparsity_choices))
            if rng.random() < mutation_rate:
                clusters[layer] = int(_mutate_value(clusters[layer], self.cluster_choices))
        return Genome(tuple(bits), tuple(sparsity), tuple(clusters))

    def crossover(
        self, parent_a: Genome, parent_b: Genome, rng: np.random.Generator
    ) -> Genome:
        """Uniform crossover: each per-layer gene comes from either parent."""
        if parent_a.n_layers != self.n_layers or parent_b.n_layers != self.n_layers:
            raise ValueError("Parents do not match this genome space")
        bits = []
        sparsity = []
        clusters = []
        for layer in range(self.n_layers):
            take_a = rng.random() < 0.5
            bits.append(parent_a.weight_bits[layer] if take_a else parent_b.weight_bits[layer])
            take_a = rng.random() < 0.5
            sparsity.append(parent_a.sparsity[layer] if take_a else parent_b.sparsity[layer])
            take_a = rng.random() < 0.5
            clusters.append(parent_a.clusters[layer] if take_a else parent_b.clusters[layer])
        return Genome(tuple(bits), tuple(sparsity), tuple(clusters))

    def size(self) -> int:
        """Cardinality of the search space."""
        per_layer = (
            len(self.bit_choices) * len(self.sparsity_choices) * len(self.cluster_choices)
        )
        return per_layer**self.n_layers
