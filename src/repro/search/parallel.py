"""Process-pool fan-out of genome evaluations.

NSGA-II fitness evaluations are embarrassingly parallel: each one retrains
and re-synthesizes an independent clone of the baseline. The
:class:`ParallelEvaluator` here fans the cache misses of each population out
over a ``ProcessPoolExecutor`` while keeping the engine's guarantees:

* **Bit-identical to serial** — every genome is evaluated with the same
  derived seed (:func:`repro.search.evaluator.genome_seed`) regardless of
  which worker runs it, and results are committed to the cache in
  submission order, so Pareto fronts, ``all_points()`` order and every
  downstream statistic match a serial run exactly.
* **One-time state transfer** — the prepared pipeline and evaluation
  settings are pickled once per worker (pool initializer), not once per
  task.
* **Graceful degradation** — with ``n_workers <= 1``, on platforms without
  working process pools, or if the pool dies mid-run, evaluation falls back
  to the in-process serial path.

The pool composes with the stacked population path: with ``stacked=True``
each batch of cache misses is split into one contiguous chunk per worker
and every worker evaluates its chunk as one stacked tensor program
(:func:`repro.search.objectives.evaluate_genomes_stacked`). Because the
stacked path is bit-identical per genome, the chunking is numerically
invisible — any worker count, chunk shape, or stacked/serial mix produces
the same design points.

Worker processes hold module-level state (set by :func:`_init_worker`);
tasks then only ship the genomes and their seeds.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from ..core.pipeline import PreparedPipeline
from ..core.results import DesignPoint
from .evaluator import SerialEvaluator, genome_seed
from .genome import Genome
from .objectives import evaluate_genome, evaluate_genomes_stacked
from .settings import EvaluationSettings

#: Per-process evaluation state, populated by :func:`_init_worker`.
_WORKER_STATE: dict = {}


def resolve_workers(n_workers: Optional[int]) -> int:
    """Normalize a worker-count request: ``None``/1 = serial, 0 = all cores."""
    if n_workers is None:
        return 1
    n_workers = int(n_workers)
    if n_workers < 0:
        raise ValueError(f"n_workers must be >= 0, got {n_workers}")
    if n_workers == 0:
        return os.cpu_count() or 1
    return n_workers


def _init_worker(payload: bytes) -> None:
    """Pool initializer: install the prepared pipeline + settings in this process."""
    prepared, settings = pickle.loads(payload)
    _WORKER_STATE["prepared"] = prepared
    _WORKER_STATE["settings"] = settings


def _evaluate_task(genome: Genome, seed: Optional[int]) -> DesignPoint:
    """One pool task: evaluate a single genome against the worker's state."""
    return evaluate_genome(
        genome, _WORKER_STATE["prepared"], _WORKER_STATE["settings"], seed=seed
    )


def _evaluate_chunk_task(
    genomes: Sequence[Genome], seeds: Sequence[Optional[int]]
) -> List[DesignPoint]:
    """One pool task: evaluate a population chunk through the stacked path."""
    return evaluate_genomes_stacked(
        genomes, _WORKER_STATE["prepared"], _WORKER_STATE["settings"], seeds
    )


def _chunk_bounds(n_items: int, n_chunks: int) -> List[Tuple[int, int]]:
    """Contiguous, balanced ``[start, stop)`` chunk bounds (no empty chunks)."""
    n_chunks = max(1, min(n_chunks, n_items))
    base, extra = divmod(n_items, n_chunks)
    bounds = []
    start = 0
    for index in range(n_chunks):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


class ParallelEvaluator(SerialEvaluator):
    """Evaluation engine that fans cache misses out over worker processes.

    Args:
        prepared: prepared pipeline (must be picklable — it is shipped to
            each worker once).
        settings: per-genome evaluation settings.
        seed: base seed for derived per-genome seeds.
        n_workers: worker processes. ``None``/1 evaluates in-process,
            0 uses every available core.
        stacked: evaluate each worker's share of the population as one
            stacked tensor program instead of genome-by-genome.
        cache_size: optional LRU bound on the evaluation cache.
        cache: injected cache instance (see :class:`SerialEvaluator`). The
            cache lives in the driver process only — workers evaluate misses
            and the driver commits them, so a persistent backend never needs
            to be picklable or multi-process safe.
    """

    def __init__(
        self,
        prepared: PreparedPipeline,
        settings: Optional[EvaluationSettings] = None,
        seed: Optional[int] = 0,
        n_workers: Optional[int] = None,
        stacked: bool = False,
        cache_size: Optional[int] = None,
        cache=None,
    ) -> None:
        super().__init__(
            prepared,
            settings,
            seed=seed,
            stacked=stacked,
            cache_size=cache_size,
            cache=cache,
        )
        self.n_workers = resolve_workers(n_workers)
        self._executor: Optional[ProcessPoolExecutor] = None

    # -- pool lifecycle ----------------------------------------------------------

    def _ensure_executor(self) -> Optional[ProcessPoolExecutor]:
        if self.n_workers <= 1:
            return None
        if self._executor is None:
            payload = pickle.dumps((self.prepared, self.settings))
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_workers,
                initializer=_init_worker,
                initargs=(payload,),
            )
        return self._executor

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    # -- evaluation --------------------------------------------------------------

    def _evaluate_missing(self, genomes: List[Genome]) -> List[DesignPoint]:
        seeds = [genome_seed(self.seed, genome) for genome in genomes]
        if self.n_workers > 1 and len(genomes) > 1:
            try:
                executor = self._ensure_executor()
                if self.stacked:
                    futures = [
                        executor.submit(
                            _evaluate_chunk_task,
                            genomes[start:stop],
                            seeds[start:stop],
                        )
                        for start, stop in _chunk_bounds(len(genomes), self.n_workers)
                    ]
                    return [
                        point for future in futures for point in future.result()
                    ]
                futures = [
                    executor.submit(_evaluate_task, genome, seed)
                    for genome, seed in zip(genomes, seeds)
                ]
                return [future.result() for future in futures]
            except (BrokenExecutor, OSError, pickle.PicklingError) as error:
                warnings.warn(
                    f"Parallel evaluation unavailable ({error!r}); "
                    "falling back to serial evaluation.",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self.close()
                self.n_workers = 1
        if self.stacked and len(genomes) > 1:
            return evaluate_genomes_stacked(genomes, self.prepared, self.settings, seeds)
        return [
            evaluate_genome(genome, self.prepared, self.settings, seed=seed)
            for genome, seed in zip(genomes, seeds)
        ]


def create_evaluator(
    prepared: PreparedPipeline,
    settings: Optional[EvaluationSettings] = None,
    seed: Optional[int] = 0,
    n_workers: Optional[int] = None,
    stacked: Optional[bool] = None,
    cache_size: Optional[int] = None,
    cache=None,
) -> SerialEvaluator:
    """Factory used by the search drivers: serial engine unless workers are requested.

    ``stacked`` and ``cache_size`` default to the prepared pipeline's
    configuration, so every driver built on this factory (the GA,
    ``random_search``, ``grid_search``) honors ``PipelineConfig.stacked``
    (on by default) and ``PipelineConfig.cache_size`` without wiring them
    through individually; pass explicit values to override. ``cache``
    injects a prebuilt cache instance (e.g. the campaign layer's persistent
    on-disk backend) and suppresses the ``cache_size`` default.
    """
    if stacked is None:
        stacked = getattr(prepared.config, "stacked", True)
    if cache_size is None and cache is None:
        cache_size = getattr(prepared.config, "cache_size", None)
    if resolve_workers(n_workers) > 1:
        return ParallelEvaluator(
            prepared,
            settings,
            seed=seed,
            n_workers=n_workers,
            stacked=stacked,
            cache_size=cache_size,
            cache=cache,
        )
    return SerialEvaluator(
        prepared, settings, seed=seed, stacked=stacked, cache_size=cache_size, cache=cache
    )
