"""Surrogate regressors: cheap genome-cost predictors with uncertainty.

Two :class:`SurrogateModel` implementations, both numpy-only and fully
seeded:

* :class:`RidgeSurrogate` — ridge regression on degree-2 polynomial
  features, solved in closed form. The fast default: fitting is a few
  normal-equation solves, prediction a matrix product.
* :class:`MLPSurrogate` — a tiny one-hidden-layer MLP ensemble trained as
  one stacked ``(E, ...)`` tensor program through
  :class:`~repro.nn.optimizers.StackedAdam` and the
  :mod:`repro.core.backend` seam, mirroring how the evaluation engine
  batches real QAT fine-tuning.

Both are bagged ensembles: every member fits a bootstrap resample, and the
spread of member predictions is the per-objective uncertainty the
search layer's optimistic prefilter consumes. Model fitting is a pure
function of ``(features, targets, seed)``.
"""

from __future__ import annotations

from typing import Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from ..core.backend import resolve_backend
from ..nn.optimizers import StackedAdam


@runtime_checkable
class SurrogateModel(Protocol):
    """What the trainer and the search layer require of a surrogate.

    ``fit`` consumes ``(N, F)`` features against ``(N, K)`` targets and
    must be deterministic given its ``seed``; ``predict`` returns ``(N, K)``
    means and ``predict_with_uncertainty`` adds the ensemble's per-target
    standard deviation.
    """

    def fit(self, features: np.ndarray, targets: np.ndarray, seed: int = 0) -> "SurrogateModel":
        ...

    def predict(self, features: np.ndarray) -> np.ndarray:
        ...

    def predict_with_uncertainty(
        self, features: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        ...


def _as_training_matrices(features: np.ndarray, targets: np.ndarray):
    """Validate and coerce one ``fit`` call's inputs."""
    X = np.asarray(features, dtype=np.float64)
    Y = np.asarray(targets, dtype=np.float64)
    if Y.ndim == 1:
        Y = Y[:, None]
    if X.ndim != 2 or Y.ndim != 2 or X.shape[0] != Y.shape[0]:
        raise ValueError(
            f"features/targets must be aligned 2-D matrices, got {X.shape} vs {Y.shape}"
        )
    if X.shape[0] == 0:
        raise ValueError("cannot fit a surrogate on zero samples")
    return X, Y


def _standardizer(X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Column means and (zero-safe) standard deviations of a matrix."""
    mean = X.mean(axis=0)
    std = X.std(axis=0)
    std = np.where(std > 0.0, std, 1.0)
    return mean, std


def _bootstrap_indices(
    rng: np.random.Generator, n_samples: int, member: int
) -> np.ndarray:
    """Member 0 trains on the full data; the rest on bootstrap resamples.

    Keeping one member on the exact training set anchors the ensemble mean
    near the full-data fit while the resampled members supply the spread.
    """
    if member == 0:
        return np.arange(n_samples)
    return rng.integers(0, n_samples, size=n_samples)


class RidgeSurrogate:
    """Bagged ridge regression on degree-2 polynomial features.

    Args:
        alpha: L2 penalty on every coefficient except the intercept.
        degree: 1 for plain linear features, 2 adds all pairwise products
            (including squares) — enough to capture bits x sparsity style
            interactions the cost models exhibit.
        n_members: bagged ensemble size (>= 2 so uncertainty is defined).
    """

    def __init__(self, alpha: float = 1e-3, degree: int = 2, n_members: int = 8) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if degree not in (1, 2):
            raise ValueError(f"degree must be 1 or 2, got {degree}")
        if n_members < 2:
            raise ValueError(f"n_members must be >= 2, got {n_members}")
        self.alpha = float(alpha)
        self.degree = int(degree)
        self.n_members = int(n_members)
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None
        self._weights: Optional[np.ndarray] = None  # (E, D, K)

    def _expand(self, X: np.ndarray) -> np.ndarray:
        """Standardize and polynomially expand ``(N, F)`` → ``(N, D)``."""
        Z = (X - self._mean) / self._std
        columns = [np.ones((Z.shape[0], 1)), Z]
        if self.degree == 2:
            n_features = Z.shape[1]
            pairs = [
                Z[:, i : i + 1] * Z[:, j : j + 1]
                for i in range(n_features)
                for j in range(i, n_features)
            ]
            if pairs:
                columns.append(np.concatenate(pairs, axis=1))
        return np.concatenate(columns, axis=1)

    def fit(self, features: np.ndarray, targets: np.ndarray, seed: int = 0) -> "RidgeSurrogate":
        """Closed-form fit of every ensemble member; returns ``self``."""
        X, Y = _as_training_matrices(features, targets)
        self._mean, self._std = _standardizer(X)
        design = self._expand(X)
        n_samples, n_basis = design.shape
        penalty = self.alpha * np.eye(n_basis)
        penalty[0, 0] = 0.0  # the intercept is never shrunk
        rng = np.random.default_rng(seed)
        weights = np.empty((self.n_members, n_basis, Y.shape[1]))
        for member in range(self.n_members):
            rows = _bootstrap_indices(rng, n_samples, member)
            A = design[rows]
            weights[member] = np.linalg.solve(A.T @ A + penalty, A.T @ Y[rows])
        self._weights = weights
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Ensemble-mean prediction, shape ``(N, K)``."""
        return self.predict_with_uncertainty(features)[0]

    def predict_with_uncertainty(
        self, features: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(mean, std)`` over ensemble members, each ``(N, K)``."""
        if self._weights is None:
            raise RuntimeError("surrogate is not fitted; call fit() first")
        design = self._expand(np.asarray(features, dtype=np.float64))
        stacked = np.einsum("nd,edk->enk", design, self._weights)
        return stacked.mean(axis=0), stacked.std(axis=0)


class MLPSurrogate:
    """Tiny stacked-MLP ensemble trained with :class:`StackedAdam`.

    Every ensemble member is a one-hidden-layer tanh MLP; all members train
    simultaneously as one ``(E, ...)`` batched tensor program whose flat
    ``(E, P)`` parameter matrix steps through the same fused
    :class:`~repro.nn.optimizers.StackedAdam` kernel (and
    :mod:`repro.core.backend` seam) the stacked QAT trainer uses.

    Args:
        hidden_units: hidden-layer width.
        n_members: ensemble size (>= 2 so uncertainty is defined).
        epochs: full-batch training epochs.
        learning_rate: Adam step size (shared by all members).
        backend: array backend name/instance for the batched matmuls and
            the fused Adam step (``None`` = resolve the default).
    """

    def __init__(
        self,
        hidden_units: int = 24,
        n_members: int = 4,
        epochs: int = 300,
        learning_rate: float = 0.02,
        backend=None,
    ) -> None:
        if hidden_units < 1:
            raise ValueError(f"hidden_units must be >= 1, got {hidden_units}")
        if n_members < 2:
            raise ValueError(f"n_members must be >= 2, got {n_members}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.hidden_units = int(hidden_units)
        self.n_members = int(n_members)
        self.epochs = int(epochs)
        self.learning_rate = float(learning_rate)
        self.ops = resolve_backend(backend)
        self._x_mean: Optional[np.ndarray] = None
        self._x_std: Optional[np.ndarray] = None
        self._y_mean: Optional[np.ndarray] = None
        self._y_std: Optional[np.ndarray] = None
        self._params: Optional[Tuple[np.ndarray, ...]] = None

    def _shapes(self, n_features: int, n_targets: int):
        E, H = self.n_members, self.hidden_units
        return ((E, n_features, H), (E, 1, H), (E, H, n_targets), (E, 1, n_targets))

    def _flatten(self, arrays) -> np.ndarray:
        return np.concatenate([a.reshape(self.n_members, -1) for a in arrays], axis=1)

    def _unflatten(self, flat: np.ndarray, shapes) -> Tuple[np.ndarray, ...]:
        arrays = []
        offset = 0
        for shape in shapes:
            size = int(np.prod(shape[1:]))
            arrays.append(flat[:, offset : offset + size].reshape(shape))
            offset += size
        return tuple(arrays)

    def _forward(self, params, X_stack: np.ndarray):
        """Batched forward pass: ``(E, N, F)`` inputs → ``(E, N, K)``."""
        W1, b1, W2, b2 = params
        hidden = np.tanh(self.ops.matmul(X_stack, W1) + b1)
        return self.ops.matmul(hidden, W2) + b2, hidden

    def fit(self, features: np.ndarray, targets: np.ndarray, seed: int = 0) -> "MLPSurrogate":
        """Full-batch stacked training of the whole ensemble; returns ``self``."""
        X, Y = _as_training_matrices(features, targets)
        self._x_mean, self._x_std = _standardizer(X)
        self._y_mean, self._y_std = _standardizer(Y)
        Z = (X - self._x_mean) / self._x_std
        T = (Y - self._y_mean) / self._y_std
        n_samples, n_features = Z.shape
        shapes = self._shapes(n_features, T.shape[1])
        rng = np.random.default_rng(seed)
        scale = 1.0 / np.sqrt(n_features)
        params = (
            rng.normal(0.0, scale, size=shapes[0]),
            np.zeros(shapes[1]),
            rng.normal(0.0, 1.0 / np.sqrt(self.hidden_units), size=shapes[2]),
            np.zeros(shapes[3]),
        )
        # Each member trains on its own bootstrap view, stacked on axis 0.
        rows = np.stack(
            [_bootstrap_indices(rng, n_samples, member) for member in range(self.n_members)]
        )
        X_stack = Z[rows]  # (E, N, F)
        T_stack = T[rows]  # (E, N, K)
        flat = self._flatten(params)
        optimizer = StackedAdam(
            learning_rates=[self.learning_rate] * self.n_members,
            backend=self.ops,
        )
        for _ in range(self.epochs):
            params = self._unflatten(flat, shapes)
            W1, b1, W2, b2 = params
            out, hidden = self._forward(params, X_stack)
            d_out = 2.0 * (out - T_stack) / n_samples  # (E, N, K)
            g_W2 = self.ops.matmul(hidden.transpose(0, 2, 1), d_out)
            g_b2 = d_out.sum(axis=1, keepdims=True)
            d_hidden = self.ops.matmul(d_out, W2.transpose(0, 2, 1)) * (1.0 - hidden**2)
            g_W1 = self.ops.matmul(X_stack.transpose(0, 2, 1), d_hidden)
            g_b1 = d_hidden.sum(axis=1, keepdims=True)
            optimizer.update(flat, self._flatten((g_W1, g_b1, g_W2, g_b2)))
        self._params = self._unflatten(flat, shapes)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Ensemble-mean prediction, shape ``(N, K)``."""
        return self.predict_with_uncertainty(features)[0]

    def predict_with_uncertainty(
        self, features: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(mean, std)`` over ensemble members, each ``(N, K)``."""
        if self._params is None:
            raise RuntimeError("surrogate is not fitted; call fit() first")
        X = np.asarray(features, dtype=np.float64)
        Z = (X - self._x_mean) / self._x_std
        Z_stack = np.broadcast_to(Z, (self.n_members,) + Z.shape)
        out, _ = self._forward(self._params, np.ascontiguousarray(Z_stack))
        denormalized = out * self._y_std + self._y_mean
        return denormalized.mean(axis=0), denormalized.std(axis=0)


#: Registry of surrogate model names accepted by configs and the CLI.
SURROGATE_MODELS: Tuple[str, ...] = ("ridge", "mlp")


def create_surrogate(name: str, backend=None, **kwargs) -> SurrogateModel:
    """Instantiate a registered surrogate model by name.

    ``backend`` only reaches models that train through the backend seam
    (the MLP); extra keyword arguments go to the model constructor.
    """
    if name == "ridge":
        return RidgeSurrogate(**kwargs)
    if name == "mlp":
        return MLPSurrogate(backend=backend, **kwargs)
    raise ValueError(f"unknown surrogate model '{name}'; choose from {SURROGATE_MODELS}")
