"""Surrogate-assisted offspring selection for the hardware-aware GA.

:class:`SurrogateAssistant` is the glue between the predictor stack and
:class:`~repro.search.ga.HardwareAwareGA`: it accumulates every *real*
evaluation the search performs, refits the surrogate online, and ranks
candidate offspring by predicted non-domination so the GA only spends real
stacked-QAT evaluations on the most promising fraction.

Ranking is *uncertainty-optimistic*: each candidate is scored at its
ensemble mean shifted one ``optimism`` standard deviation in its favor
(lower-confidence-bound on every minimized objective), so genomes in
regions the surrogate has never seen keep large optimistic scores and
still get explored — the standard guard against a surrogate collapsing
the search onto its own blind spots.

Everything is deterministic: refits are seeded per generation through
:func:`surrogate_seed` (the SHA-256 derivation pattern of
:func:`repro.search.evaluator.genome_seed`), ranking breaks ties by
candidate order, and identical inputs produce identical selections.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core import profiling
from ..core.results import DesignPoint
from ..search.genome import Genome
from ..search.nsga2 import nsga2_rank
from .features import GenomeFeaturizer
from .models import SurrogateModel, create_surrogate

_SEED_SPACE = 2**32


def surrogate_seed(base_seed: Optional[int], generation: int) -> Optional[int]:
    """Deterministic per-generation surrogate fit seed.

    Mixes the search's base seed with the generation index through SHA-256,
    mirroring :func:`repro.search.evaluator.genome_seed` — stable across
    processes and Python runs, uncorrelated with the evaluation seeds.
    """
    if base_seed is None:
        return None
    digest = hashlib.sha256(
        f"{int(base_seed)}|surrogate|{int(generation)}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_SPACE


class SurrogateAssistant:
    """Online-trained offspring prefilter wired into the GA's generation loop.

    Args:
        baseline: the prepared pipeline's baseline design point — predicted
            raw targets are normalized against it exactly as
            :func:`repro.search.objectives.objectives_of` normalizes
            measured ones.
        robust: rank on the 3-objective (loss, area, robust loss) space;
            requires observed points to carry ``robust_accuracy``.
        model: registered surrogate name (``"ridge"`` or ``"mlp"``).
        seed: search base seed; per-generation fit seeds derive from it.
        backend: array backend for NSGA-II ranking and backend-seam models.
        optimism: uncertainty bonus in ensemble standard deviations.
        min_fit_samples: observations required before the first fit; until
            then :meth:`rank` returns candidate order unchanged.
        model_kwargs: forwarded to the model constructor on every refit.
    """

    def __init__(
        self,
        baseline: DesignPoint,
        robust: bool = False,
        model: str = "ridge",
        seed: Optional[int] = 0,
        backend=None,
        optimism: float = 1.0,
        min_fit_samples: int = 8,
        model_kwargs: Optional[dict] = None,
    ) -> None:
        if baseline.accuracy <= 0 or baseline.area <= 0:
            raise ValueError("Baseline accuracy and area must be positive")
        if optimism < 0:
            raise ValueError(f"optimism must be >= 0, got {optimism}")
        if min_fit_samples < 2:
            raise ValueError(f"min_fit_samples must be >= 2, got {min_fit_samples}")
        self.baseline = baseline
        self.robust = bool(robust)
        self.model_name = str(model)
        self.seed = seed
        self.backend = backend
        self.optimism = float(optimism)
        self.min_fit_samples = int(min_fit_samples)
        self.model_kwargs = dict(model_kwargs or {})
        self.featurizer = GenomeFeaturizer()
        self.model: Optional[SurrogateModel] = None
        self.n_fits = 0
        self._observed: Dict[Tuple, List[float]] = {}
        self._genomes: Dict[Tuple, Genome] = {}
        # Validate the model name eagerly so a typo fails at construction,
        # not at the first refit deep inside the generation loop.
        create_surrogate(self.model_name, backend=self.backend, **self.model_kwargs)

    # -- online training ---------------------------------------------------------

    def _targets_of(self, point: DesignPoint) -> List[float]:
        targets = [float(point.accuracy), float(point.area)]
        if self.robust:
            if point.robust_accuracy is None:
                raise ValueError(
                    "robust surrogate ranking needs robust_accuracy on every "
                    "observed point"
                )
            targets.append(float(point.robust_accuracy))
        return targets

    def observe(self, genomes: Sequence[Genome], points: Sequence[DesignPoint]) -> None:
        """Record real evaluations as training rows (deduped by genome key)."""
        for genome, point in zip(genomes, points):
            key = genome.key()
            if key in self._observed:
                continue
            self._observed[key] = self._targets_of(point)
            self._genomes[key] = genome

    @property
    def n_observations(self) -> int:
        """Distinct genomes observed so far."""
        return len(self._observed)

    @property
    def ready(self) -> bool:
        """True once a surrogate has been fitted."""
        return self.model is not None

    def refit(self, generation: int) -> bool:
        """Refit the surrogate on everything observed; True when it fitted.

        A no-op (returning False) until ``min_fit_samples`` distinct
        observations exist. Appears as the ``surrogate_fit`` stage in
        ``repro --profile`` reports.
        """
        if self.n_observations < self.min_fit_samples:
            return False
        with profiling.stage("surrogate_fit"):
            keys = list(self._observed)
            features = self.featurizer.transform([self._genomes[k] for k in keys])
            targets = np.asarray([self._observed[k] for k in keys])
            fit_seed = surrogate_seed(self.seed, generation)
            model = create_surrogate(
                self.model_name, backend=self.backend, **self.model_kwargs
            )
            self.model = model.fit(
                features, targets, seed=0 if fit_seed is None else fit_seed
            )
            self.n_fits += 1
        return True

    # -- ranking -----------------------------------------------------------------

    def predicted_objectives(self, genomes: Sequence[Genome]) -> np.ndarray:
        """Optimistic predicted objective vectors, shape ``(N, 2 or 3)``.

        Raw-target ensemble means are shifted ``optimism`` standard
        deviations in each objective's favorable direction (accuracy up,
        area down), then mapped to the minimized objective space of
        :func:`repro.search.objectives.objectives_of`.
        """
        if self.model is None:
            raise RuntimeError("surrogate is not fitted; call refit() first")
        mean, std = self.model.predict_with_uncertainty(
            self.featurizer.transform(genomes)
        )
        accuracy = mean[:, 0] + self.optimism * std[:, 0]
        area = np.maximum(mean[:, 1] - self.optimism * std[:, 1], 0.0)
        loss = np.maximum(1.0 - accuracy / self.baseline.accuracy, 0.0)
        normalized_area = area / self.baseline.area
        columns = [loss, normalized_area]
        if self.robust:
            robust_accuracy = mean[:, 2] + self.optimism * std[:, 2]
            columns.append(
                np.maximum(1.0 - robust_accuracy / self.baseline.accuracy, 0.0)
            )
        return np.stack(columns, axis=1)

    def rank(self, candidates: Sequence[Genome]) -> List[int]:
        """Candidate indices ordered best-first by predicted non-domination.

        Uses the exact NSGA-II key (front index, then crowding distance)
        the real search ranks with, applied to optimistic predicted
        objectives; ties resolve to candidate order. Before the first fit
        the order is the identity — candidates pass through unranked.
        Appears as the ``surrogate_rank`` stage in profile reports.
        """
        candidates = list(candidates)
        if not candidates:
            return []
        if self.model is None:
            return list(range(len(candidates)))
        with profiling.stage("surrogate_rank"):
            objectives = self.predicted_objectives(candidates)
            keys = nsga2_rank([tuple(row) for row in objectives], backend=self.backend)
            order = sorted(range(len(candidates)), key=lambda i: (keys[i], i))
        return order

    def select(
        self,
        candidates: Sequence[Genome],
        cached_keys: Set[Tuple],
        budget: int,
    ) -> Tuple[List[Genome], List[Genome]]:
        """Split candidates into (already-evaluated, chosen-for-evaluation).

        Every candidate whose key is in ``cached_keys`` goes to the first
        list — re-reading a cached point is free, so known genomes (the
        incumbent Pareto archive in particular) are *never* evicted by the
        prefilter. The remaining pool is deduplicated, ranked, and the top
        ``budget`` genomes are chosen for real evaluation.
        """
        if budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        free: List[Genome] = []
        pool: List[Genome] = []
        seen: Set[Tuple] = set()
        for genome in candidates:
            key = genome.key()
            if key in seen:
                continue
            seen.add(key)
            (free if key in cached_keys else pool).append(genome)
        order = self.rank(pool)
        chosen = [pool[i] for i in order[:budget]]
        return free, chosen
