"""Train surrogates from campaign evaluation journals.

The :class:`~repro.campaign.cache.PersistentEvaluationCache` shards a
campaign leaves behind are a free genome → (accuracy, area, power,
robust_accuracy) training set. :func:`fit_from_cache` turns them into a
fitted :class:`TrainedSurrogate` without constructing caches or pipelines —
it reads through :func:`repro.campaign.cache.load_journal_records`, so it
inherits the journal reader's tolerance of torn tails, rotated ``.gNNNN``
generations and unversioned legacy records.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..search.genome import Genome
from .features import GenomeFeaturizer
from .models import SurrogateModel, create_surrogate

#: Target columns in emission order; robust_accuracy joins only when every
#: usable record carries it.
BASE_TARGETS: Tuple[str, ...] = ("accuracy", "area", "power")


@dataclass
class TrainedSurrogate:
    """A fitted surrogate bundled with its featurizer and target layout.

    Attributes:
        model: the fitted :class:`~repro.surrogate.models.SurrogateModel`.
        featurizer: the featurizer whose layout the model was fitted on.
        target_columns: names of the model's output columns, in order.
        n_records: training-set size after deduplication.
    """

    model: SurrogateModel
    featurizer: GenomeFeaturizer
    target_columns: Tuple[str, ...] = BASE_TARGETS
    n_records: int = 0

    def predict(self, genomes: Sequence[Genome]) -> np.ndarray:
        """Predicted targets, shape ``(len(genomes), len(target_columns))``."""
        return self.model.predict(self.featurizer.transform(genomes))

    def predict_with_uncertainty(
        self, genomes: Sequence[Genome]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(mean, std)`` predicted targets for a batch of genomes."""
        return self.model.predict_with_uncertainty(self.featurizer.transform(genomes))


def training_matrices(
    genomes: Sequence[Genome],
    targets_by_genome: Sequence[Sequence[float]],
    featurizer: Optional[GenomeFeaturizer] = None,
) -> Tuple[np.ndarray, np.ndarray, GenomeFeaturizer]:
    """Featurize an aligned (genomes, target rows) pair into fit inputs."""
    featurizer = featurizer if featurizer is not None else GenomeFeaturizer()
    X = featurizer.transform(genomes)
    Y = np.asarray(targets_by_genome, dtype=np.float64).reshape(len(genomes), -1)
    return X, Y, featurizer


def fit_from_cache(
    cache_dir: Union[str, Path],
    context_key: Optional[str] = None,
    model: str = "ridge",
    seed: int = 0,
    backend=None,
    **model_kwargs,
) -> TrainedSurrogate:
    """Fit a surrogate on every decodable journal record under ``cache_dir``.

    Args:
        cache_dir: campaign cache directory (``<campaign>/cache/``).
        context_key: restrict training to one evaluation context; ``None``
            pools every context in the directory (all generations of each).
        model: registered surrogate name (``"ridge"`` or ``"mlp"``).
        seed: fit seed (bootstrap resampling, MLP initialization).
        backend: array backend for backend-seam models.
        **model_kwargs: forwarded to the model constructor.

    Returns:
        A :class:`TrainedSurrogate`. Records are deduplicated by genome key
        per context; genomes whose layer count differs from the majority
        layout are skipped (a pooled directory can mix datasets with
        different architectures — one featurizer encodes one layout).
        ``robust_accuracy`` becomes a fourth target column exactly when
        every usable record carries it.

    Raises:
        ValueError: when the directory yields no usable records.
    """
    # Imported lazily: repro.campaign imports the search stack at package
    # import time, and the GA imports this package — a module-level import
    # here would complete that cycle.
    from ..campaign.cache import load_journal_records

    records = load_journal_records(cache_dir, context_key=context_key)
    if not records:
        raise ValueError(f"no usable journal records under {cache_dir!s}")
    layer_counts = [record.genome.n_layers for record in records]
    majority_layers = max(set(layer_counts), key=lambda n: (layer_counts.count(n), -n))
    usable = [record for record in records if record.genome.n_layers == majority_layers]
    include_robust = all(record.point.robust_accuracy is not None for record in usable)
    columns = BASE_TARGETS + (("robust_accuracy",) if include_robust else ())
    genomes = [record.genome for record in usable]
    targets = [
        [getattr(record.point, column) for column in columns] for record in usable
    ]
    X, Y, featurizer = training_matrices(genomes, targets)
    fitted = create_surrogate(model, backend=backend, **model_kwargs).fit(X, Y, seed=seed)
    return TrainedSurrogate(
        model=fitted,
        featurizer=featurizer,
        target_columns=columns,
        n_records=len(usable),
    )
