"""Surrogate-accelerated search: cheap genome-cost predictors.

Real stacked-QAT evaluations dominate the search's wall-clock; this package
trades them for microsecond predictions. A
:class:`~repro.surrogate.features.GenomeFeaturizer` encodes genomes as
plain feature vectors, the :class:`~repro.surrogate.models.SurrogateModel`
implementations (closed-form ridge by default, a stacked tiny-MLP ensemble
through the backend seam) regress evaluation outcomes with per-objective
ensemble uncertainty, :func:`~repro.surrogate.training.fit_from_cache`
trains directly from campaign journal shards, and
:class:`~repro.surrogate.assist.SurrogateAssistant` wires online refits and
uncertainty-optimistic offspring prefiltering into
:class:`~repro.search.ga.HardwareAwareGA` (``GAConfig(surrogate="ridge")``,
``repro figure2 --surrogate ridge``). Reported fronts only ever contain
really-measured points, and searches with the surrogate off are
byte-identical to builds without this package. See ``docs/surrogate.md``.
"""

from .assist import SurrogateAssistant, surrogate_seed
from .features import GenomeFeaturizer
from .models import (
    SURROGATE_MODELS,
    MLPSurrogate,
    RidgeSurrogate,
    SurrogateModel,
    create_surrogate,
)
from .training import TrainedSurrogate, fit_from_cache, training_matrices

__all__ = [
    "GenomeFeaturizer",
    "MLPSurrogate",
    "RidgeSurrogate",
    "SURROGATE_MODELS",
    "SurrogateAssistant",
    "SurrogateModel",
    "TrainedSurrogate",
    "create_surrogate",
    "fit_from_cache",
    "surrogate_seed",
    "training_matrices",
]
