"""Genome → feature-vector encoding for the surrogate models.

The featurizer is the only piece of the surrogate subsystem that knows what
a :class:`~repro.search.genome.Genome` *means*: every other layer works on
plain ``(N, F)`` float matrices. Features are pure arithmetic on the gene
values — total (defined for every valid genome) and deterministic (no RNG,
no fitted state) — so featurization can never diverge between training and
ranking, and the hypothesis property suite can quantify both claims.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from ..search.genome import Genome

#: Per-layer feature labels (formatted with the layer index).
_LAYER_FEATURES = (
    "layer{i}_bits",
    "layer{i}_sparsity",
    "layer{i}_density",
    "layer{i}_clusters",
    "layer{i}_clustered",
    "layer{i}_bits_x_density",
    "layer{i}_log2_levels",
)

#: Genome-level aggregate labels.
_AGGREGATE_FEATURES = (
    "mean_bits",
    "min_bits",
    "mean_sparsity",
    "mean_bits_x_density",
    "clustered_fraction",
)


def _layer_features(bits: int, sparsity: float, clusters: int) -> List[float]:
    """The seven derived features of one layer's genes.

    ``log2_levels`` approximates the number of distinct weight values the
    layer can realize: clustering caps it at the cluster budget, otherwise
    the bit-width sets it — the quantity the area model actually responds
    to, which is why it earns an explicit feature instead of being left for
    the polynomial expansion to discover.
    """
    density = 1.0 - sparsity
    clustered = 1.0 if clusters > 0 else 0.0
    levels = float(2 ** bits)
    if clusters > 0:
        levels = min(levels, float(clusters))
    return [
        float(bits),
        float(sparsity),
        density,
        float(clusters),
        clustered,
        float(bits) * density,
        math.log2(max(levels, 1.0)),
    ]


class GenomeFeaturizer:
    """Deterministic genome → ``(N, F)`` feature matrix transform.

    Args:
        n_layers: number of genome layers the feature layout covers.
            ``None`` (the default) locks onto the first transformed
            genome's layer count; every later genome must match, because a
            fitted surrogate's weight vector is tied to one feature layout.
    """

    def __init__(self, n_layers: Optional[int] = None) -> None:
        if n_layers is not None and n_layers < 1:
            raise ValueError(f"n_layers must be >= 1, got {n_layers}")
        self.n_layers = None if n_layers is None else int(n_layers)

    @property
    def n_features(self) -> Optional[int]:
        """Feature-vector width, or ``None`` until the layer count is known."""
        if self.n_layers is None:
            return None
        return len(_LAYER_FEATURES) * self.n_layers + len(_AGGREGATE_FEATURES)

    def feature_names(self) -> List[str]:
        """Column labels of :meth:`transform`'s output, in order."""
        if self.n_layers is None:
            raise ValueError("feature layout not fixed yet — transform a genome first")
        names = [
            template.format(i=layer)
            for layer in range(self.n_layers)
            for template in _LAYER_FEATURES
        ]
        return names + list(_AGGREGATE_FEATURES)

    def transform(self, genomes: Sequence[Genome]) -> np.ndarray:
        """Featurize genomes into an ``(N, F)`` float64 matrix."""
        genomes = list(genomes)
        if genomes and self.n_layers is None:
            self.n_layers = genomes[0].n_layers
        rows = []
        for genome in genomes:
            if genome.n_layers != self.n_layers:
                raise ValueError(
                    f"genome has {genome.n_layers} layers but this featurizer "
                    f"encodes {self.n_layers}"
                )
            row: List[float] = []
            for bits, sparsity, clusters in zip(
                genome.weight_bits, genome.sparsity, genome.clusters
            ):
                row.extend(_layer_features(bits, sparsity, clusters))
            densities = [1.0 - s for s in genome.sparsity]
            row.extend(
                [
                    float(np.mean(genome.weight_bits)),
                    float(min(genome.weight_bits)),
                    float(np.mean(genome.sparsity)),
                    float(
                        np.mean([b * d for b, d in zip(genome.weight_bits, densities)])
                    ),
                    float(np.mean([1.0 if c > 0 else 0.0 for c in genome.clusters])),
                ]
            )
            rows.append(row)
        width = self.n_features if self.n_features is not None else 0
        return np.asarray(rows, dtype=np.float64).reshape(len(genomes), width)
