"""Baseline bespoke-classifier benchmark (experiment E4 in DESIGN.md).

Reproduces the role of Mubarik et al. [1] in the paper: the un-minimized
bespoke MLP of every dataset, synthesized with 8-bit weights / 4-bit inputs
on the EGT library. These are the designs all Figure-1/2 results are
normalized against.
"""

import pytest

from benchlib import bench_config
from repro.experiments import baseline_for


DATASETS = ("whitewine", "redwine", "pendigits", "seeds")


def _run_baselines():
    return {name: baseline_for(name, config=bench_config(name)) for name in DATASETS}


@pytest.mark.benchmark(group="baselines", min_rounds=1, max_time=1.0, warmup=False)
def test_baseline_table(benchmark, print_rows):
    table = benchmark.pedantic(_run_baselines, rounds=1, iterations=1)
    print_rows([row.format() for row in table.values()])
    for name, row in table.items():
        benchmark.extra_info[name] = {
            "accuracy": row.accuracy,
            "area_mm2": row.area,
            "power_uw": row.power,
            "n_multipliers": row.n_multipliers,
            "total_gates": row.total_gates,
        }

    # Baseline sanity: bigger classifiers occupy more area, every baseline
    # reaches a sensible accuracy for its dataset.
    assert table["pendigits"].area > table["seeds"].area
    assert table["whitewine"].area > table["seeds"].area
    assert table["seeds"].accuracy > 0.8
    assert table["pendigits"].accuracy > 0.85
    assert table["whitewine"].accuracy > 0.45
    assert table["redwine"].accuracy > 0.45
