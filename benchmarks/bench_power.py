"""Power / energy / battery-lifetime benchmark (supporting analysis).

The paper's evaluation reports area, but its motivation is equally about
power ("operate under tight battery requirements"). This benchmark measures
the power and energy side of the same designs the Figure-1 quantization
sweep produces on WhiteWine: power gain, energy-per-inference gain, and the
printed-battery lifetime at a 1 Hz classification rate, for the best design
within the 5 % accuracy-loss budget.
"""

import pytest

from benchlib import bench_config
from repro.core import MinimizationPipeline, best_area_gain_at_loss
from repro.hardware import battery_life_comparison, energy_gain, energy_per_inference


def _run_power_study():
    pipeline = MinimizationPipeline(bench_config("whitewine"))
    prepared = pipeline.prepare()
    points = pipeline.run_technique("quantization")
    baseline_report = prepared.baseline_point.report

    best = best_area_gain_at_loss(points, prepared.baseline_point, 0.05)
    best_point = next(
        p
        for p in points
        if p.parameters == best.parameters and p.technique == best.technique
    )
    gains = energy_gain(best_point.report, baseline_report)
    battery = battery_life_comparison(
        best_point.report, baseline_report, inferences_per_second=1.0
    )
    return {
        "baseline_power_uw": baseline_report.power,
        "baseline_energy_uj": energy_per_inference(baseline_report),
        "best_weight_bits": best.parameters.get("weight_bits"),
        "power_gain": gains["power_gain"],
        "energy_gain": gains["energy_gain"],
        "baseline_battery_hours": battery["baseline_hours"],
        "minimized_battery_hours": battery["minimized_hours"],
        "battery_lifetime_gain": battery["lifetime_gain"],
    }


@pytest.mark.benchmark(group="power", min_rounds=1, max_time=1.0, warmup=False)
def test_power_and_battery_life(benchmark, print_rows):
    study = benchmark.pedantic(_run_power_study, rounds=1, iterations=1)
    benchmark.extra_info.update(study)
    print_rows([f"{key:<26} {value}" for key, value in study.items()])

    # Power and energy follow area in a bespoke design: the quantized design
    # within the accuracy budget must also be the more power-efficient one.
    assert study["power_gain"] > 1.5
    assert study["energy_gain"] > 1.5
    assert study["battery_lifetime_gain"] > 1.5
