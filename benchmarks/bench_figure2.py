"""Figure 2 reproduction benchmark (experiment E2 in DESIGN.md).

Combined quantization + pruning + weight clustering on the WhiteWine
classifier via the hardware-aware NSGA-II, overlaid on the standalone fronts.
The paper reports up to 8x area gain at the 5 % accuracy-loss budget.
"""

import time

import pytest

from benchlib import FULL, SMOKE, WORKERS, bench_config, record_bench
from repro.experiments import run_figure2
from repro.search import GAConfig


def _ga_config() -> GAConfig:
    if FULL:
        return GAConfig(n_workers=WORKERS)
    if SMOKE:
        return GAConfig(
            population_size=6, n_generations=3, finetune_epochs=3, seed=0,
            n_workers=WORKERS,
        )
    return GAConfig(
        population_size=12, n_generations=6, finetune_epochs=6, seed=0,
        n_workers=WORKERS,
    )


def _run_figure2():
    return run_figure2(
        "whitewine", config=bench_config("whitewine"), ga_config=_ga_config()
    )


@pytest.mark.benchmark(group="figure2", min_rounds=1, max_time=1.0, warmup=False)
def test_fig2_whitewine_combined(benchmark, print_rows):
    start = time.perf_counter()
    result = benchmark.pedantic(_run_figure2, rounds=1, iterations=1)
    wall_clock = time.perf_counter() - start
    benchmark.extra_info["area_gain_at_5pct_loss"] = dict(result.area_gains)
    benchmark.extra_info["ga_evaluations"] = result.ga_result.n_evaluations
    benchmark.extra_info["combined_front_size"] = len(result.fronts["combined"])
    print_rows(result.format_rows())
    record_bench(
        "figure2",
        {
            "wall_clock_s": wall_clock,
            "ga_evaluations": result.ga_result.n_evaluations,
            "evaluations_per_s": result.ga_result.n_evaluations / wall_clock,
            "workers": WORKERS,
        },
    )

    combined = result.area_gains.get("combined")
    standalone = [
        gain
        for technique, gain in result.area_gains.items()
        if technique != "combined" and gain is not None
    ]
    # The paper's qualitative claim: the combined front is at least as good as
    # every standalone front (small tolerance for the reduced GA budget, a
    # larger one for the CI smoke budget).
    assert combined is not None
    assert combined >= max(standalone) * (0.7 if SMOKE else 0.85)
