"""Fault-tolerance benchmark (extension study beyond the paper).

Printed fabrication is defect-prone; a fair comparison of baseline vs
minimized bespoke classifiers should check that the area savings do not come
at the cost of robustness. This benchmark injects open-connection defects at
a 5 % rate into the Seeds baseline and into its 4-bit quantized + 40 %
pruned counterpart and compares the accuracy degradation.
"""

import pytest

from benchlib import bench_config
from repro.core import MinimizationPipeline
from repro.pruning import prune_by_magnitude
from repro.quantization import QATConfig, quantize_aware_train
from repro.reliability import FaultInjectionConfig, compare_fault_tolerance


def _run_reliability_study():
    pipeline = MinimizationPipeline(bench_config("seeds"))
    prepared = pipeline.prepare()
    data = prepared.data

    minimized = prepared.baseline_model.clone()
    prune_by_magnitude(minimized, 0.4)
    quantize_aware_train(minimized, data, QATConfig(weight_bits=4, epochs=8), seed=0)

    campaign = FaultInjectionConfig(
        fault_rate=0.05, fault_model="open", weight_bits=8, n_trials=15, seed=0
    )
    comparison = compare_fault_tolerance(
        {"baseline": prepared.baseline_model, "minimized": minimized},
        data.test.features,
        data.test.labels,
        campaign,
    )
    return {name: result.as_dict() for name, result in comparison.items()}


@pytest.mark.benchmark(group="reliability", min_rounds=1, max_time=1.0, warmup=False)
def test_fault_tolerance_baseline_vs_minimized(benchmark, print_rows):
    study = benchmark.pedantic(_run_reliability_study, rounds=1, iterations=1)
    benchmark.extra_info.update(study)
    print_rows(
        [
            f"{name:<10} fault-free={entry['fault_free_accuracy']:.3f} "
            f"mean={entry['mean_accuracy']:.3f} worst={entry['worst_accuracy']:.3f} "
            f"drop={entry['mean_accuracy_drop']:.3f}"
            for name, entry in study.items()
        ]
    )

    # Both designs must stay functional under a 5 % defect rate, and the
    # minimized design's extra degradation must stay moderate (it has fewer
    # redundant connections, so some extra sensitivity is expected).
    assert study["baseline"]["mean_accuracy"] > 0.6
    assert study["minimized"]["mean_accuracy"] > 0.6
    extra_drop = (
        study["minimized"]["mean_accuracy_drop"] - study["baseline"]["mean_accuracy_drop"]
    )
    assert extra_drop < 0.25
