"""Fault-tolerance benchmarks (extension study beyond the paper).

Two studies:

* ``test_fault_tolerance_baseline_vs_minimized`` — the original float-model
  comparison: open-connection defects at a 5 % rate into the Seeds baseline
  vs its 4-bit quantized + 40 % pruned counterpart.
* ``test_monte_carlo_vectorized_speedup`` — the PR-5 robustness-objective
  hot path: the batched Monte-Carlo kernel vs the retained per-trial
  reference loop on the figure2 (WhiteWine) workload, asserting exact
  equality and recording the speedup to ``BENCH_evaluation.json`` /
  ``BENCH_history.json``. This is the kernel every robustness-aware search
  evaluation runs, so its throughput bounds the cost of the third
  objective.
"""

import pytest

from benchlib import BACKEND, SMOKE, bench_config, record_bench, timed
from repro.bespoke import BespokeConfig, FixedPointSimulator
from repro.core import MinimizationPipeline, PipelineConfig
from repro.pruning import prune_by_magnitude
from repro.quantization import QATConfig, quantize_aware_train
from repro.reliability import (
    FaultInjectionConfig,
    compare_fault_tolerance,
    monte_carlo_fault_injection,
    monte_carlo_fault_injection_reference,
    monte_carlo_population,
)


def _run_reliability_study():
    pipeline = MinimizationPipeline(bench_config("seeds"))
    prepared = pipeline.prepare()
    data = prepared.data

    minimized = prepared.baseline_model.clone()
    prune_by_magnitude(minimized, 0.4)
    quantize_aware_train(minimized, data, QATConfig(weight_bits=4, epochs=8), seed=0)

    campaign = FaultInjectionConfig(
        fault_rate=0.05, fault_model="open", weight_bits=8, n_trials=15, seed=0
    )
    comparison = compare_fault_tolerance(
        {"baseline": prepared.baseline_model, "minimized": minimized},
        data.test.features,
        data.test.labels,
        campaign,
    )
    return {name: result.as_dict() for name, result in comparison.items()}


@pytest.mark.benchmark(group="reliability", min_rounds=1, max_time=1.0, warmup=False)
def test_fault_tolerance_baseline_vs_minimized(benchmark, print_rows):
    study = benchmark.pedantic(_run_reliability_study, rounds=1, iterations=1)
    benchmark.extra_info.update(study)
    print_rows(
        [
            f"{name:<10} fault-free={entry['fault_free_accuracy']:.3f} "
            f"mean={entry['mean_accuracy']:.3f} worst={entry['worst_accuracy']:.3f} "
            f"drop={entry['mean_accuracy_drop']:.3f}"
            for name, entry in study.items()
        ]
    )

    # Both designs must stay functional under a 5 % defect rate, and the
    # minimized design's extra degradation must stay moderate (it has fewer
    # redundant connections, so some extra sensitivity is expected).
    assert study["baseline"]["mean_accuracy"] > 0.6
    assert study["minimized"]["mean_accuracy"] > 0.6
    extra_drop = (
        study["minimized"]["mean_accuracy_drop"] - study["baseline"]["mean_accuracy_drop"]
    )
    assert extra_drop < 0.25


# -- Monte-Carlo kernel throughput (the robustness-objective hot path) ------------

_MC_TRIALS = 24 if SMOKE else 96
_MC_REPEATS = 2 if SMOKE else 3
_MC_POPULATION_BITS = (2, 3, 4, 5, 6, 7, 8) if not SMOKE else (3, 4, 6)


def _best_of(fn, repeats):
    """``(result, best wall-clock)`` of ``fn`` — benchlib.timed plus the value.

    The equality assertions below need the computed results, which
    :func:`benchlib.timed` discards; the warm-up already happened (both
    kernels run once before any timing), so ``warmup=0`` here.
    """
    result = fn()
    stats = timed(fn, repeats, warmup=0)
    return result, stats["best_s"]


def test_monte_carlo_vectorized_speedup(print_rows):
    """Vectorized Monte-Carlo fault injection vs the per-trial reference loop."""
    if SMOKE:
        pipeline = MinimizationPipeline(bench_config("whitewine"))
    else:
        # The full figure2 workload the acceptance numbers are quoted on.
        pipeline = MinimizationPipeline(PipelineConfig(dataset="whitewine"))
    prepared = pipeline.prepare()
    data = prepared.data
    config = FaultInjectionConfig(
        fault_rate=0.05, fault_model="short", n_trials=_MC_TRIALS, seed=0
    )
    simulator = FixedPointSimulator(
        prepared.baseline_model,
        BespokeConfig(input_bits=prepared.config.input_bits, weight_bits=4),
    )

    # Warm numpy/BLAS so neither path pays cold-start dispatch.
    warm = FaultInjectionConfig(fault_rate=0.05, fault_model="short", n_trials=2, seed=0)
    monte_carlo_fault_injection(
        simulator, data.test.features, data.test.labels, warm, backend=BACKEND
    )
    monte_carlo_fault_injection_reference(
        simulator, data.test.features, data.test.labels, warm
    )

    vectorized, vectorized_s = _best_of(
        lambda: monte_carlo_fault_injection(
            simulator, data.test.features, data.test.labels, config, backend=BACKEND
        ),
        _MC_REPEATS,
    )
    reference, reference_s = _best_of(
        lambda: monte_carlo_fault_injection_reference(
            simulator, data.test.features, data.test.labels, config
        ),
        _MC_REPEATS,
    )
    # The speedup claim only counts because the results are *identical*.
    assert vectorized.accuracy_per_trial == reference.accuracy_per_trial
    assert vectorized.faults_per_trial == reference.faults_per_trial
    single_speedup = reference_s / vectorized_s

    # Population form: G same-topology circuits x T trials in one pass —
    # the shape the stacked search engine evaluates every generation.
    simulators = [
        FixedPointSimulator(
            prepared.baseline_model,
            BespokeConfig(input_bits=prepared.config.input_bits, weight_bits=bits),
        )
        for bits in _MC_POPULATION_BITS
    ]
    configs = [
        FaultInjectionConfig(
            fault_rate=0.05, fault_model="short", n_trials=_MC_TRIALS, seed=seed
        )
        for seed in range(len(simulators))
    ]
    population, population_s = _best_of(
        lambda: monte_carlo_population(
            simulators, data.test.features, data.test.labels, configs, backend=BACKEND
        ),
        _MC_REPEATS,
    )
    loop, loop_s = _best_of(
        lambda: [
            monte_carlo_fault_injection_reference(
                simulator, data.test.features, data.test.labels, config
            )
            for simulator, config in zip(simulators, configs)
        ],
        _MC_REPEATS,
    )
    for fast, slow in zip(population, loop):
        assert fast.accuracy_per_trial == slow.accuracy_per_trial
    population_speedup = loop_s / population_s

    trials_per_s = _MC_TRIALS / vectorized_s
    payload = {
        "n_trials": _MC_TRIALS,
        "n_samples": int(data.test.n_samples),
        "backend": BACKEND,
        "single": {
            "reference_s": reference_s,
            "vectorized_s": vectorized_s,
            "speedup": single_speedup,
            "trials_per_s": trials_per_s,
        },
        "population": {
            "n_simulators": len(simulators),
            "reference_s": loop_s,
            "vectorized_s": population_s,
            "speedup": population_speedup,
        },
        "speedup": max(single_speedup, population_speedup),
    }
    record_bench("reliability", payload)
    print_rows(
        [
            f"single     : ref {reference_s * 1e3:7.1f} ms  vec {vectorized_s * 1e3:7.1f} ms "
            f"({single_speedup:.2f}x, {trials_per_s:.0f} trials/s)",
            f"population : ref {loop_s * 1e3:7.1f} ms  vec {population_s * 1e3:7.1f} ms "
            f"({population_speedup:.2f}x over {len(simulators)} circuits)",
        ]
    )
    # Generous CI margins (the absolute acceptance number lives in
    # BENCH_history.json); smoke hardware only needs to show the win exists.
    floor = 1.5 if SMOKE else 2.5
    assert max(single_speedup, population_speedup) > floor, (
        f"Monte-Carlo vectorization too slow: best "
        f"{max(single_speedup, population_speedup):.2f}x (floor {floor}x)"
    )
