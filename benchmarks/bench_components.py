"""Micro-benchmarks of the library's computational kernels.

Not tied to a paper figure: these track the cost of the building blocks the
experiment harness calls thousands of times (training epochs, bespoke
synthesis, genome evaluation, k-means, Pareto extraction), which is what
keeps the full reproduction in the minutes range on a laptop.
"""

import numpy as np
import pytest

from repro.bespoke import BespokeConfig, synthesize
from repro.clustering import kmeans_1d
from repro.core import DesignPoint, pareto_front
from repro.datasets import load_dataset, prepare_split, train_val_test_split
from repro.nn import Trainer, TrainerConfig, build_mlp
from repro.search import EvaluationSettings, Genome, evaluate_genome
from repro.core.pipeline import MinimizationPipeline
from repro.core.config import PipelineConfig


@pytest.fixture(scope="module")
def whitewine_data():
    dataset = load_dataset("whitewine", n_samples=1200)
    return prepare_split(train_val_test_split(dataset, seed=0), input_bits=4)


@pytest.fixture(scope="module")
def whitewine_model(whitewine_data):
    model = build_mlp(11, (8,), 7, seed=0)
    trainer = Trainer(model, config=TrainerConfig(epochs=30, early_stopping_patience=None), seed=0)
    trainer.fit(
        whitewine_data.train.features,
        whitewine_data.train.labels,
        whitewine_data.validation.features,
        whitewine_data.validation.labels,
    )
    return model


@pytest.fixture(scope="module")
def prepared_whitewine():
    config = PipelineConfig(
        dataset="whitewine", n_samples=1200, train_epochs=30, finetune_epochs=4,
    )
    pipeline = MinimizationPipeline(config)
    return pipeline.prepare()


@pytest.mark.benchmark(group="components")
def test_bench_training_epoch(benchmark, whitewine_data):
    """One mini-batch training epoch of the WhiteWine classifier."""
    model = build_mlp(11, (8,), 7, seed=0)
    trainer = Trainer(
        model, config=TrainerConfig(epochs=1, early_stopping_patience=None, shuffle=False), seed=0
    )
    benchmark(
        trainer.fit, whitewine_data.train.features, whitewine_data.train.labels
    )


@pytest.mark.benchmark(group="components")
def test_bench_bespoke_synthesis(benchmark, whitewine_model):
    """Full bespoke synthesis (netlist + report) of the WhiteWine classifier."""
    report = benchmark(
        synthesize, whitewine_model, BespokeConfig(input_bits=4, weight_bits=8)
    )
    benchmark.extra_info["area_mm2"] = report.area
    benchmark.extra_info["n_multipliers"] = report.n_multipliers


@pytest.mark.benchmark(group="components")
def test_bench_inference(benchmark, whitewine_model, whitewine_data):
    """Batch inference over the WhiteWine test split."""
    features = whitewine_data.test.features
    benchmark(whitewine_model.predict, features)


@pytest.mark.benchmark(group="components")
def test_bench_genome_evaluation(benchmark, prepared_whitewine):
    """One GA fitness evaluation (prune + cluster + QAT fine-tune + synthesize)."""
    genome = Genome(weight_bits=(4, 4), sparsity=(0.3, 0.3), clusters=(3, 3))
    point = benchmark.pedantic(
        evaluate_genome,
        args=(genome, prepared_whitewine),
        kwargs={"settings": EvaluationSettings(finetune_epochs=4), "seed": 0},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["accuracy"] = point.accuracy
    benchmark.extra_info["area_mm2"] = point.area


@pytest.mark.benchmark(group="components")
def test_bench_simulate_batch(benchmark, whitewine_model, whitewine_data):
    """Vectorized fixed-point simulation of the whole WhiteWine test split.

    The batched integer datapath is the evaluation hot path of the parallel
    search engine; this tracks its throughput (and `extra_info` records the
    speedup over the scalar golden model on a small slice).
    """
    import time

    from repro.bespoke import FixedPointSimulator

    simulator = FixedPointSimulator(whitewine_model, BespokeConfig(input_bits=4, weight_bits=8))
    features = whitewine_data.test.features
    benchmark(simulator.simulate_batch, features)

    slice_features = features[:64]
    start = time.perf_counter()
    scalar_scores = [simulator.simulate_sample(sample) for sample in slice_features]
    scalar_time = time.perf_counter() - start
    start = time.perf_counter()
    batch_scores = simulator.simulate_batch(slice_features)
    batch_time = time.perf_counter() - start
    assert [list(row) for row in batch_scores] == scalar_scores
    benchmark.extra_info["batch_vs_scalar_speedup"] = scalar_time / max(batch_time, 1e-9)


@pytest.mark.benchmark(group="components")
def test_bench_kmeans_1d(benchmark):
    """1-D k-means on a layer-sized weight vector."""
    values = np.random.default_rng(0).normal(size=512)
    result = benchmark(kmeans_1d, values, 8, seed=0)
    assert len(result.centroids) == 8


@pytest.mark.benchmark(group="components")
def test_bench_pareto_front(benchmark):
    """Pareto extraction over a large cloud of design points."""
    generator = np.random.default_rng(1)
    points = [
        DesignPoint(
            technique="combined",
            accuracy=float(a),
            area=float(r),
        )
        for a, r in zip(generator.uniform(0.3, 1.0, 400), generator.uniform(1, 100, 400))
    ]
    front = benchmark(pareto_front, points)
    assert len(front) >= 1
