"""Figure 1 reproduction benchmarks (experiments E1a-E1d in DESIGN.md).

One benchmark per panel: the accuracy/area Pareto fronts of quantization,
pruning and weight clustering on WhiteWine, RedWine, Pendigits and Seeds,
normalized to the un-minimized bespoke baseline.
"""

import pytest

from benchlib import bench_config
from repro.experiments import run_figure1_panel


def _run_panel(dataset):
    return run_figure1_panel(dataset, config=bench_config(dataset))


def _record(benchmark, panel, print_rows):
    benchmark.extra_info["dataset"] = panel.dataset
    benchmark.extra_info["baseline_accuracy"] = panel.sweep.baseline.accuracy
    benchmark.extra_info["baseline_area_mm2"] = panel.sweep.baseline.area
    benchmark.extra_info["area_gain_at_5pct_loss"] = {
        technique: gain for technique, gain in panel.area_gains.items()
    }
    print_rows(panel.format_rows())
    print_rows(
        [
            f"gain@5%loss {technique:<13} "
            + (f"{gain:.2f}x" if gain is not None else "not reached")
            for technique, gain in panel.area_gains.items()
        ]
    )


@pytest.mark.benchmark(group="figure1", min_rounds=1, max_time=1.0, warmup=False)
def test_fig1_whitewine(benchmark, print_rows):
    """Figure 1(a): WhiteWine standalone Pareto fronts."""
    panel = benchmark.pedantic(_run_panel, args=("whitewine",), rounds=1, iterations=1)
    _record(benchmark, panel, print_rows)
    assert panel.area_gains["quantization"] is not None


@pytest.mark.benchmark(group="figure1", min_rounds=1, max_time=1.0, warmup=False)
def test_fig1_redwine(benchmark, print_rows):
    """Figure 1(b): RedWine standalone Pareto fronts."""
    panel = benchmark.pedantic(_run_panel, args=("redwine",), rounds=1, iterations=1)
    _record(benchmark, panel, print_rows)
    assert panel.area_gains["quantization"] is not None


@pytest.mark.benchmark(group="figure1", min_rounds=1, max_time=1.0, warmup=False)
def test_fig1_pendigits(benchmark, print_rows):
    """Figure 1(c): Pendigits standalone Pareto fronts."""
    panel = benchmark.pedantic(_run_panel, args=("pendigits",), rounds=1, iterations=1)
    _record(benchmark, panel, print_rows)
    assert panel.area_gains["quantization"] is not None


@pytest.mark.benchmark(group="figure1", min_rounds=1, max_time=1.0, warmup=False)
def test_fig1_seeds(benchmark, print_rows):
    """Figure 1(d): Seeds standalone Pareto fronts."""
    panel = benchmark.pedantic(_run_panel, args=("seeds",), rounds=1, iterations=1)
    _record(benchmark, panel, print_rows)
    assert panel.area_gains["quantization"] is not None
