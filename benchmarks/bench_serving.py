"""Serving-layer benchmark: cold-load, hot-path latency, HTTP throughput.

Three measurements over synthetic (but schema-faithful) campaign fronts:

* **Cold load** — first query against a fresh store over an
  ``N_COLD``-point front, columnar ``front_<ds>.npz`` present vs JSON
  only. The npz path skips JSON decode, per-point construction and the
  Pareto merge (mmap + slice), and the recorded ``speedup`` is the
  PR-level claim for the columnar format.
* **Hot query path** — the in-process :class:`~repro.serving.QueryEngine`
  on an LRU-warm store: per-query p50/p99 latency and sustained
  queries/s. This is the floor the acceptance criterion pins (≥1000
  req/s warm) — it excludes socket costs, isolating store + engine.
* **HTTP load** — N keep-alive client threads hammering ``POST /query``
  on the threaded stdlib server: end-to-end throughput plus client-side
  p50/p99, with the server's own ``/metrics`` histogram recorded
  alongside.

Numbers land in the ``serving`` section of ``BENCH_evaluation.json`` and
the ``BENCH_history.json`` trajectory.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from benchlib import SMOKE, record_bench, timed
from repro.campaign.columnar import front_npz_path, write_front_npz
from repro.campaign.journal import REPORT_DIR, write_json_atomic
from repro.serving import FrontStore, QueryEngine, start_server

#: Hot-path throughput floor (queries/s) enforced by this benchmark.
HOT_QPS_FLOOR = 1000.0

N_POINTS = 24 if SMOKE else 64
N_COLD = 256 if SMOKE else 1024
COLD_REPEATS = 5 if SMOKE else 10
HOT_QUERIES = 2_000 if SMOKE else 10_000
HTTP_THREADS = 2 if SMOKE else 4
HTTP_REQUESTS_PER_THREAD = 150 if SMOKE else 500

#: Query mix cycled through both measurements: constraint-only, top-k
#: ranked, and nearest-trade-off — the three hot shapes of the API.
QUERY_MIX = (
    {"dataset": "seeds", "min_accuracy": 0.7, "max_area": 4.0},
    {"dataset": "seeds", "order_by": "accuracy", "descending": True, "top_k": 5},
    {"dataset": "seeds", "nearest": {"accuracy": 0.85, "area": 2.0}, "top_k": 3},
)


def _percentile(samples, quantile):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(quantile * len(ordered)))
    return ordered[index]


def _make_campaign(root, n_points):
    """A campaign directory with one synthetic (Pareto-shaped) front."""
    rows = []
    for i in range(n_points):
        fraction = i / max(1, n_points - 1)
        rows.append(
            {
                "technique": "combined",
                "accuracy": round(0.6 + 0.35 * fraction, 4),
                "area": round(0.5 + 6.0 * fraction**2, 4),
                "power": round(0.2 + 3.0 * fraction**2, 4),
                "delay": round(0.1 + 1.0 * fraction, 4),
                "parameters": {"weight_bits": 2 + (i % 5)},
                "robust_accuracy": round(0.55 + 0.3 * fraction, 4),
                "accuracy_std": 0.01,
            }
        )
    campaign = root / "camp"
    (campaign / REPORT_DIR).mkdir(parents=True)
    write_json_atomic(
        campaign / REPORT_DIR / "front_seeds.json",
        {"dataset": "seeds", "baseline": None, "front": rows, "combined_best_gain": 2.0},
    )
    return campaign


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    campaign = _make_campaign(tmp_path_factory.mktemp("serving"), N_POINTS)
    return FrontStore(campaign)


def _cold_load_section(root):
    """Cold first-query latency, npz-backed vs JSON-only, over one front."""
    campaign = _make_campaign(root, N_COLD)
    json_path = campaign / REPORT_DIR / "front_seeds.json"
    payload = {"dataset": "seeds", "min_accuracy": 0.7, "top_k": 5}

    def cold_query():
        QueryEngine(FrontStore(campaign)).run(payload)

    json_timing = timed(cold_query, repeats=COLD_REPEATS)
    write_front_npz(json_path)
    npz_store = FrontStore(campaign)
    QueryEngine(npz_store).run(payload)
    assert npz_store.stats()["npz_loads"] == 1  # the fast path is actually taken
    npz_timing = timed(cold_query, repeats=COLD_REPEATS)
    front_npz_path(json_path).unlink()
    return {
        "front_points": N_COLD,
        "json_ms": round(json_timing["best_s"] * 1e3, 4),
        "npz_ms": round(npz_timing["best_s"] * 1e3, 4),
        "speedup": round(json_timing["best_s"] / npz_timing["best_s"], 2),
    }


def test_serving_hot_path_and_http_throughput(store, tmp_path):
    engine = QueryEngine(store)

    # -- cold first-query path: columnar npz vs canonical JSON ---------------
    cold = _cold_load_section(tmp_path)

    # -- hot (LRU-warm) in-process query path --------------------------------
    for payload in QUERY_MIX:  # warm the LRU and the JIT-ish caches
        engine.run(payload)
    latencies = []
    start = time.perf_counter()
    for i in range(HOT_QUERIES):
        t0 = time.perf_counter()
        engine.run(QUERY_MIX[i % len(QUERY_MIX)])
        latencies.append(time.perf_counter() - t0)
    hot_wall = time.perf_counter() - start
    hot_qps = HOT_QUERIES / hot_wall
    hot = {
        "queries": HOT_QUERIES,
        "qps": round(hot_qps, 1),
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 4),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 4),
    }

    # -- HTTP layer under concurrent keep-alive load -------------------------
    server, _thread = start_server(store)
    host, port = server.server_address[:2]
    bodies = [json.dumps(payload).encode() for payload in QUERY_MIX]
    http_latencies_per_thread = [[] for _ in range(HTTP_THREADS)]
    errors = []
    barrier = threading.Barrier(HTTP_THREADS + 1)

    def client(thread_index):
        connection = http.client.HTTPConnection(host, port, timeout=30)
        samples = http_latencies_per_thread[thread_index]
        barrier.wait()
        for i in range(HTTP_REQUESTS_PER_THREAD):
            body = bodies[i % len(bodies)]
            t0 = time.perf_counter()
            connection.request(
                "POST", "/query", body=body, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            payload = response.read()
            samples.append(time.perf_counter() - t0)
            if response.status != 200 or not payload:
                errors.append(response.status)
        connection.close()

    threads = [
        threading.Thread(target=client, args=(index,)) for index in range(HTTP_THREADS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    http_start = time.perf_counter()
    for thread in threads:
        thread.join()
    http_wall = time.perf_counter() - http_start
    metrics = server.metrics.snapshot()
    server.shutdown()
    server.server_close()

    assert errors == [], f"non-200 responses under load: {errors[:5]}"
    http_latencies = [s for samples in http_latencies_per_thread for s in samples]
    total_requests = HTTP_THREADS * HTTP_REQUESTS_PER_THREAD
    http_stats = {
        "threads": HTTP_THREADS,
        "requests": total_requests,
        "qps": round(total_requests / http_wall, 1),
        "p50_ms": round(_percentile(http_latencies, 0.50) * 1e3, 4),
        "p99_ms": round(_percentile(http_latencies, 0.99) * 1e3, 4),
        "server_p99_ms": metrics["latency"]["p99_ms"],
    }

    payload = {
        "front_points": N_POINTS,
        "cold_load": cold,
        "hot_query": hot,
        "http": http_stats,
    }
    record_bench("serving", payload)
    print(f"\nserving bench: {json.dumps(payload, indent=2)}")

    # The acceptance floor: the LRU-warm query path must sustain >=1000 req/s.
    assert hot_qps >= HOT_QPS_FLOOR, (
        f"hot query path sustained {hot_qps:.0f} req/s, floor is {HOT_QPS_FLOOR:.0f}"
    )
