"""Headline-number benchmark (experiment E3 in DESIGN.md).

Recomputes the four numbers quoted in the paper's evaluation text — average
area gain at <=5 % accuracy loss for quantization (paper: ~5x), pruning
(~2.8x), clustering (~3.5x) and the GA combination (up to 8x, WhiteWine) —
and reports measured vs paper values.
"""

import pytest

from benchlib import FULL, bench_config
from repro.experiments import run_figure1_panel, run_figure2, summarize_sweeps
from repro.search import GAConfig


def _run_summary():
    datasets = ("whitewine", "redwine", "pendigits", "seeds")
    panels = {name: run_figure1_panel(name, config=bench_config(name)) for name in datasets}
    ga_config = (
        GAConfig()
        if FULL
        else GAConfig(population_size=12, n_generations=6, finetune_epochs=6, seed=0)
    )
    combined = run_figure2(
        "whitewine", config=bench_config("whitewine"), ga_config=ga_config
    )
    sweeps = {name: panel.sweep for name, panel in panels.items()}
    return summarize_sweeps(sweeps, combined)


@pytest.mark.benchmark(group="summary", min_rounds=1, max_time=1.0, warmup=False)
def test_headline_area_gains(benchmark, print_rows):
    summary = benchmark.pedantic(_run_summary, rounds=1, iterations=1)
    benchmark.extra_info["measured"] = dict(summary.measured)
    benchmark.extra_info["paper"] = dict(summary.paper)
    benchmark.extra_info["per_dataset"] = {
        dataset: gains for dataset, gains in summary.per_dataset.items()
    }
    print_rows(summary.format_rows())
    for dataset, gains in summary.per_dataset.items():
        print_rows(
            [
                f"  {dataset:<12} {technique:<13} "
                + (f"{gain:.2f}x" if gain is not None else "not reached")
                for technique, gain in gains.items()
            ]
        )

    # Shape checks: quantization is the strongest standalone technique and
    # the combined search reaches the largest gain overall.
    measured = summary.measured
    assert measured["quantization"] > measured["pruning"]
    assert measured["combined"] >= measured["quantization"] * 0.8
