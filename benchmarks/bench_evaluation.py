"""Hot-path micro-benchmarks of the per-genome evaluation engine.

Times the three layers PR 2 rebuilt — the fused QAT training step, the
memoized hardware-cost kernels behind (cost-only) synthesis, and the whole
``evaluate_genome`` composition — on the whitewine pipeline, and records the
numbers to ``BENCH_evaluation.json`` at the repo root so the perf trajectory
is tracked across PRs (see ``docs/performance.md``).

Run with ``REPRO_BENCH_SMOKE=1`` on CI (reduced data/epochs); unset for the
full whitewine configuration the acceptance numbers are quoted on.
"""

from __future__ import annotations

import pytest

from benchlib import SMOKE, bench_config, record_bench, timed
from repro.bespoke import BespokeConfig, synthesize, synthesize_cost_only
from repro.core import MinimizationPipeline
from repro.nn.optimizers import Adam
from repro.nn.trainer import Trainer, TrainerConfig
from repro.quantization import attach_quantizers
from repro.search import EvaluationSettings, Genome, evaluate_genome, genome_seed

#: Representative mid-range genome (all three techniques active).
_GENOME = Genome(weight_bits=(4, 4), sparsity=(0.4, 0.4), clusters=(4, 4))

_REPEATS = 3 if SMOKE else 10


@pytest.fixture(scope="module")
def prepared():
    return MinimizationPipeline(bench_config("whitewine")).prepare()


def test_evaluate_genome_latency(prepared):
    settings = EvaluationSettings(
        finetune_epochs=prepared.config.finetune_epochs,
    )
    seed = genome_seed(0, _GENOME)
    stats = timed(
        lambda: evaluate_genome(_GENOME, prepared, settings, seed=seed),
        repeats=_REPEATS,
    )
    stats["genome"] = _GENOME.as_dict()
    record_bench("evaluate_genome", stats)
    assert stats["best_s"] > 0


def test_synthesize_latency(prepared):
    model = prepared.baseline_model
    config = BespokeConfig(input_bits=prepared.config.input_bits, weight_bits=8)
    full = timed(
        lambda: synthesize(model, config=config, tech=prepared.technology),
        repeats=_REPEATS * 3,
    )
    cost_only = timed(
        lambda: synthesize_cost_only(model, config=config, tech=prepared.technology),
        repeats=_REPEATS * 3,
    )
    record_bench("synthesize", {"netlist": full, "cost_only": cost_only})
    # The cost-only path must never be slower than building the full netlist.
    assert cost_only["best_s"] <= full["best_s"] * 1.5


def test_trainer_throughput(prepared):
    data = prepared.data
    epochs = 4 if SMOKE else 8

    def run():
        model = prepared.baseline_model.clone()
        attach_quantizers(model, 4)
        trainer = Trainer(
            model,
            optimizer=Adam(learning_rate=0.003),
            config=TrainerConfig(
                epochs=epochs,
                batch_size=32,
                early_stopping_patience=None,
                restore_best_weights=False,
            ),
            seed=0,
        )
        trainer.fit(
            data.train.features,
            data.train.labels,
            data.validation.features,
            data.validation.labels,
        )

    stats = timed(run, repeats=_REPEATS)
    stats["epochs"] = epochs
    stats["epochs_per_s"] = epochs / stats["best_s"]
    record_bench("trainer", stats)
    assert stats["epochs_per_s"] > 0
