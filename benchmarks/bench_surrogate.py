"""Surrogate-assisted search benchmark: evaluations saved vs front quality.

Runs the 3-objective (robustness-aware) figure2 smoke workload twice — a
plain NSGA-II baseline and the surrogate-assisted GA — and records the
ratio of real full-budget evaluations alongside the hypervolume ratio of
the two measured fronts. The acceptance floors: the assisted run must use
at least 3x (CI smoke) / 5x (default and full modes) fewer real
evaluations while keeping at least 98 % of the baseline hypervolume.

Both runs are fully seeded, so the recorded numbers are reproducible
bit-for-bit on any machine.
"""

import time

import pytest

from benchlib import FULL, SMOKE, WORKERS, record_bench
from repro.core import MinimizationPipeline, PipelineConfig
from repro.core.pareto import hypervolume_objectives
from repro.search import GAConfig, HardwareAwareGA, objectives_of

#: Fixed nadir reference for the minimized 3-objective space (accuracy
#: loss, normalized area, robust accuracy loss) — all three are <= 1 for
#: any point that beats "predict nothing", so (1.1, 1.1, 1.1) dominates
#: every front point and keeps hypervolumes comparable across runs.
REFERENCE = (1.1, 1.1, 1.1)

#: Floors enforced on the recorded numbers (the ISSUE acceptance bars).
MIN_EVALUATIONS_SAVED = 3.0 if SMOKE else 5.0
MIN_HYPERVOLUME_RATIO = 0.98


def _pipeline_config() -> PipelineConfig:
    """The figure2 smoke workload (identical across bench modes: the A/B
    compares search strategies, not evaluation budgets)."""
    return PipelineConfig(
        dataset="whitewine",
        seed=0,
        train_epochs=25,
        finetune_epochs=4,
        bit_range=(2, 4, 6),
        sparsity_range=(0.3, 0.5),
        cluster_range=(2, 4),
        n_samples=500,
        n_workers=WORKERS,
    )


def _ga_knobs() -> dict:
    """Shared GA budget of both runs (robustness on => 3 objectives)."""
    if SMOKE:
        return dict(population_size=10, n_generations=20)
    if FULL:
        return dict(population_size=20, n_generations=28)
    return dict(population_size=20, n_generations=20)


def _surrogate_knobs() -> dict:
    if SMOKE:
        return dict(
            surrogate="ridge",
            surrogate_candidates=4,
            surrogate_prefilter=0.2,
            halving_budgets=(1, 2),
        )
    return dict(
        surrogate="ridge",
        surrogate_candidates=8,
        surrogate_prefilter=0.1,
        halving_budgets=(1, 2),
    )


def _ga_config(**extra) -> GAConfig:
    knobs = dict(
        finetune_epochs=4, seed=0, fault_rate=0.05, n_fault_trials=4,
        n_workers=WORKERS, **_ga_knobs(),
    )
    knobs.update(extra)
    return GAConfig(**knobs)


def _front_hypervolume(result, prepared) -> float:
    objectives = [
        objectives_of(point, prepared.baseline_point, robust=True)
        for point in result.front
    ]
    return hypervolume_objectives(objectives, REFERENCE)


def _run_ab():
    prepared = MinimizationPipeline(_pipeline_config()).prepare()

    start = time.perf_counter()
    baseline = HardwareAwareGA(prepared, config=_ga_config()).run()
    baseline_s = time.perf_counter() - start

    start = time.perf_counter()
    assisted = HardwareAwareGA(
        prepared, config=_ga_config(**_surrogate_knobs())
    ).run()
    assisted_s = time.perf_counter() - start

    return {
        "prepared": prepared,
        "baseline": baseline,
        "assisted": assisted,
        "baseline_s": baseline_s,
        "assisted_s": assisted_s,
    }


@pytest.mark.benchmark(group="surrogate", min_rounds=1, max_time=1.0, warmup=False)
def test_surrogate_saves_evaluations(benchmark, print_rows):
    run = benchmark.pedantic(_run_ab, rounds=1, iterations=1)
    baseline, assisted = run["baseline"], run["assisted"]

    hv_baseline = _front_hypervolume(baseline, run["prepared"])
    hv_assisted = _front_hypervolume(assisted, run["prepared"])
    evaluations_saved = baseline.n_evaluations / assisted.n_evaluations
    hypervolume_ratio = hv_assisted / hv_baseline

    payload = {
        "baseline_evaluations": baseline.n_evaluations,
        "assisted_evaluations": assisted.n_evaluations,
        "assisted_partial_evaluations": assisted.n_partial_evaluations,
        "evaluations_saved_ratio": round(evaluations_saved, 4),
        "hypervolume_ratio": round(hypervolume_ratio, 4),
        "baseline_hypervolume": round(hv_baseline, 6),
        "assisted_hypervolume": round(hv_assisted, 6),
        "baseline_wall_clock_s": round(run["baseline_s"], 3),
        "assisted_wall_clock_s": round(run["assisted_s"], 3),
        "workers": WORKERS,
    }
    benchmark.extra_info.update(payload)
    record_bench("surrogate", payload)
    print_rows(
        [
            f"baseline GA: {baseline.n_evaluations} real evaluations, "
            f"hypervolume {hv_baseline:.4f}",
            f"assisted GA: {assisted.n_evaluations} real evaluations "
            f"(+{assisted.n_partial_evaluations} short-budget), "
            f"hypervolume {hv_assisted:.4f}",
            f"evaluations saved: {evaluations_saved:.2f}x, "
            f"hypervolume kept: {hypervolume_ratio:.4f}",
        ]
    )

    assert evaluations_saved >= MIN_EVALUATIONS_SAVED
    assert hypervolume_ratio >= MIN_HYPERVOLUME_RATIO
    # The short-budget races must never outnumber the evaluations the
    # surrogate saved (they cost ~finetune_epochs/budget less each, but a
    # runaway halving schedule would silently erode the win).
    saved = baseline.n_evaluations - assisted.n_evaluations
    budgets = _surrogate_knobs()["halving_budgets"]
    partial_cost = sum(
        assisted.n_partial_evaluations * b / (4 * len(budgets)) for b in budgets
    )
    assert partial_cost < saved
