"""Fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's reported artefacts (Figure 1
panels, Figure 2, the headline gains, the baseline table) or one ablation
from DESIGN.md section 7. Results are attached to pytest-benchmark's
``extra_info`` so that ``--benchmark-json`` output contains both the timing
and the reproduced numbers, and the key rows are printed so ``-s`` shows them.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def print_rows():
    """Helper printing experiment rows beneath the benchmark output."""

    def _print(rows):
        print()
        for row in rows:
            print(row)

    return _print
