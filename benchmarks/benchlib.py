"""Shared configuration helpers for the benchmark harness.

See ``benchmarks/conftest.py`` for the fixtures; this module holds the plain
functions/constants the benchmark files import directly.
"""

from __future__ import annotations

import os

from repro.core import PipelineConfig

#: Set REPRO_FULL_BENCH=1 to run the paper-faithful (slower) settings.
FULL = os.environ.get("REPRO_FULL_BENCH", "0") == "1"


def bench_config(dataset: str) -> PipelineConfig:
    """Pipeline configuration used by the benchmark harness for one dataset."""
    if FULL:
        return PipelineConfig(dataset=dataset)
    return PipelineConfig(
        dataset=dataset,
        seed=0,
        finetune_epochs=8,
        bit_range=(2, 3, 4, 5, 6, 7),
        sparsity_range=(0.2, 0.3, 0.4, 0.5, 0.6),
        cluster_range=(2, 3, 4, 6, 8),
        n_samples=None if dataset == "seeds" else 1200,
    )
