"""Shared configuration helpers for the benchmark harness.

See ``benchmarks/conftest.py`` for the fixtures; this module holds the plain
functions/constants the benchmark files import directly.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path

from repro.core import PipelineConfig

#: Machine-readable perf record tracked across PRs (see docs/performance.md).
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_evaluation.json"

#: Append-only perf trajectory, one entry per git commit that ran benchmarks.
BENCH_HISTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_history.json"

#: Set REPRO_FULL_BENCH=1 to run the paper-faithful (slower) settings.
FULL = os.environ.get("REPRO_FULL_BENCH", "0") == "1"

#: Set REPRO_BENCH_SMOKE=1 for the minimal CI configuration: tiny data and
#: search budgets, just enough signal to catch gross perf/quality regressions.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"

#: Worker processes for search benchmarks (REPRO_BENCH_WORKERS, default serial).
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))

#: Array backend the kernels run on (REPRO_BENCH_BACKEND, default numpy).
#: Recorded with every section so BENCH_history.json entries from different
#: backends are never conflated; the numpy regression floors only apply to
#: numpy-backend runs.
BACKEND = os.environ.get("REPRO_BENCH_BACKEND") or "numpy"


def _bench_mode() -> str:
    return "full" if FULL else ("smoke" if SMOKE else "default")


def _git_commit() -> str:
    """Short hash of HEAD, or ``"unknown"`` outside a git checkout."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=BENCH_JSON_PATH.parent,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if result.returncode != 0:
        return "unknown"
    return result.stdout.strip() or "unknown"


def _append_history(section: str, payload: dict) -> None:
    """Append/merge one section into the commit-keyed ``BENCH_history.json``.

    The history is an append-only trajectory: one entry per git commit (in
    run order), each accumulating the sections measured while that commit
    was checked out. ``BENCH_evaluation.json`` always reflects the *latest*
    numbers; the history is what makes regressions and wins visible across
    PRs.
    """
    history: dict = {}
    if BENCH_HISTORY_PATH.exists():
        try:
            history = json.loads(BENCH_HISTORY_PATH.read_text())
        except json.JSONDecodeError:
            history = {}
    entries = history.setdefault("entries", [])
    commit = _git_commit()
    now = round(time.time(), 3)
    entry = entries[-1] if entries and entries[-1].get("commit") == commit else None
    if entry is None:
        entry = {"commit": commit, "first_unix": now, "sections": {}}
        entries.append(entry)
    entry["last_unix"] = now
    # Provenance is per section, not per entry: different benchmarks at the
    # same commit may run under different modes/worker counts, and the
    # trajectory must not mislabel one run's numbers with another's setup.
    entry.setdefault("sections", {})[section] = {
        "payload": payload,
        "mode": _bench_mode(),
        "workers": WORKERS,
        "backend": BACKEND,
        "python": platform.python_version(),
        "unix": now,
    }
    BENCH_HISTORY_PATH.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


def record_bench(section: str, payload: dict) -> None:
    """Record one section of perf numbers.

    Two artifacts are written at the repo root:

    * ``BENCH_evaluation.json`` — the machine-readable *current* numbers:
      per-genome evaluation latency, synthesis latency, trainer throughput,
      generation throughput and the figure2 smoke wall-clock, refreshed by
      whichever benchmark ran last (sections are merged, not clobbered).
      CI uploads it as an artifact and enforces a regression floor on it.
    * ``BENCH_history.json`` — the append-only trajectory of those numbers
      keyed by git commit, so the perf history of the repo is preserved
      instead of being overwritten on every run.
    """
    data: dict = {}
    if BENCH_JSON_PATH.exists():
        try:
            data = json.loads(BENCH_JSON_PATH.read_text())
        except json.JSONDecodeError:
            data = {}
    meta = data.setdefault("meta", {})
    meta.update(
        {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "updated_unix": round(time.time(), 3),
            "mode": _bench_mode(),
            "workers": WORKERS,
            "backend": BACKEND,
        }
    )
    data[section] = payload
    BENCH_JSON_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    _append_history(section, payload)


def timed(fn, repeats: int, warmup: int = 1) -> dict:
    """Best/mean wall-clock of ``fn()`` over ``repeats`` runs (seconds)."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return {
        "best_s": min(samples),
        "mean_s": sum(samples) / len(samples),
        "repeats": repeats,
    }


def bench_config(dataset: str) -> PipelineConfig:
    """Pipeline configuration used by the benchmark harness for one dataset."""
    if FULL:
        return PipelineConfig(dataset=dataset, n_workers=WORKERS)
    if SMOKE:
        return PipelineConfig(
            dataset=dataset,
            seed=0,
            train_epochs=25,
            finetune_epochs=4,
            bit_range=(2, 4, 6),
            sparsity_range=(0.3, 0.5),
            cluster_range=(2, 4),
            n_samples=None if dataset == "seeds" else 500,
            n_workers=WORKERS,
        )
    return PipelineConfig(
        dataset=dataset,
        seed=0,
        finetune_epochs=8,
        bit_range=(2, 3, 4, 5, 6, 7),
        sparsity_range=(0.2, 0.3, 0.4, 0.5, 0.6),
        cluster_range=(2, 3, 4, 6, 8),
        n_samples=None if dataset == "seeds" else 1200,
        n_workers=WORKERS,
    )
