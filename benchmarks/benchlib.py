"""Shared configuration helpers for the benchmark harness.

See ``benchmarks/conftest.py`` for the fixtures; this module holds the plain
functions/constants the benchmark files import directly.
"""

from __future__ import annotations

import os

from repro.core import PipelineConfig

#: Set REPRO_FULL_BENCH=1 to run the paper-faithful (slower) settings.
FULL = os.environ.get("REPRO_FULL_BENCH", "0") == "1"

#: Set REPRO_BENCH_SMOKE=1 for the minimal CI configuration: tiny data and
#: search budgets, just enough signal to catch gross perf/quality regressions.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"

#: Worker processes for search benchmarks (REPRO_BENCH_WORKERS, default serial).
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def bench_config(dataset: str) -> PipelineConfig:
    """Pipeline configuration used by the benchmark harness for one dataset."""
    if FULL:
        return PipelineConfig(dataset=dataset, n_workers=WORKERS)
    if SMOKE:
        return PipelineConfig(
            dataset=dataset,
            seed=0,
            train_epochs=25,
            finetune_epochs=4,
            bit_range=(2, 4, 6),
            sparsity_range=(0.3, 0.5),
            cluster_range=(2, 4),
            n_samples=None if dataset == "seeds" else 500,
            n_workers=WORKERS,
        )
    return PipelineConfig(
        dataset=dataset,
        seed=0,
        finetune_epochs=8,
        bit_range=(2, 3, 4, 5, 6, 7),
        sparsity_range=(0.2, 0.3, 0.4, 0.5, 0.6),
        cluster_range=(2, 3, 4, 6, 8),
        n_samples=None if dataset == "seeds" else 1200,
        n_workers=WORKERS,
    )
