"""Campaign orchestration benchmark: overhead and cached-resume speedup.

The campaign layer (PR 4) wraps the search kernel in journaling, a
persistent evaluation cache and atomic artifact writes. This benchmark
measures what that wrapper costs and what the cache buys:

* **Orchestration overhead** — a 2-job campaign (seeds + redwine, small GA)
  run through :class:`repro.campaign.CampaignRunner` versus the same two
  searches driven directly; the delta is journal/cache/artifact time.
* **Cached resume** — re-running the same campaign into a fresh directory
  that shares the warm cache shards: every evaluation is served from disk,
  so the speedup shows the per-genome record replay rate.

Numbers land in the ``campaign`` section of ``BENCH_evaluation.json`` and
the ``BENCH_history.json`` trajectory.
"""

from __future__ import annotations

import shutil
import time

import pytest

from benchlib import SMOKE, record_bench
from repro.campaign import CampaignRunner, CampaignSpec
from repro.core import MinimizationPipeline
from repro.search import EvaluationSettings, GAConfig, HardwareAwareGA

_SPEC_DATA = {
    "name": "bench",
    "datasets": ["seeds", "redwine"],
    "pipeline": {
        "train_epochs": 5 if SMOKE else 20,
        "n_samples": 150 if SMOKE else 400,
        "finetune_epochs": 2,
    },
    "searches": [
        {
            "algorithm": "ga",
            "population_size": 6 if SMOKE else 10,
            "n_generations": 2 if SMOKE else 4,
            "finetune_epochs": 2,
        }
    ],
}


@pytest.fixture(scope="module")
def spec():
    return CampaignSpec.from_dict(_SPEC_DATA)


def _run_campaign(spec, directory):
    start = time.perf_counter()
    summary = CampaignRunner(spec, directory).run()
    assert summary.ok, [outcome.error for outcome in summary.outcomes]
    return time.perf_counter() - start, summary


def _run_bare_searches(spec):
    """The same searches the campaign runs, without the orchestration layer."""
    start = time.perf_counter()
    evaluations = 0
    for job in spec.expand():
        prepared = MinimizationPipeline(job.pipeline_config()).prepare()
        params = job.search_params()
        config = GAConfig(**params, seed=job.seed)
        settings = EvaluationSettings(finetune_epochs=config.finetune_epochs)
        result = HardwareAwareGA(prepared, config=config, settings=settings).run()
        evaluations += result.n_evaluations
    return time.perf_counter() - start, evaluations


def test_campaign_overhead_and_cached_resume(spec, tmp_path):
    # Warm-up: one throwaway campaign pays numpy/memo cold-start for both paths.
    _run_campaign(spec, tmp_path / "warmup")

    bare_s, evaluations = _run_bare_searches(spec)
    cold_s, cold_summary = _run_campaign(spec, tmp_path / "cold")
    assert sum(o.n_evaluations for o in cold_summary.outcomes) == evaluations

    # Re-running a completed campaign (journal fast-path): pure resume check.
    noop_start = time.perf_counter()
    CampaignRunner(spec, tmp_path / "cold").run()
    noop_s = time.perf_counter() - noop_start

    # Fresh directory, warm cache shards: every genome replays from disk.
    warm_dir = tmp_path / "warm"
    warm_dir.mkdir()
    shutil.copytree(tmp_path / "cold" / "cache", warm_dir / "cache")
    warm_s, warm_summary = _run_campaign(spec, warm_dir)
    assert sum(o.n_evaluations for o in warm_summary.outcomes) == 0  # all cached

    overhead_s = cold_s - bare_s
    payload = {
        "jobs": len(spec.expand()),
        "evaluations": evaluations,
        "bare_search_s": bare_s,
        "campaign_s": cold_s,
        "orchestration_overhead_s": overhead_s,
        "noop_rerun_s": noop_s,
        "cached_resume_s": warm_s,
        "cached_resume_speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
    }
    record_bench("campaign", payload)
    print(
        f"\ncampaign: bare {bare_s:.2f}s, orchestrated {cold_s:.2f}s "
        f"(overhead {overhead_s * 1e3:.0f} ms), cached resume {warm_s:.2f}s "
        f"({payload['cached_resume_speedup']:.1f}x), no-op rerun {noop_s * 1e3:.0f} ms"
    )

    # Orchestration must stay a thin wrapper and the cache must actually pay:
    # generous CI-safe floors, the absolute numbers live in the JSON artifact.
    assert overhead_s < max(1.0, 0.5 * bare_s), (
        f"campaign orchestration overhead too high: {overhead_s:.2f}s "
        f"on top of {bare_s:.2f}s of search"
    )
    assert warm_s < cold_s, "cached resume must beat the cold campaign"
    assert noop_s < 1.0, f"no-op rerun of a completed campaign took {noop_s:.2f}s"
