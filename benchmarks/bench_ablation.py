"""Ablation benchmarks for the design choices listed in DESIGN.md §7.

These quantify the sensitivity of the reproduction to its modelling and
algorithmic choices: CSD vs binary multipliers, input bit-width, clustering
granularity, and QAT vs PTQ.
"""

import pytest

from benchlib import bench_config
from repro.experiments import (
    clustering_granularity,
    csd_vs_binary,
    input_bitwidth_sensitivity,
    qat_vs_ptq,
)

CONFIG = bench_config("whitewine")


@pytest.mark.benchmark(group="ablation", min_rounds=1, max_time=1.0, warmup=False)
def test_ablation_csd_vs_binary(benchmark, print_rows):
    """CSD recoding vs naive binary shift-add constant multipliers."""
    result = benchmark.pedantic(
        csd_vs_binary, kwargs={"dataset": "whitewine", "config": CONFIG}, rounds=1, iterations=1
    )
    benchmark.extra_info.update(result.values)
    print_rows(result.format_rows())
    assert result.values["binary_over_csd"] >= 1.0


@pytest.mark.benchmark(group="ablation", min_rounds=1, max_time=1.0, warmup=False)
def test_ablation_input_bitwidth(benchmark, print_rows):
    """Baseline area as a function of the input bit-width (3-6 bits)."""
    result = benchmark.pedantic(
        input_bitwidth_sensitivity,
        kwargs={"dataset": "whitewine", "input_bit_range": (3, 4, 5, 6), "config": CONFIG},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(result.values)
    print_rows(result.format_rows())
    areas = [result.values[f"input_bits_{bits}"] for bits in (3, 4, 5, 6)]
    assert areas == sorted(areas)


@pytest.mark.benchmark(group="ablation", min_rounds=1, max_time=1.0, warmup=False)
def test_ablation_clustering_granularity(benchmark, print_rows):
    """Per-input-position clustering (paper) vs one codebook per layer."""
    result = benchmark.pedantic(
        clustering_granularity,
        kwargs={"dataset": "whitewine", "n_clusters": 4, "config": CONFIG},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(result.values)
    print_rows(result.format_rows())
    # Per-position clustering is what enables product sharing, so it must not
    # give a larger circuit than the whole-layer variant.
    assert result.values["per_position_area"] <= result.values["whole_layer_area"] * 1.05


@pytest.mark.benchmark(group="ablation", min_rounds=1, max_time=1.0, warmup=False)
def test_ablation_qat_vs_ptq(benchmark, print_rows):
    """Accuracy of QAT vs post-training quantization at 2-4 bits."""
    result = benchmark.pedantic(
        qat_vs_ptq,
        kwargs={"dataset": "whitewine", "bit_range": (2, 3, 4), "config": CONFIG},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(result.values)
    print_rows(result.format_rows())
    # QAT recovers accuracy at the lowest precision (the reason the paper
    # retrains with QKeras rather than quantizing post hoc).
    assert result.values["qat_2b_accuracy"] >= result.values["ptq_2b_accuracy"] - 0.02
